//! Focus–exposure process window analysis: how dose and defocus corners
//! widen the process-variability band (the "PVB" metric of Table 2), and
//! how OPC shrinks it.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example process_window
//! ```

use gan_opc::geometry::{ClipSynthesizer, DesignRules};
use gan_opc::ilt::{IltConfig, IltEngine};
use gan_opc::litho::metrics::pvb_over_corners;
use gan_opc::litho::{Field, LithoModel, OpticalConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 128usize;
    let pixel_nm = 2048.0 / size as f64;

    // Nominal and defocused models (same optics otherwise).
    let base = OpticalConfig::default_32nm(pixel_nm);
    let nominal = LithoModel::new(base.clone(), size, size)?;
    let defocus_60 = LithoModel::new(base.clone().with_defocus(60.0), size, size)?;
    let defocus_120 = LithoModel::new(base.clone().with_defocus(120.0), size, size)?;

    let clip = ClipSynthesizer::new(DesignRules::m1_32nm(), 2048, 8).synthesize(11);
    let target: Field = clip.rasterize_raster(size, size).binarize(0.5);

    println!("process window of the *uncorrected* target mask:");
    for (label, models) in [
        ("dose ±5% only", vec![&nominal]),
        ("dose ±5% × focus {0, 60nm}", vec![&nominal, &defocus_60]),
        ("dose ±5% × focus {0, 60, 120nm}", vec![&nominal, &defocus_60, &defocus_120]),
    ] {
        let pvb = pvb_over_corners(&models, &target, 0.05);
        println!("  {label:<34} PVB = {pvb:>9.0} nm²");
    }

    // Optimize with nominal-only ILT and with process-window-aware ILT
    // (MOSAIC-style), then compare bands: nominal-only ILT chases nominal
    // fidelity and often *widens* the band — the trade-off the paper
    // discusses for its Table 2 PVB column.
    let mut nominal_only = IltConfig::refinement();
    nominal_only.max_iterations = 60;
    let mut engine = IltEngine::new(LithoModel::new(base.clone(), size, size)?, nominal_only);
    let plain = engine.optimize(&target)?;

    let mut pw_cfg = IltConfig::mosaic();
    pw_cfg.max_iterations = 60;
    let mut pw_engine = IltEngine::new(LithoModel::new(base, size, size)?, pw_cfg);
    let pw = pw_engine.optimize(&target)?;

    println!();
    println!("dose ±5% PVB by mask:");
    for (label, mask) in [
        ("uncorrected target", &target),
        ("nominal-only ILT", &plain.mask),
        ("process-window-aware ILT", &pw.mask),
    ] {
        let pvb = pvb_over_corners(&[&nominal], mask, 0.05);
        println!("  {label:<26} PVB = {pvb:>9.0} nm²");
    }
    println!();
    println!(
        "defocus blurs the image (peak intensity {:.3} -> {:.3} at 120 nm),",
        nominal.aerial_image(&target).max(),
        defocus_120.aerial_image(&target).max()
    );
    println!("so focus corners always widen the band. ILT trades some band width");
    println!("for nominal fidelity (sharper but more dose-sensitive contours); at");
    println!("this pixel pitch the nominal-only and window-aware variants converge");
    println!("to the same binary mask.");
    Ok(())
}
