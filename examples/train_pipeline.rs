//! The full GAN-OPC training pipeline at a laptop-friendly scale:
//!
//! 1. synthesize a training library (targets + ILT reference masks);
//! 2. pre-train the generator with lithography guidance (Algorithm 2);
//! 3. adversarially train generator + discriminator (Algorithm 1);
//! 4. evaluate the trained flow on a held-out clip against raw ILT.
//!
//! Run with (sizes are deliberately small; scale them up via the constants):
//!
//! ```text
//! cargo run --release --example train_pipeline
//! ```

use gan_opc::core::pretrain::{pretrain_generator, PretrainConfig};
use gan_opc::core::{
    Discriminator, FlowConfig, GanOpcFlow, GanTrainer, Generator, OpcDataset, TrainConfig,
};
use gan_opc::geometry::{ClipSynthesizer, DesignRules};
use gan_opc::ilt::{IltConfig, IltEngine};
use gan_opc::litho::{LithoModel, OpticalConfig};

const NET_SIZE: usize = 32;
const DATASET_COUNT: usize = 12;
const PRETRAIN_ITERS: usize = 30;
const GAN_ITERS: usize = 60;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Training library (Section 4) ----
    println!("[1/4] synthesizing {DATASET_COUNT} training instances (ILT references)...");
    let mut ref_ilt = IltConfig::fast();
    ref_ilt.max_iterations = 40;
    let dataset = OpcDataset::synthesize(NET_SIZE, DATASET_COUNT, ref_ilt, 101)?;
    println!(
        "      dataset ready: {} target/mask pairs at {NET_SIZE}x{NET_SIZE} px",
        dataset.len()
    );

    // ---- 2. ILT-guided pre-training (Algorithm 2) ----
    println!("[2/4] pre-training the generator with lithography gradients...");
    let mut pre_cfg = OpticalConfig::default_32nm(2048.0 / NET_SIZE as f64);
    pre_cfg.num_kernels = 10;
    let pre_model = LithoModel::new(pre_cfg, NET_SIZE, NET_SIZE)?;
    let mut generator = Generator::new(NET_SIZE, 8, 2018);
    let mut pcfg = PretrainConfig::paper_scaled();
    pcfg.iterations = PRETRAIN_ITERS;
    pcfg.batch_size = 2;
    let pre_stats = pretrain_generator(&mut generator, &pre_model, &dataset, &pcfg)?;
    println!(
        "      litho error: {:.1} -> {:.1}",
        pre_stats.first().unwrap().litho_error,
        pre_stats.last().unwrap().litho_error
    );

    // ---- 3. Adversarial training (Algorithm 1) ----
    println!("[3/4] adversarial training ({GAN_ITERS} steps)...");
    let discriminator = Discriminator::new(NET_SIZE, 8, 77);
    let mut tcfg = TrainConfig::paper_scaled();
    tcfg.iterations = GAN_ITERS;
    tcfg.batch_size = 2;
    let mut trainer = GanTrainer::new(generator, discriminator, tcfg);
    let stats = trainer.train(&dataset);
    let first = &stats[..5.min(stats.len())];
    let last = &stats[stats.len().saturating_sub(5)..];
    let avg =
        |s: &[gan_opc::core::StepStats]| s.iter().map(|x| x.l2_loss).sum::<f64>() / s.len() as f64;
    println!("      L2 loss: {:.4} -> {:.4}", avg(first), avg(last));
    let (generator, _discriminator) = trainer.into_networks();

    // ---- 4. Evaluation on a held-out clip ----
    println!("[4/4] evaluating on a held-out clip...");
    let litho_size = 2 * NET_SIZE;
    let clip = ClipSynthesizer::new(DesignRules::m1_32nm(), 2048, 8).synthesize(5005);
    let target = clip.rasterize_raster(litho_size, litho_size).binarize(0.5);

    let mut flow_cfg = FlowConfig::fast();
    flow_cfg.net_size = NET_SIZE;
    flow_cfg.litho_size = litho_size;
    flow_cfg.base_channels = 8;
    flow_cfg.refinement.max_iterations = 40;
    let mut flow = GanOpcFlow::with_generator(flow_cfg, generator)?;
    let flow_result = flow.optimize(&target)?;

    let mut baseline_cfg = IltConfig::refinement();
    baseline_cfg.max_iterations = 120;
    let mut baseline = IltEngine::new(LithoModel::iccad2013_like(litho_size)?, baseline_cfg);
    let baseline_result = baseline.optimize(&target)?;

    println!("      metric            GAN-OPC flow      raw ILT");
    println!(
        "      squared L2 (nm²)  {:>12.0}  {:>12.0}",
        flow_result.l2_nm2, baseline_result.binary_l2_nm2
    );
    println!(
        "      runtime (s)       {:>12.2}  {:>12.2}",
        flow_result.total_runtime_s, baseline_result.runtime_s
    );
    println!(
        "      iterations        {:>12}  {:>12}",
        flow_result.refinement_iterations, baseline_result.iterations
    );
    Ok(())
}
