//! Quickstart: optimize one synthesized M1 clip with the GAN-OPC flow and
//! compare against the raw ILT baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gan_opc::core::{FlowConfig, GanOpcFlow};
use gan_opc::geometry::{ClipSynthesizer, DesignRules};
use gan_opc::ilt::{IltConfig, IltEngine};
use gan_opc::litho::metrics::squared_l2_nm2;
use gan_opc::litho::LithoModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a DRC-clean 2048 nm M1 clip under the paper's Table 1
    //    rules and rasterize it at the lithography frame (64 px ⇒ 32 nm/px).
    let litho_size = 64usize;
    let rules = DesignRules::m1_32nm();
    let clip = ClipSynthesizer::new(rules, 2048, 8).synthesize(7);
    let target = clip.rasterize_raster(litho_size, litho_size).binarize(0.5);
    println!(
        "synthesized clip: {} shapes, pattern area {} nm²",
        clip.shapes().len(),
        clip.pattern_area()
    );

    // 2. Baseline: print the target directly (no OPC at all).
    let model = LithoModel::iccad2013_like(litho_size)?;
    let px = model.pixel_nm();
    let no_opc = squared_l2_nm2(&model.print_nominal(&target), &target, px);
    println!("no-OPC squared L2      : {no_opc:>12.0} nm²");

    // 3. Full ILT from scratch (the conventional flow, paper Fig. 1).
    let mut ilt = IltEngine::new(LithoModel::iccad2013_like(litho_size)?, IltConfig::refinement());
    let ilt_result = ilt.optimize(&target)?;
    println!(
        "ILT squared L2         : {:>12.0} nm²  ({} iterations, {:.2}s)",
        ilt_result.binary_l2_nm2, ilt_result.iterations, ilt_result.runtime_s
    );

    // 4. GAN-OPC flow (paper Fig. 6). The generator here is untrained —
    //    see `examples/train_pipeline.rs` for the trained version — so this
    //    demonstrates the plumbing: generator inference, upscale, ILT
    //    refinement, metrics.
    let mut cfg = FlowConfig::fast();
    cfg.litho_size = litho_size;
    cfg.net_size = 32;
    let mut flow = GanOpcFlow::new(cfg)?;
    let result = flow.optimize(&target)?;
    println!(
        "GAN-OPC flow squared L2: {:>12.0} nm²  (G {:.3}s + refine {:.2}s, {} iterations)",
        result.l2_nm2,
        result.generator_runtime_s,
        result.refinement_runtime_s,
        result.refinement_iterations
    );
    println!(
        "defects: {} EPE violations / {} measurements, {} bridges, {} breaks, {} necks",
        result.metrics.epe_violations,
        result.metrics.epe_measurements,
        result.metrics.bridges,
        result.metrics.breaks,
        result.metrics.necks
    );
    println!("PV band: {:.0} nm²", result.metrics.pvb_nm2);
    Ok(())
}
