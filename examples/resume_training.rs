//! Crash-safe resumable training, end to end:
//!
//! 1. pre-train a generator, interrupt mid-run, checkpoint, resume;
//! 2. adversarially train, interrupt mid-run, checkpoint, resume;
//! 3. verify both resumed runs are *bit-identical* to uninterrupted ones.
//!
//! The checkpoints are v2 named-section containers written atomically
//! (tmp file → sync → rename), so a crash at any point leaves either the
//! previous state or the new one on disk — never a truncated file.
//!
//! ```text
//! cargo run --release --example resume_training
//! ```

use gan_opc::core::{
    Discriminator, GanTrainer, Generator, OpcDataset, PretrainConfig, Pretrainer, TrainConfig,
};
use gan_opc::ilt::IltConfig;
use gan_opc::litho::{LithoModel, OpticalConfig};

const NET_SIZE: usize = 32;
const DATASET_COUNT: usize = 6;
const PRETRAIN_ITERS: usize = 10;
const GAN_ITERS: usize = 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("ganopc-resume-example");
    std::fs::create_dir_all(&dir)?;

    println!("[1/4] synthesizing {DATASET_COUNT} training instances...");
    let mut ref_ilt = IltConfig::fast();
    ref_ilt.max_iterations = 30;
    let dataset = OpcDataset::synthesize(NET_SIZE, DATASET_COUNT, ref_ilt, 303)?;

    // ---- Pre-training with a mid-run checkpoint/restore cycle ----
    println!("[2/4] pre-training with an interruption at step {}...", PRETRAIN_ITERS / 2);
    let mut litho_cfg = OpticalConfig::default_32nm(2048.0 / NET_SIZE as f64);
    litho_cfg.num_kernels = 10;
    let litho = LithoModel::new(litho_cfg, NET_SIZE, NET_SIZE)?;
    let mut pcfg = PretrainConfig::paper_scaled();
    pcfg.iterations = PRETRAIN_ITERS;
    pcfg.batch_size = 2;

    let mut reference = Pretrainer::new(Generator::new(NET_SIZE, 8, 2018), pcfg.clone());
    let reference_stats = reference.train(&litho, &dataset)?;

    let pre_path = dir.join("pretrainer.ckpt");
    let mut interrupted = Pretrainer::new(Generator::new(NET_SIZE, 8, 2018), pcfg);
    let mut stats = interrupted.train_for(&litho, &dataset, PRETRAIN_ITERS / 2)?;
    interrupted.save_checkpoint(&pre_path)?;
    drop(interrupted); // the "crash"
    let mut resumed = Pretrainer::resume(&pre_path)?;
    stats.extend(resumed.train(&litho, &dataset)?);
    assert_eq!(stats, reference_stats, "pre-training resume is not bit-identical");
    println!(
        "      resumed run matches bit-for-bit; litho error {:.1} -> {:.1}",
        stats.first().unwrap().litho_error,
        stats.last().unwrap().litho_error
    );

    // ---- Adversarial training with a mid-run checkpoint/restore cycle ----
    println!("[3/4] GAN training with an interruption at step {}...", GAN_ITERS / 2);
    let mut tcfg = TrainConfig::paper_scaled();
    tcfg.iterations = GAN_ITERS;
    tcfg.batch_size = 2;
    let fresh = |generator: Generator| {
        GanTrainer::new(generator, Discriminator::new(NET_SIZE, 8, 77), tcfg.clone())
    };

    let mut reference = fresh(resumed.into_generator());
    let reference_stats = reference.train(&dataset);

    let gan_path = dir.join("gan-trainer.ckpt");
    let mut resumed_pre = Pretrainer::resume(&pre_path)?;
    let _ = resumed_pre.train(&litho, &dataset)?; // rebuild the same generator
    let mut interrupted = fresh(resumed_pre.into_generator());
    let mut stats = interrupted.train_for(&dataset, GAN_ITERS / 2);
    interrupted.save_checkpoint(&gan_path)?;
    drop(interrupted); // the "crash"
    let mut resumed = GanTrainer::resume(&gan_path)?;
    println!(
        "      resumed at step {}/{} from {}",
        resumed.step(),
        resumed.config().iterations,
        gan_path.display()
    );
    stats.extend(resumed.train(&dataset));
    assert_eq!(stats, reference_stats, "GAN training resume is not bit-identical");
    let avg =
        |s: &[gan_opc::core::StepStats]| s.iter().map(|x| x.l2_loss).sum::<f64>() / s.len() as f64;
    println!(
        "      resumed run matches bit-for-bit; L2 loss {:.4} -> {:.4}",
        avg(&stats[..4]),
        avg(&stats[stats.len() - 4..])
    );

    // ---- Corruption is detected, never silently loaded ----
    println!("[4/4] corrupting the checkpoint on disk...");
    let mut bytes = std::fs::read(&gan_path)?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    let bad_path = dir.join("corrupt.ckpt");
    std::fs::write(&bad_path, &bytes)?;
    match GanTrainer::resume(&bad_path) {
        Err(e) => println!("      rejected as expected: {e}"),
        Ok(_) => panic!("corrupt checkpoint loaded silently"),
    }

    std::fs::remove_file(&pre_path)?;
    std::fs::remove_file(&gan_path)?;
    std::fs::remove_file(&bad_path)?;
    println!("done: training is crash-safe and bit-identical across resumes");
    Ok(())
}
