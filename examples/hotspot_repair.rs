//! Hotspot repair: a dense clip with aggressive tip-to-tip and spacing
//! structures (the patterns the paper's Fig. 9 highlights — line-end pull
//! back and bridging) printed with and without OPC, with the full defect
//! inventory from the Fig. 2 detectors.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example hotspot_repair
//! ```

use gan_opc::geometry::{Layout, Rect};
use gan_opc::ilt::{IltConfig, IltEngine};
use gan_opc::litho::metrics::{DefectConfig, MaskMetrics};
use gan_opc::litho::{Field, LithoModel};

/// Builds a deliberately hard clip: minimum-pitch wire pairs, facing line
/// ends at minimum tip-to-tip, and an isolated short stub.
fn hotspot_clip() -> Layout {
    let mut clip = Layout::new(Rect::new(0, 0, 2048, 2048));
    // Three parallel minimum-pitch vertical wires (pitch 140, CD 80).
    for i in 0..3 {
        let x = 400 + i * 140;
        clip.push(Rect::from_origin_size(x, 300, 80, 800));
    }
    // A facing pair at exactly the minimum tip-to-tip distance (60 nm).
    clip.push(Rect::from_origin_size(1100, 300, 80, 500));
    clip.push(Rect::from_origin_size(1100, 860, 80, 500));
    // A short stub — prone to disappearing entirely.
    clip.push(Rect::from_origin_size(1500, 1500, 160, 80));
    // A long horizontal wire under the stubs.
    clip.push(Rect::from_origin_size(400, 1400, 900, 80));
    clip
}

fn report(label: &str, metrics: &MaskMetrics) {
    println!(
        "{label:<18} L2 {:>10.0} nm²   PVB {:>10.0} nm²   EPE {}/{}   bridges {}   breaks {}   necks {}",
        metrics.l2_nm2,
        metrics.pvb_nm2,
        metrics.epe_violations,
        metrics.epe_measurements,
        metrics.bridges,
        metrics.breaks,
        metrics.necks
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 128usize;
    let clip = hotspot_clip();
    let target: Field = clip.rasterize_raster(size, size).binarize(0.5);
    let model = LithoModel::iccad2013_like(size)?;
    let defect_cfg = DefectConfig::default();

    println!(
        "hotspot clip: {} shapes, {} nm² pattern area\n",
        clip.shapes().len(),
        clip.pattern_area()
    );

    // No OPC: the target is the mask.
    let no_opc = MaskMetrics::evaluate(&model, &target, &target, &defect_cfg);
    report("no OPC", &no_opc);

    // ILT repair.
    let mut cfg = IltConfig::refinement();
    cfg.max_iterations = 80;
    let mut engine = IltEngine::new(model, cfg);
    let result = engine.optimize(&target)?;
    let repaired = MaskMetrics::evaluate(engine.model(), &result.mask, &target, &defect_cfg);
    report("ILT repaired", &repaired);

    println!(
        "\nILT ran {} iterations in {:.2}s; relaxed litho error {:.1} -> {:.1}",
        result.iterations,
        result.runtime_s,
        result.l2_history.first().unwrap(),
        result.l2_history.last().unwrap()
    );

    // Dump images for inspection.
    let out = std::path::Path::new("target/hotspot");
    std::fs::create_dir_all(out)?;
    gan_opc::geometry::io::write_pgm(out.join("target.pgm"), &target)?;
    gan_opc::geometry::io::write_pgm(out.join("mask.pgm"), &result.mask)?;
    gan_opc::geometry::io::write_pgm(out.join("wafer.pgm"), &result.wafer)?;
    println!("wrote target/hotspot/{{target,mask,wafer}}.pgm");
    Ok(())
}
