//! Prints the generator and discriminator architectures (paper Fig. 3/4)
//! at the paper-scaled resolution, plus the SOCS kernel stack summary
//! (paper Eq. (2)).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example architecture
//! ```

use gan_opc::core::{Discriminator, Generator};
use gan_opc::litho::{OpticalConfig, SocsKernels};

fn main() {
    let size = 64usize;
    let mut generator = Generator::new(size, 16, 0);
    let mut discriminator = Discriminator::new(size, 16, 0);
    let mut mask_only = Discriminator::mask_only(size, 16, 0);

    println!("{}", generator.summary());
    println!();
    println!("{}", discriminator.summary());
    println!();
    println!("{}", mask_only.summary());
    println!();

    let cfg = OpticalConfig::default_32nm(2048.0 / size as f64);
    let stack = SocsKernels::from_config(&cfg);
    println!(
        "SOCS kernel stack: {} kernels, {}x{} taps each, pixel {} nm",
        stack.len(),
        stack.kernel_size(),
        stack.kernel_size(),
        stack.pixel_nm()
    );
    println!("open-field intensity: {:.4}", stack.open_field_intensity());
    println!("leading kernel weights:");
    for (i, k) in stack.kernels().iter().take(8).enumerate() {
        println!("  h_{:<2} w = {:.6}", i + 1, k.weight);
    }
}
