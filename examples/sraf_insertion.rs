//! Sub-resolution assist features: insert scattering bars next to an
//! isolated wire and measure the process-window benefit — the classic SRAF
//! effect the paper's ref [9] targets.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sraf_insertion
//! ```

use gan_opc::geometry::{Layout, Rect};
use gan_opc::litho::metrics::pvb_over_corners;
use gan_opc::litho::{LithoModel, OpticalConfig};
use gan_opc::mbopc::sraf::{insert_srafs, SrafRules};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 256usize; // 8 nm/px: enough resolution for 40 nm bars
    let pixel_nm = 2048.0 / size as f64;
    let base = OpticalConfig::default_32nm(pixel_nm);
    let nominal = LithoModel::new(base.clone(), size, size)?;
    let defocused = LithoModel::new(base.with_defocus(80.0), size, size)?;

    // An isolated wire — the worst case for process-window stability.
    let mut clip = Layout::new(Rect::new(0, 0, 2048, 2048));
    clip.push(Rect::from_origin_size(980, 400, 88, 1200));

    let rules = SrafRules::default();
    let bars = insert_srafs(&clip, &rules);
    println!("inserted {} scattering bars:", bars.len());
    for bar in &bars {
        println!(
            "  {bar} ({} nm wide, {} nm off the wire)",
            bar.width().min(bar.height()),
            rules.gap_nm
        );
    }

    let bare = clip.rasterize_raster(size, size);
    let mut assisted_clip = clip.clone();
    assisted_clip.extend(bars.iter().copied());
    let assisted = assisted_clip.rasterize_raster(size, size);

    // SRAFs must not print...
    let wafer_bare = nominal.print_nominal(&bare);
    let wafer_assisted = nominal.print_nominal(&assisted);
    let printed_delta = wafer_assisted.sum() - wafer_bare.sum();
    println!();
    println!(
        "printed-area change from adding bars: {:.0} nm² (should be ~0: bars are sub-resolution)",
        printed_delta as f64 * pixel_nm * pixel_nm
    );

    // ...but they should stabilize the image across dose and focus corners.
    for (label, mask) in [("bare wire", &bare), ("wire + SRAFs", &assisted)] {
        let dose_pvb = pvb_over_corners(&[&nominal], mask, 0.05);
        let full_pvb = pvb_over_corners(&[&nominal, &defocused], mask, 0.05);
        println!(
            "{label:<14} PVB dose-only {dose_pvb:>9.0} nm²   dose x focus {full_pvb:>9.0} nm²"
        );
    }
    Ok(())
}
