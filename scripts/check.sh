#!/usr/bin/env bash
# Repo hygiene gate: formatting, lints (warnings denied), full test suite.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ganopc-lint (workspace invariants)"
cargo run --release -p ganopc-lint

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo test -q (GANOPC_THREADS=4: parallel dispatch through the crew)"
GANOPC_THREADS=4 cargo test -q --workspace

echo "==> allocation regression (steady-state train/infer must not allocate)"
cargo test -q -p ganopc-core --test alloc_regression

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> resume smoke test (checkpoint/restore bit-identity)"
cargo run --release --example resume_training

echo "All checks passed."
