#!/usr/bin/env bash
# Repo hygiene gate: formatting, lints (warnings denied), full test suite.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ganopc-lint (workspace invariants)"
cargo run --release -p ganopc-lint

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo test -q (GANOPC_THREADS=4: parallel dispatch through the crew)"
GANOPC_THREADS=4 cargo test -q --workspace

echo "==> allocation regression (steady-state train/infer must not allocate)"
cargo test -q -p ganopc-core --test alloc_regression

echo "==> fault soak (seeded fault plans: typed failures, reloadable artifacts)"
cargo test -q --features fault-inject -p ganopc-core --test fault_soak

echo "==> fault plane disarmed in default builds"
# The default dependency graph must not enable ganopc-fault's feature —
# production builds get the inlined no-op hooks, not the armed sink.
if cargo tree -f '{p} {f}' --prefix none | grep -q "fault-inject"; then
    echo "FAIL: fault-inject is enabled in the default feature graph"
    exit 1
fi
# Self-test of the check: the armed graph must show the feature, or the
# grep above is testing nothing.
if ! cargo tree -f '{p} {f}' --prefix none --features fault-inject | grep -q "fault-inject"; then
    echo "FAIL: --features fault-inject did not arm ganopc-fault"
    exit 1
fi
echo "fault-inject off by default, on under --features fault-inject"

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> obs overhead budget (span enter/exit < 50 ns median per op)"
obs_out="$(cargo bench -q -p ganopc-bench --bench obs_overhead 2>&1)"
echo "$obs_out"
echo "$obs_out" | awk '
    /span_enter_exit_x1024/ {
        for (i = 1; i <= NF; i++)
            if ($i == "median") { v = $(i + 1); u = $(i + 2) }
    }
    END {
        if (u == "µs" || u == "us") v *= 1e3
        else if (u == "ms") v *= 1e6
        per_op = v / 1024
        if (per_op <= 0 || per_op >= 50) {
            printf "FAIL: span enter/exit %.1f ns/op breaks the 50 ns budget\n", per_op
            exit 1
        }
        printf "span enter/exit %.1f ns/op (budget 50 ns)\n", per_op
    }'

echo "==> resume smoke test (checkpoint/restore bit-identity)"
cargo run --release --example resume_training

echo "All checks passed."
