#!/usr/bin/env bash
# Runs the workspace criterion benches and distills their fixed-width text
# output into a machine-readable JSON summary (default: BENCH_9.json in the
# workspace root). All durations are normalized to nanoseconds. Benches whose
# name ends in `_x<N>` run N operations per sample (the obs_overhead group);
# those entries additionally carry `per_op_median_ns` = median / N, which is
# the number scripts/check.sh holds against the span budget.
#
# Usage:
#   scripts/bench_summary.sh [out.json]
#   BENCH_INPUT=captured.txt scripts/bench_summary.sh [out.json]   # reparse
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_9.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

if [[ -n "${BENCH_INPUT:-}" ]]; then
    cp "$BENCH_INPUT" "$raw"
else
    cargo bench --workspace 2>&1 | tee "$raw"
fi

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
function to_ns(v, u) {
    if (u == "ns") return v
    if (u == "µs" || u == "us") return v * 1e3
    if (u == "ms") return v * 1e6
    if (u == "s")  return v * 1e9
    return v
}
/ min .* median .* mean .*samples\)/ {
    name = $1
    min = med = mean = n = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "min")    min  = to_ns($(i + 1), $(i + 2))
        if ($i == "median") med  = to_ns($(i + 1), $(i + 2))
        if ($i == "mean")   mean = to_ns($(i + 1), $(i + 2))
        if ($(i + 1) == "samples)") n = substr($i, 2)
    }
    if (min == "" || med == "" || mean == "" || n == "") next
    extra = ""
    if (match(name, /_x[0-9]+$/)) {
        batch = substr(name, RSTART + 2) + 0
        if (batch > 0)
            extra = sprintf(", \"per_op_median_ns\": %.1f", med / batch)
    }
    entries[++count] = sprintf( \
        "    {\"name\": \"%s\", \"min_ns\": %.1f, \"median_ns\": %.1f, \"mean_ns\": %.1f, \"samples\": %d%s}", \
        name, min, med, mean, n, extra)
}
END {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench_summary.sh\",\n"
    printf "  \"generated_at\": \"%s\",\n", date
    printf "  \"unit\": \"ns\",\n"
    printf "  \"benches\": [\n"
    for (i = 1; i <= count; i++)
        printf "%s%s\n", entries[i], (i < count ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" > "$out"

count="$(grep -c '"name"' "$out" || true)"
echo "wrote $out ($count benches)"
