//! Offline shim for `proptest`: a genuinely functional property-based test
//! runner covering the subset of the API this workspace uses — range and
//! collection strategies, `prop_map`, the `proptest!` macro and the
//! `prop_assert*` family. No shrinking: a failing case reports its inputs
//! via the ordinary assertion panic instead of minimizing them.

use std::ops::{Range, RangeInclusive};

/// Test-runner configuration.
pub mod test_runner {
    /// Runner configuration (shim: only `cases` is meaningful).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property is tested with.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Deterministic sample source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (derived from test name + case index by
    /// `proptest!`).
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy: `f` builds the second-stage strategy
    /// from each first-stage draw (e.g. a length, then data of that length).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0: 0);
tuple_strategy!(S0: 0, S1: 1);
tuple_strategy!(S0: 0, S1: 1, S2: 2);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);

/// Strategy combinators namespace (mirrors `proptest::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Length specifications accepted by [`vec`]: a fixed size or a
        /// (half-open) range of sizes.
        pub trait IntoSizeRange {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + (rng.next_u64() as usize) % (self.end - self.start)
            }
        }

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: Box<dyn IntoSizeRange>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length comes from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange + 'static) -> VecStrategy<S> {
            VecStrategy { element, size: Box::new(size) }
        }
    }
}

/// Everything a proptest file usually imports.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

#[doc(hidden)]
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Defines property tests: each function runs its body for `cases`
/// randomly sampled inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    (@config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::new($crate::seed_for(stringify!($name), case));
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($args:tt)*) => { assert_eq!($left, $right, $($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($args:tt)*) => { assert_ne!($left, $right, $($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100).prop_map(|a| (a, a + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f32..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn mapped_strategies_apply(p in pair()) {
            prop_assert_eq!(p.0 + 1, p.1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::new(crate::seed_for("t", 0));
        let mut b = crate::TestRng::new(crate::seed_for("t", 0));
        assert_eq!(
            crate::Strategy::generate(&(0u64..1000), &mut a),
            crate::Strategy::generate(&(0u64..1000), &mut b)
        );
    }
}
