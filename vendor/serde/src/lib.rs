//! Offline shim for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and stats
//! types but performs all actual persistence through hand-rolled binary
//! formats (`ganopc_nn::checkpoint`, `ganopc_litho::cache`), so no format
//! crate exists in the dependency graph and the traits are never invoked.
//! This shim therefore provides marker traits plus no-op derive macros —
//! enough for the derives and any `T: Serialize` bounds to compile.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
