//! Offline shim for `criterion`: a wall-clock benchmark harness with a
//! criterion-compatible API surface. It genuinely measures — each
//! benchmark is warmed up, run for a configurable number of samples, and
//! reported as min/median/mean per-iteration time — but does no
//! statistical analysis, plotting, or state persistence.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering, as in criterion.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Batch sizing hints for [`Bencher::iter_batched`] (shim: ignored; every
/// iteration gets a fresh input).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to benchmark closures to drive the measured routine.
pub struct Bencher {
    samples: usize,
    /// Per-sample measured durations of the last `iter` call.
    durations: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine` once per sample after a short warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~100 ms or 3 iterations, whichever is later.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(100) {
            hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1000 {
                break;
            }
        }
        self.durations.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            hint::black_box(routine());
            self.durations.push(t0.elapsed());
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            hint::black_box(routine(setup()));
        }
        self.durations.clear();
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            hint::black_box(routine(input));
            self.durations.push(t0.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.durations.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut sorted = self.durations.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{label:<50} min {:>12}   median {:>12}   mean {:>12}   ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (shim: ignored — sampling is
    /// count-based).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        if !self.criterion.matches(&label) {
            return self;
        }
        let mut bencher = Bencher { samples: self.sample_size, durations: Vec::new() };
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards CLI args: flags (e.g. --bench) are ignored,
        // the first positional argument becomes a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().id;
        if self.matches(&label) {
            let mut bencher = Bencher { samples: 100, durations: Vec::new() };
            f(&mut bencher);
            bencher.report(&label);
        }
        self
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut ran = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran >= 5, "routine ran {ran} times");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { filter: Some("nomatch".into()) };
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| 1)
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}
