//! Offline shim for the `rand` crate covering the API surface this
//! workspace uses: a seedable `StdRng`, uniform `gen_range` over integer
//! and float ranges, `gen_bool`, and `SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — statistically
//! solid and fully deterministic for a fixed seed, though its stream
//! differs from the real `rand::rngs::StdRng` (ChaCha12).

use std::ops::{Range, RangeInclusive};

/// Core random source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty => $bits:expr, $shift:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> $shift) as $t / $bits;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let unit = (rng.next_u64() >> $shift) as $t / ($bits - 1.0);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_range!(f32 => (1u64 << 24) as f32, 40, f64 => (1u64 << 53) as f64, 11);

/// Convenience sampling methods.
pub trait Rng: RngCore {
    /// Uniform draw from a range (exclusive or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (shim replacement for rand's ChaCha12 rng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let u = rng.gen_range(0usize..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }
}
