//! No-op derive macros for the offline `serde` shim.
//!
//! The real derives generate `Serialize`/`Deserialize` impls; since the
//! shim's traits are unused markers, deriving nothing at all keeps every
//! annotated type compiling without pulling in a parser.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
