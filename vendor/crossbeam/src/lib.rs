//! Offline shim for the `crossbeam` crate: `crossbeam::thread::scope`
//! implemented on top of `std::thread::scope` (stabilized in Rust 1.63,
//! long after crossbeam pioneered the API).

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Result alias matching `crossbeam::thread::scope`'s error payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle for spawning borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing
    /// stack frame; all spawned threads are joined before it returns.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam, panics in unjoined children propagate as panics
    /// rather than an `Err` — every call site in this workspace joins and
    /// `expect`s, so the two behaviours coincide.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().expect("inner") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
