//! `ganopc` — command-line interface to the GAN-OPC stack.
//!
//! ```text
//! ganopc synthesize --seed 7 --groups 10 --out clip.pgm
//! ganopc opc --flow ilt --size 128 --seed 7
//! ganopc train --out model.ckpt --count 40 --iters 300 --pretrain 100
//! ganopc evaluate --ckpt model.ckpt
//! ganopc suite
//! ```
//!
//! Run `ganopc help` for the full usage text.

use gan_opc::core::pretrain::{pretrain_generator, PretrainConfig};
use gan_opc::core::{
    Discriminator, FlowConfig, GanOpcError, GanOpcFlow, GanTrainer, Generator, OpcDataset,
    SupervisorConfig, TrainConfig, TrainSupervisor,
};
use gan_opc::geometry::io::{sweep_stale_tmp, write_pgm};
use gan_opc::geometry::synthesis::benchmark_suite;
use gan_opc::geometry::{ClipSynthesizer, DesignRules};
use gan_opc::ilt::{IltConfig, IltEngine};
use gan_opc::litho::metrics::{DefectConfig, MaskMetrics};
use gan_opc::litho::{Field, LithoModel};
use gan_opc::mbopc::{MbOpcConfig, MbOpcEngine};
use gan_opc::obs::{self, MetricsSnapshot};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
ganopc — lithography-guided generative adversarial mask optimization

USAGE:
    ganopc <command> [--key value]...

COMMANDS:
    synthesize   generate a DRC-clean M1 clip
                   --seed N (default 7)  --groups N (default 10)
                   --size PX (default 128)  --out FILE.pgm (optional)
    opc          optimize a clip (synthesized, or loaded with --clip)
                   --flow ilt|mbopc|gan (default ilt)  --seed N  --size PX
                   --clip FILE (text layout; see geometry::textfmt)
                   --ckpt FILE (gan flow: trained generator weights)
                   --outdir DIR (write target/mask/wafer PGMs)
    train        train a PGAN-OPC generator and save a checkpoint
                   --out FILE (default model.ckpt)  --count N (default 40)
                   --net PX (default 64)  --iters N (default 300)
                   --pretrain N (default 100)  --seed N
                   --state FILE (also save the full resumable trainer state;
                     enables the self-healing supervisor: divergence
                     detection + rollback from a checkpoint ring kept in
                     FILE.ring/)
                   --resume FILE (continue a run saved with --state; pass the
                     same --count/--net/--seed so the dataset matches)
                   --ckpt-ring N (supervisor: rollback checkpoints kept,
                     default 3)
                   --max-retries N (supervisor: rollback budget before the
                     run fails typed, default 2)
                   --divergence-window N (supervisor: trailing steps for the
                     loss-explosion test, default 20)
    evaluate     run the GAN-OPC flow over the 10 benchmark clips
                   --ckpt FILE (required)  --net PX (default 64)
                   --size PX (default 128)
    suite        print the regenerated ICCAD-2013-like benchmark suite
    help         show this text

GLOBAL OPTIONS (any command):
    --metrics-json FILE   after the command, write the observability snapshot
                          (counters, latency histograms, ILT loss/EPE traces)
                          as JSON; also enables the per-iteration ILT EPE
                          trace (every 8th iteration)

EXIT CODES:
    0  success
    1  any other failure (lithography, configuration, ...)
    2  usage error (unknown command/flag, unparsable value)
    3  checkpoint failure (missing, corrupt, or unwritable state file)
    4  I/O failure (images, layouts, metrics snapshots)
    5  training diverged past its recovery budget

Commands that write artifacts sweep stale atomic-write temporaries
(`.*.tmp` orphans from a crashed run) out of their output directories at
startup; sweeps are counted under `stale_tmp_swept` in --metrics-json.
";

/// A CLI failure carrying its documented process exit code.
enum CliError {
    /// Bad invocation: unknown command/flag or unparsable value (exit 2).
    Usage(String),
    /// Checkpoint load/save failure (exit 3).
    Checkpoint(String),
    /// Filesystem/image/layout I/O failure (exit 4).
    Io(String),
    /// Training diverged past the supervisor's budget (exit 5).
    Divergence(String),
    /// Everything else (exit 1).
    Other(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Checkpoint(_) => 3,
            CliError::Io(_) => 4,
            CliError::Divergence(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Checkpoint(m)
            | CliError::Io(m)
            | CliError::Divergence(m)
            | CliError::Other(m) => m,
        }
    }
}

/// Maps a core error to its exit class; the `context` prefixes the
/// one-line message (usually the file or stage involved).
fn classify(context: &str, e: GanOpcError) -> CliError {
    let msg = if context.is_empty() { e.to_string() } else { format!("{context}: {e}") };
    match e {
        GanOpcError::Divergence(_) => CliError::Divergence(msg),
        GanOpcError::Checkpoint(_) => CliError::Checkpoint(msg),
        _ => CliError::Other(msg),
    }
}

fn parse_args(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(CliError::Usage(format!(
                "unexpected argument '{key}' (expected --key value)"
            )));
        };
        let Some(value) = it.next() else {
            return Err(CliError::Usage(format!("missing value for --{name}")));
        };
        map.insert(name.to_string(), value.clone());
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    args: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match args.get(key) {
        None => Ok(default),
        Some(raw) => {
            raw.parse().map_err(|_| CliError::Usage(format!("invalid value '{raw}' for --{key}")))
        }
    }
}

/// Startup hygiene for a command about to write `path`: sweep stale
/// atomic-write temporaries out of its directory.
fn sweep_output_dir(path: &str) {
    let parent = match Path::new(path).parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    sweep_stale_tmp(parent);
}

fn synthesize_clip(seed: u64, groups: usize) -> gan_opc::geometry::Layout {
    ClipSynthesizer::new(DesignRules::m1_32nm(), 2048, groups).synthesize(seed)
}

fn cmd_synthesize(args: &HashMap<String, String>) -> Result<(), CliError> {
    let seed: u64 = get(args, "seed", 7)?;
    let groups: usize = get(args, "groups", 10)?;
    let size: usize = get(args, "size", 128)?;
    let clip = synthesize_clip(seed, groups);
    println!(
        "clip: {} shapes, pattern area {} nm², frame {} nm",
        clip.shapes().len(),
        clip.pattern_area(),
        clip.frame().width()
    );
    if let Some(path) = args.get("out") {
        sweep_output_dir(path);
        let raster = clip.rasterize_raster(size, size);
        write_pgm(path, &raster).map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        println!("wrote {path} ({size}x{size})");
    }
    Ok(())
}

fn cmd_opc(args: &HashMap<String, String>) -> Result<(), CliError> {
    let seed: u64 = get(args, "seed", 7)?;
    let size: usize = get(args, "size", 128)?;
    let flow_kind = args.get("flow").map(String::as_str).unwrap_or("ilt");
    let clip = match args.get("clip") {
        Some(path) => gan_opc::geometry::textfmt::read_layout(path)
            .map_err(|e| CliError::Io(format!("cannot load {path}: {e}")))?,
        None => synthesize_clip(seed, 10),
    };
    let target: Field = clip.rasterize_raster(size, size).binarize(0.5);
    let model =
        LithoModel::iccad2013_like_cached(size).map_err(|e| CliError::Other(e.to_string()))?;

    let (label, mask, wafer, runtime_s) = match flow_kind {
        "ilt" => {
            let mut engine = IltEngine::new(
                LithoModel::iccad2013_like_cached(size)
                    .map_err(|e| CliError::Other(e.to_string()))?,
                IltConfig::mosaic(),
            );
            let r = engine.optimize(&target).map_err(|e| CliError::Other(e.to_string()))?;
            ("ILT", r.mask, r.wafer, r.runtime_s)
        }
        "mbopc" => {
            let mut engine = MbOpcEngine::new(
                LithoModel::iccad2013_like_cached(size)
                    .map_err(|e| CliError::Other(e.to_string()))?,
                MbOpcConfig::standard(),
            );
            let r = engine.optimize(&clip).map_err(|e| CliError::Other(e.to_string()))?;
            ("MB-OPC", r.mask, r.wafer, r.runtime_s)
        }
        "gan" => {
            let net: usize = get(args, "net", 64)?;
            let mut cfg = FlowConfig::paper_scaled();
            cfg.net_size = net;
            cfg.litho_size = size;
            cfg.base_channels = 8; // must match `ganopc train`
            let mut flow = GanOpcFlow::new(cfg).map_err(|e| classify("", e))?;
            if let Some(ckpt) = args.get("ckpt") {
                flow.generator_mut().load(ckpt).map_err(|e| classify(ckpt, e))?;
            } else {
                eprintln!("warning: no --ckpt given; running with an untrained generator");
            }
            let r = flow.optimize(&target).map_err(|e| classify("", e))?;
            ("GAN-OPC", r.mask, r.wafer, r.total_runtime_s)
        }
        other => return Err(CliError::Usage(format!("unknown flow '{other}' (ilt|mbopc|gan)"))),
    };

    let metrics = MaskMetrics::evaluate(&model, &mask, &target, &DefectConfig::default());
    println!("{label} on seed {seed} ({size}x{size}):");
    println!("  squared L2 : {:>10.0} nm²", metrics.l2_nm2);
    println!("  PV band    : {:>10.0} nm²", metrics.pvb_nm2);
    println!(
        "  defects    : {} EPE / {} bridges / {} breaks / {} necks",
        metrics.epe_violations, metrics.bridges, metrics.breaks, metrics.necks
    );
    println!("  runtime    : {runtime_s:.2}s");
    if let Some(dir) = args.get("outdir") {
        std::fs::create_dir_all(dir).map_err(|e| CliError::Io(e.to_string()))?;
        let dir = std::path::Path::new(dir);
        sweep_stale_tmp(dir);
        write_pgm(dir.join("target.pgm"), &target).map_err(|e| CliError::Io(e.to_string()))?;
        write_pgm(dir.join("mask.pgm"), &mask).map_err(|e| CliError::Io(e.to_string()))?;
        write_pgm(dir.join("wafer.pgm"), &wafer).map_err(|e| CliError::Io(e.to_string()))?;
        println!("wrote {}/{{target,mask,wafer}}.pgm", dir.display());
    }
    Ok(())
}

fn cmd_train(args: &HashMap<String, String>) -> Result<(), CliError> {
    let out = args.get("out").cloned().unwrap_or_else(|| "model.ckpt".to_string());
    let count: usize = get(args, "count", 40)?;
    let net: usize = get(args, "net", 64)?;
    let iters: usize = get(args, "iters", 300)?;
    let pretrain: usize = get(args, "pretrain", 100)?;
    let seed: u64 = get(args, "seed", 2018)?;
    let state_path = args.get("state").cloned();
    let defaults = SupervisorConfig::default();
    let sup_cfg = SupervisorConfig {
        ckpt_ring: get(args, "ckpt-ring", defaults.ckpt_ring)?,
        max_retries: get(args, "max-retries", defaults.max_retries)?,
        divergence_window: get(args, "divergence-window", defaults.divergence_window)?,
        ..defaults
    };
    sup_cfg.validate().map_err(CliError::Usage)?;

    sweep_output_dir(&out);
    if let Some(state) = &state_path {
        sweep_output_dir(state);
    }

    eprintln!("[1/3] synthesizing {count} training instances at {net}x{net}...");
    let mut ref_cfg = IltConfig::refinement();
    ref_cfg.max_iterations = 50;
    let dataset = OpcDataset::synthesize(net, count, ref_cfg, seed).map_err(|e| classify("", e))?;

    let mut trainer = if let Some(state) = args.get("resume") {
        let trainer = GanTrainer::resume(state)
            .map_err(|e| classify(&format!("cannot resume from {state}"), e))?;
        eprintln!(
            "[2/3] resumed trainer from {state} at step {}/{}",
            trainer.step(),
            trainer.config().iterations
        );
        trainer
    } else {
        let mut generator = Generator::new(net, 8, seed);
        if pretrain > 0 {
            eprintln!("[2/3] ILT-guided pre-training ({pretrain} steps)...");
            let model = LithoModel::iccad2013_like_cached(net)
                .map_err(|e| CliError::Other(e.to_string()))?;
            let mut pcfg = PretrainConfig::paper_scaled();
            pcfg.iterations = pretrain;
            let stats = pretrain_generator(&mut generator, &model, &dataset, &pcfg)
                .map_err(|e| classify("pre-training", e))?;
            eprintln!(
                "      litho error {:.0} -> {:.0}",
                stats.first().map(|s| s.litho_error).unwrap_or(0.0),
                stats.last().map(|s| s.litho_error).unwrap_or(0.0)
            );
        } else {
            eprintln!("[2/3] skipping pre-training (--pretrain 0)");
        }
        let mut tcfg = TrainConfig::paper_scaled();
        tcfg.iterations = iters;
        GanTrainer::new(generator, Discriminator::new(net, 8, seed ^ 1), tcfg)
    };

    // With a state file the run gets the self-healing supervisor: a
    // checkpoint ring next to the state file provides rollback points,
    // and divergence (NaN/∞ or exploding loss) triggers rollback + LR
    // backoff instead of wasting the run.
    let mut supervisor = match &state_path {
        Some(state) => {
            let ring_dir = format!("{state}.ring");
            eprintln!(
                "      supervisor armed: ring {} (K={}), {} retr{}, window {}",
                ring_dir,
                sup_cfg.ckpt_ring,
                sup_cfg.max_retries,
                if sup_cfg.max_retries == 1 { "y" } else { "ies" },
                sup_cfg.divergence_window
            );
            Some(TrainSupervisor::new(&ring_dir, sup_cfg).map_err(|e| classify(&ring_dir, e))?)
        }
        None => None,
    };

    let remaining = trainer.config().iterations.saturating_sub(trainer.step());
    eprintln!("[3/3] adversarial training ({remaining} steps)...");
    // Train in slices so the log carries periodic obs summaries: per-step
    // latency from the span histograms plus pool activity, with no timing
    // code of its own.
    let report_every = (remaining / 5).max(1);
    let mut stats = Vec::with_capacity(remaining);
    while trainer.step() < trainer.config().iterations {
        let left = trainer.config().iterations - trainer.step();
        let slice = report_every.min(left);
        match &mut supervisor {
            Some(sup) => stats.extend(
                sup.run(&mut trainer, &dataset, slice).map_err(|e| classify("training", e))?,
            ),
            None => stats.extend(trainer.train_for(&dataset, slice)),
        }
        let snap = MetricsSnapshot::capture();
        let step_ms = |name: &str, f: fn(&gan_opc::obs::SpanStats) -> f64| {
            snap.span_stats(name).map(f).unwrap_or(0.0) / 1e6
        };
        eprintln!(
            "      step {:>4}/{} | l2 {:.4} | step p50 {:.1} ms mean {:.1} ms | \
             dispatches {} parks {}",
            trainer.step(),
            trainer.config().iterations,
            stats.last().map(|s| s.l2_loss).unwrap_or(0.0),
            step_ms("train_step", |s| s.p50_ns),
            step_ms("train_step", |s| s.mean_ns),
            snap.counter("pool_dispatches"),
            snap.counter("pool_worker_parks"),
        );
    }
    if let Some(sup) = &supervisor {
        if sup.retries_used() > 0 {
            eprintln!(
                "      supervisor recovered {} divergence(s); lr scale {:.3}",
                sup.retries_used(),
                sup.lr_scale()
            );
        }
    }
    eprintln!(
        "      mask L2 loss {:.4} -> {:.4}",
        stats.first().map(|s| s.l2_loss).unwrap_or(0.0),
        stats.last().map(|s| s.l2_loss).unwrap_or(0.0)
    );
    if let Some(state) = &state_path {
        trainer
            .save_checkpoint(state)
            .map_err(|e| classify(&format!("cannot save trainer state to {state}"), e))?;
        println!("saved resumable trainer state to {state}");
    }
    let (mut generator, _) = trainer.into_networks();
    generator.save(&out).map_err(|e| classify(&out, e))?;
    println!("saved generator checkpoint to {out}");
    Ok(())
}

fn cmd_evaluate(args: &HashMap<String, String>) -> Result<(), CliError> {
    let ckpt = args
        .get("ckpt")
        .ok_or_else(|| CliError::Usage("--ckpt is required for evaluate".into()))?;
    let net: usize = get(args, "net", 64)?;
    let size: usize = get(args, "size", 128)?;
    let mut cfg = FlowConfig::paper_scaled();
    cfg.net_size = net;
    cfg.litho_size = size;
    cfg.base_channels = 8; // must match `ganopc train`
    let mut flow = GanOpcFlow::new(cfg).map_err(|e| classify("", e))?;
    flow.generator_mut().load(ckpt).map_err(|e| classify(ckpt, e))?;

    println!("{:>4} {:>10} {:>10} {:>8}", "ID", "L2 (nm²)", "PVB (nm²)", "RT (s)");
    let mut sums = (0.0f64, 0.0f64, 0.0f64);
    let suite = benchmark_suite(2048);
    for clip in &suite {
        let target = clip.layout.rasterize_raster(size, size).binarize(0.5);
        let r = flow.optimize(&target).map_err(|e| classify("", e))?;
        println!(
            "{:>4} {:>10.0} {:>10.0} {:>8.2}",
            clip.id, r.l2_nm2, r.metrics.pvb_nm2, r.total_runtime_s
        );
        sums.0 += r.l2_nm2;
        sums.1 += r.metrics.pvb_nm2;
        sums.2 += r.total_runtime_s;
    }
    let n = suite.len() as f64;
    println!("{:>4} {:>10.0} {:>10.0} {:>8.2}", "avg", sums.0 / n, sums.1 / n, sums.2 / n);
    Ok(())
}

fn cmd_suite() -> Result<(), CliError> {
    println!("{:>4} {:>12} {:>12} {:>8}", "ID", "paper nm²", "ours nm²", "shapes");
    for clip in benchmark_suite(2048) {
        println!(
            "{:>4} {:>12} {:>12} {:>8}",
            clip.id,
            clip.paper_area_nm2,
            clip.layout.pattern_area(),
            clip.layout.shapes().len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let parsed = match parse_args(&argv[1..]) {
        Ok(map) => map,
        Err(e) => {
            eprintln!("error: {}\n", e.message());
            eprint!("{USAGE}");
            return ExitCode::from(e.exit_code());
        }
    };
    let metrics_path = parsed.get("metrics-json").cloned();
    if let Some(path) = &metrics_path {
        sweep_output_dir(path);
        // Opt into the per-iteration ILT EPE trace only when someone is
        // going to read it — it costs one extra aerial simulation per
        // sampled iteration.
        obs::set_epe_trace_stride(8);
    }
    let result = match command.as_str() {
        "synthesize" => cmd_synthesize(&parsed),
        "opc" => cmd_opc(&parsed),
        "train" => cmd_train(&parsed),
        "evaluate" => cmd_evaluate(&parsed),
        "suite" => cmd_suite(),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    };
    let result = result.and_then(|()| match &metrics_path {
        None => Ok(()),
        Some(path) => {
            let snapshot = MetricsSnapshot::capture();
            gan_opc::geometry::io::write_atomic(path, snapshot.render_json().as_bytes())
                .map_err(|e| CliError::Io(format!("cannot write metrics snapshot to {path}: {e}")))
                .map(|()| eprintln!("wrote metrics snapshot to {path}"))
        }
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}
