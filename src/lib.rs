//! # gan-opc — umbrella crate
//!
//! Full-stack Rust reproduction of **GAN-OPC: Mask Optimization with
//! Lithography-guided Generative Adversarial Nets** (Yang et al., DAC 2018).
//!
//! This crate re-exports the workspace members so downstream users can depend
//! on a single package:
//!
//! * [`fft`] — radix-2 complex FFT used by every optical computation;
//! * [`geometry`] — rectilinear layout model, design rules, clip synthesis;
//! * [`litho`] — Hopkins/SOCS lithography simulator and printability metrics;
//! * [`nn`] — CPU neural-network library (tensors, conv/deconv, optimizers);
//! * [`ilt`] — inverse-lithography (MOSAIC-style) mask optimizer;
//! * [`core`] — the GAN-OPC generator/discriminator, training algorithms and
//!   the end-to-end mask-optimization flow;
//! * [`obs`] — allocation-free counters/latency histograms/traces recorded
//!   by every subsystem above, snapshotted via
//!   [`obs::MetricsSnapshot::capture`].
//!
//! # Quickstart
//!
//! ```no_run
//! use gan_opc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a lithography model and synthesize a target clip.
//! let litho = LithoModel::iccad2013_like(128)?;
//! let rules = DesignRules::m1_32nm();
//! let clip = ClipSynthesizer::new(rules, 2048, 8).synthesize(7);
//! let target = clip.rasterize_raster(128, 128).binarize(0.5);
//!
//! // Optimize a mask with the ILT baseline.
//! let mut engine = IltEngine::new(litho, IltConfig::fast());
//! let result = engine.optimize(&target)?;
//! println!("final L2 = {} nm²", result.binary_l2_nm2);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for complete training and evaluation pipelines and
//! `DESIGN.md` / `EXPERIMENTS.md` for the experiment inventory.

pub use ganopc_core as core;
pub use ganopc_fault as fault;
pub use ganopc_fft as fft;
pub use ganopc_geometry as geometry;
pub use ganopc_ilt as ilt;
pub use ganopc_litho as litho;
pub use ganopc_mbopc as mbopc;
pub use ganopc_nn as nn;
pub use ganopc_obs as obs;

/// Common imports for working with the GAN-OPC stack.
pub mod prelude {
    pub use ganopc_core::{
        Discriminator, FlowConfig, GanOpcFlow, GanTrainer, Generator, PretrainConfig, Pretrainer,
        TrainConfig,
    };
    pub use ganopc_geometry::{ClipSynthesizer, DesignRules, Layout, Rect};
    pub use ganopc_ilt::{IltConfig, IltEngine, IltResult};
    pub use ganopc_litho::{Field, LithoModel, MaskMetrics};
    pub use ganopc_mbopc::{MbOpcConfig, MbOpcEngine};
    pub use ganopc_nn::Tensor;
}
