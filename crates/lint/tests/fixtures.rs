//! Fixture-based rule tests: one known-good and one known-bad snippet per
//! rule, asserting the rule ID, file, and line of each diagnostic. The
//! snippets live in string literals (this `tests/` tree is outside the
//! `src/` roots the workspace walker visits, so they never self-flag).

use ganopc_lint::rules::{
    RULE_ATOMIC_WRITE, RULE_ENV_READ, RULE_HOT_PATH_ALLOC, RULE_OBS, RULE_PANIC_POLICY,
    RULE_UNSAFE_SAFETY,
};
use ganopc_lint::{lint_source, Finding};

/// Asserts exactly one finding with the given coordinates.
fn assert_single(findings: &[Finding], rule: &str, file: &str, line: u32) {
    assert_eq!(findings.len(), 1, "expected exactly one finding, got {findings:#?}");
    let f = &findings[0];
    assert_eq!(f.rule, rule);
    assert_eq!(f.file, file);
    assert_eq!(f.line, line, "wrong line in {f}");
}

// --- rule 1: hot-path allocations ------------------------------------------

#[test]
fn allocation_in_marked_fn_is_flagged() {
    let src = "\
// lint: hot-path
pub fn step(xs: &[f32]) -> Vec<f32> {
    xs.iter().map(|x| x * 2.0).collect()
}
";
    let findings = lint_source("crates/demo/src/lib.rs", src);
    assert_single(&findings, RULE_HOT_PATH_ALLOC, "crates/demo/src/lib.rs", 3);
    assert!(findings[0].message.contains(".collect()"), "{}", findings[0]);
    assert!(findings[0].message.contains("`step`"), "{}", findings[0]);
}

#[test]
fn unmarked_fn_may_allocate() {
    let src = "\
pub fn build(xs: &[f32]) -> Vec<f32> {
    xs.to_vec()
}
";
    assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
}

#[test]
fn file_level_marker_covers_every_fn_and_cold_opts_out() {
    let src = "\
//! Module docs.
// lint: hot-path

pub fn inner(out: &mut [f32]) {
    let boxed = Box::new(1.0f32);
    out[0] = *boxed;
}

// lint: cold
pub fn convenience() -> Vec<f32> {
    vec![0.0; 4]
}
";
    let findings = lint_source("crates/demo/src/hot.rs", src);
    assert_single(&findings, RULE_HOT_PATH_ALLOC, "crates/demo/src/hot.rs", 5);
    assert!(findings[0].message.contains("Box::new"), "{}", findings[0]);
}

#[test]
fn alloc_comment_sanctions_and_constructors_are_exempt() {
    let src = "\
// lint: hot-path

pub fn dispatch(xs: &[f32]) -> Vec<f32> {
    // ALLOC: O(threads) job list, not O(data).
    xs.iter().copied().collect()
}

pub fn new_scratch(n: usize) -> Vec<f32> {
    vec![0.0; n]
}
";
    assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
}

#[test]
fn test_code_inside_hot_file_may_allocate() {
    let src = "\
// lint: hot-path

pub fn step(out: &mut [f32]) {
    out[0] += 1.0;
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch() {
        let v: Vec<u32> = (0..4).collect();
        assert_eq!(v.len(), 4);
    }
}
";
    assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
}

// --- rule 2: atomic writes --------------------------------------------------

#[test]
fn stray_file_create_is_flagged() {
    let src = "\
use std::fs::File;

pub fn dump(path: &str) -> std::io::Result<()> {
    let _f = File::create(path)?;
    Ok(())
}
";
    let findings = lint_source("crates/demo/src/lib.rs", src);
    assert_single(&findings, RULE_ATOMIC_WRITE, "crates/demo/src/lib.rs", 4);
    assert!(findings[0].message.contains("File::create"), "{}", findings[0]);
    assert!(findings[0].message.contains("write_atomic"), "{}", findings[0]);
}

#[test]
fn fs_write_and_open_options_are_flagged() {
    let src = "\
pub fn dump(path: &str) -> std::io::Result<()> {
    std::fs::write(path, b\"x\")?;
    let _o = std::fs::OpenOptions::new();
    Ok(())
}
";
    let findings = lint_source("crates/demo/src/lib.rs", src);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert_eq!((findings[0].rule, findings[0].line), (RULE_ATOMIC_WRITE, 2));
    assert_eq!((findings[1].rule, findings[1].line), (RULE_ATOMIC_WRITE, 3));
}

#[test]
fn geometry_io_is_the_sanctioned_writer() {
    let src = "\
pub fn write_atomic(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    std::io::Write::write_all(&mut f, bytes)
}
";
    assert!(lint_source("crates/geometry/src/io.rs", src).is_empty());
}

#[test]
fn file_create_in_test_code_is_fine() {
    let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn scratch_file() {
        let _f = std::fs::File::create(\"/tmp/x\").unwrap();
    }
}
";
    assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
}

// --- rule 3: cached env reads -----------------------------------------------

#[test]
fn uncached_env_read_is_flagged() {
    let src = "\
pub fn threads() -> usize {
    std::env::var(\"GANOPC_THREADS\").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}
";
    let findings = lint_source("crates/demo/src/lib.rs", src);
    // `.unwrap_or` is not `.unwrap`, so only the env rule fires.
    assert_single(&findings, RULE_ENV_READ, "crates/demo/src/lib.rs", 2);
    assert!(findings[0].message.contains("std::env::var"), "{}", findings[0]);
}

#[test]
fn var_os_is_also_an_env_read() {
    let src = "\
pub fn dir() -> Option<std::path::PathBuf> {
    std::env::var_os(\"GANOPC_CACHE_DIR\").map(Into::into)
}
";
    let findings = lint_source("crates/demo/src/lib.rs", src);
    assert_single(&findings, RULE_ENV_READ, "crates/demo/src/lib.rs", 2);
    assert!(findings[0].message.contains("var_os"), "{}", findings[0]);
}

#[test]
fn sanctioned_sites_may_read_env_through_a_oncelock() {
    let src = "\
static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

pub fn cap() -> usize {
    *CAP.get_or_init(|| {
        std::env::var(\"GANOPC_THREADS\").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
    })
}
";
    for file in ["crates/nn/src/pool.rs", "crates/litho/src/cache.rs", "crates/bench/src/lib.rs"] {
        assert!(lint_source(file, src).is_empty(), "{file} should be sanctioned");
    }
}

#[test]
fn one_shot_constructors_in_sanctioned_files_may_read_env() {
    let src = "\
pub fn from_env() -> bool {
    std::env::var(\"GANOPC_SCALE\").as_deref() == Ok(\"paper\")
}
";
    assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
}

#[test]
fn reverting_the_oncelock_caching_re_flags_a_sanctioned_site() {
    // The exact regression class PR 4 fixed in pool.rs: a per-call env
    // read, no `get_or_init` in the enclosing fn.
    let src = "\
pub fn cap() -> usize {
    std::env::var(\"GANOPC_THREADS\").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}
";
    let findings = lint_source("crates/nn/src/pool.rs", src);
    assert_single(&findings, RULE_ENV_READ, "crates/nn/src/pool.rs", 2);
    assert!(findings[0].message.contains("get_or_init"), "{}", findings[0]);
}

// --- rule 4: panic policy ---------------------------------------------------

#[test]
fn unjustified_unwrap_is_flagged() {
    let src = "\
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
";
    let findings = lint_source("crates/demo/src/lib.rs", src);
    assert_single(&findings, RULE_PANIC_POLICY, "crates/demo/src/lib.rs", 2);
    assert!(findings[0].message.contains(".unwrap()"), "{}", findings[0]);
}

#[test]
fn panic_comment_justifies_expect_and_panic_macro() {
    let src = "\
pub fn head(xs: &[u32]) -> u32 {
    // PANIC: callers guarantee a non-empty slice.
    *xs.first().expect(\"nonempty\")
}

pub fn boom(flag: bool) {
    if flag {
        // PANIC: debug-build guard, documented in DESIGN.md §12.
        panic!(\"tripped\");
    }
}
";
    assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
}

#[test]
fn multi_line_panic_justification_extends_to_the_call() {
    let src = "\
pub fn head(xs: &[u32]) -> u32 {
    // PANIC: a justification long enough to wrap across two comment
    // lines still sanctions the call directly below it.
    *xs.first().unwrap()
}
";
    assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
}

#[test]
fn binaries_and_tests_may_unwrap() {
    let src = "\
pub fn main() {
    run().unwrap();
}

fn run() -> Result<(), String> {
    Ok(())
}
";
    assert!(lint_source("crates/demo/src/main.rs", src).is_empty());
    assert!(lint_source("crates/demo/src/bin/tool.rs", src).is_empty());
    // The same code in a library file is flagged.
    let findings = lint_source("crates/demo/src/lib.rs", src);
    assert_single(&findings, RULE_PANIC_POLICY, "crates/demo/src/lib.rs", 2);
}

// --- rule 5: unsafe hygiene -------------------------------------------------

#[test]
fn bare_unsafe_block_is_flagged() {
    let src = "\
pub fn read(p: *const u32) -> u32 {
    unsafe { *p }
}
";
    let findings = lint_source("crates/demo/src/lib.rs", src);
    assert_single(&findings, RULE_UNSAFE_SAFETY, "crates/demo/src/lib.rs", 2);
    assert!(findings[0].message.contains("SAFETY"), "{}", findings[0]);
}

#[test]
fn safety_comment_satisfies_the_rule() {
    let src = "\
pub fn read(p: *const u32) -> u32 {
    // SAFETY: callers pass a pointer derived from a live &u32.
    unsafe { *p }
}
";
    assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
}

// --- rule 6: obs discipline -------------------------------------------------

#[test]
fn discarded_span_guard_is_flagged() {
    // `let _ =` drops the guard immediately: the span records ~0 ns.
    let src = "\
pub fn step() {
    let _ = obs::span(obs::Span::TrainStep);
    work();
}
";
    let findings = lint_source("crates/demo/src/lib.rs", src);
    assert_single(&findings, RULE_OBS, "crates/demo/src/lib.rs", 2);
    assert!(findings[0].message.contains("span guard"), "{}", findings[0]);
}

#[test]
fn bare_statement_span_is_flagged() {
    let src = "\
pub fn step() {
    ganopc_obs::span(ganopc_obs::Span::TrainStep);
    work();
}
";
    let findings = lint_source("crates/demo/src/lib.rs", src);
    assert_single(&findings, RULE_OBS, "crates/demo/src/lib.rs", 2);
}

#[test]
fn bound_guards_and_finish_are_fine() {
    let src = "\
pub fn step() {
    let _sp = obs::span(obs::Span::TrainStep);
    let g = obs::span(obs::Span::TrainGForward);
    work();
    drop(g);
    let dur = obs::span(obs::Span::Infer).finish();
    use_duration(dur);
}
";
    assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
}

#[test]
fn metrics_in_cold_fns_are_flagged() {
    // Both the attribute and the marker declare an uninstrumented error
    // path; any obs recording inside is a violation.
    let src = "\
#[cold]
pub fn on_error() {
    obs::counter_add(obs::Counter::TrainSteps, 1);
}

// lint: cold
pub fn bail() {
    let _sp = ganopc_obs::span(ganopc_obs::Span::TrainStep);
}
";
    let findings = lint_source("crates/demo/src/lib.rs", src);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert_eq!((findings[0].rule, findings[0].line), (RULE_OBS, 3));
    assert_eq!((findings[1].rule, findings[1].line), (RULE_OBS, 8));
    assert!(findings[0].message.contains("`on_error`"), "{}", findings[0]);
    assert!(findings[1].message.contains("`bail`"), "{}", findings[1]);
}

#[test]
fn warm_fns_may_record_metrics() {
    let src = "\
pub fn step() {
    obs::counter_add(obs::Counter::TrainSteps, 1);
    obs::trace_push(obs::Trace::IltLoss, 0.5);
}
";
    assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
}

// --- cross-cutting ----------------------------------------------------------

#[test]
fn forbidden_names_inside_strings_and_comments_are_ignored() {
    let src = "\
// File::create and std::env::var are discussed here only.
pub fn describe() -> &'static str {
    \"never calls File::create, fs::write, or .unwrap()\"
}
";
    assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
}

#[test]
fn display_format_is_stable() {
    let src = "\
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
";
    let findings = lint_source("crates/demo/src/lib.rs", src);
    let line = findings[0].to_string();
    assert!(
        line.starts_with("panic-policy:crates/demo/src/lib.rs:2: "),
        "unexpected diagnostic shape: {line}"
    );
}

// --- robustness-layer coverage ----------------------------------------------
// The walker visits every `crates/*/src` tree, so the fault plane and the
// supervisor are linted like any other crate; these fixtures pin the rules
// that matter most there to the paths the robustness layer actually uses.

#[test]
fn fault_plane_must_not_bypass_the_atomic_writer() {
    // A fault sink that wrote artifacts directly would dodge its own
    // write-fault hooks; the atomic-write rule catches the bypass.
    let src = "\
pub fn persist_plan(plan: &[u8]) {
    std::fs::write(\"plan.bin\", plan).ok();
}
";
    let findings = lint_source("crates/fault/src/lib.rs", src);
    assert_single(&findings, RULE_ATOMIC_WRITE, "crates/fault/src/lib.rs", 2);
}

#[test]
fn supervisor_recovery_paths_obey_the_panic_policy() {
    // Recovery code exists to turn faults into typed errors — an
    // unsanctioned unwrap inside it defeats the whole layer, while the
    // documented lock-poison recovery idiom stays sanctioned.
    let src = "\
pub fn handle_trip(ring: Option<&str>) -> &str {
    ring.unwrap()
}

pub fn sink_lock(lock: &std::sync::Mutex<u32>) -> u32 {
    // PANIC: lock poisoning is recovered, never propagated, by design.
    *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
";
    let findings = lint_source("crates/ganopc/src/supervisor.rs", src);
    assert_single(&findings, RULE_PANIC_POLICY, "crates/ganopc/src/supervisor.rs", 2);
}
