//! The six workspace invariant rules, evaluated over a lexed file.
//!
//! Rules are token-pattern matches scoped by a light structural pass
//! ([`FileModel`]) that tracks `#[cfg(test)]`/`#[test]` regions, attribute
//! spans, function bodies, and the lint marker comments:
//!
//! * `// lint: hot-path` — marks the next `fn` (or, before any code, the
//!   whole file) as a hot path subject to the allocation rule.
//! * `// lint: cold` — opts a `fn` out of a file-level hot-path marker.
//! * `// ALLOC: <why>` — sanctions an allocating call in a hot path
//!   (same line or the line above).
//! * `// PANIC: <why unreachable>` — justifies an `unwrap`/`expect`/
//!   `panic!` in library code (same line or the line above).
//! * `// SAFETY: <why sound>` — required adjacent to every `unsafe` block.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::HashSet;

/// One diagnostic. Rendered as `rule:file:line: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the workspace root, with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation including the remedy.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: {}", self.rule, self.file, self.line, self.message)
    }
}

/// Rule IDs, in the order they are documented in DESIGN.md §12.
pub const RULE_HOT_PATH_ALLOC: &str = "hot-path-alloc";
pub const RULE_ATOMIC_WRITE: &str = "atomic-write";
pub const RULE_ENV_READ: &str = "env-read";
pub const RULE_PANIC_POLICY: &str = "panic-policy";
pub const RULE_UNSAFE_SAFETY: &str = "unsafe-safety";
pub const RULE_OBS: &str = "obs-discipline";

/// The only file allowed to open files for writing directly: everything
/// else must route through its `write_atomic` helpers.
const ATOMIC_WRITE_EXEMPT: &str = "crates/geometry/src/io.rs";

/// Files sanctioned to read environment variables (each caches the read).
const ENV_READ_SANCTIONED: [&str; 3] =
    ["crates/nn/src/pool.rs", "crates/litho/src/cache.rs", "crates/bench/src/lib.rs"];

/// Lints a single source file. `rel_path` is the workspace-relative path
/// used both for diagnostics and for path-scoped rules (exemptions,
/// sanctioned files, binary-vs-library classification).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let model = FileModel::build(rel_path, src);
    let mut out = Vec::new();
    model.check_hot_path_alloc(&mut out);
    model.check_atomic_write(&mut out);
    model.check_env_read(&mut out);
    model.check_panic_policy(&mut out);
    model.check_unsafe_safety(&mut out);
    model.check_obs(&mut out);
    out.sort();
    out.dedup();
    out
}

/// A function item: its name and the token range of its `{ … }` body.
struct FnSpan {
    name: String,
    /// Token indices of the body, including both braces.
    body: std::ops::Range<usize>,
    hot: bool,
    /// `#[cold]`-attributed or `// lint: cold`-marked: a declared error
    /// path, off-limits to metrics recording.
    cold: bool,
}

/// Per-file structural facts shared by all rules.
struct FileModel {
    rel_path: String,
    toks: Vec<Tok>,
    /// Token lies inside a `#[cfg(test)]` / `#[test]` region.
    in_test: Vec<bool>,
    /// Token is part of a `#[...]` / `#![...]` attribute.
    in_attr: Vec<bool>,
    /// Lines containing at least one non-attribute code token.
    code_lines: HashSet<u32>,
    hot_marker_lines: HashSet<u32>,
    cold_marker_lines: HashSet<u32>,
    alloc_ok_lines: HashSet<u32>,
    panic_ok_lines: HashSet<u32>,
    safety_lines: HashSet<u32>,
    file_hot: bool,
    fns: Vec<FnSpan>,
}

impl FileModel {
    fn build(rel_path: &str, src: &str) -> FileModel {
        let lexed = lex(src);
        let toks = lexed.tokens;
        let n = toks.len();

        // --- attribute spans and test regions ------------------------------
        let mut in_test = vec![false; n];
        let mut in_attr = vec![false; n];
        let mut depth = 0i64;
        let mut test_stack: Vec<i64> = Vec::new();
        let mut pending_test = false;
        let mut i = 0usize;
        while i < n {
            if toks[i].is_punct('#') {
                let mut j = i + 1;
                if j < n && toks[j].is_punct('!') {
                    j += 1;
                }
                if j < n && toks[j].is_punct('[') {
                    let mut brackets = 0i64;
                    let mut k = j;
                    while k < n {
                        if toks[k].is_punct('[') {
                            brackets += 1;
                        } else if toks[k].is_punct(']') {
                            brackets -= 1;
                            if brackets == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    let k = k.min(n - 1);
                    let inside_test = !test_stack.is_empty();
                    for flag in i..=k {
                        in_attr[flag] = true;
                        in_test[flag] = inside_test;
                    }
                    if is_test_attr(&toks[j + 1..=k.saturating_sub(1).max(j)]) {
                        pending_test = true;
                    }
                    i = k + 1;
                    continue;
                }
            }
            in_test[i] = !test_stack.is_empty();
            match toks[i].kind {
                TokKind::Punct('{') => {
                    depth += 1;
                    if pending_test {
                        test_stack.push(depth);
                        pending_test = false;
                        in_test[i] = true;
                    }
                }
                TokKind::Punct('}') => {
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    depth -= 1;
                }
                TokKind::Punct(';') => pending_test = false,
                _ => {}
            }
            i += 1;
        }

        // --- line classifications ------------------------------------------
        let mut code_lines = HashSet::new();
        for (idx, t) in toks.iter().enumerate() {
            if !in_attr[idx] {
                code_lines.insert(t.line);
            }
        }
        let first_code_line = toks
            .iter()
            .enumerate()
            .find(|(idx, _)| !in_attr[*idx])
            .map(|(_, t)| t.line)
            .unwrap_or(u32::MAX);

        let mut hot_marker_lines = HashSet::new();
        let mut cold_marker_lines = HashSet::new();
        let mut alloc_ok_lines = HashSet::new();
        let mut panic_ok_lines = HashSet::new();
        let mut safety_lines = HashSet::new();
        let mut file_hot = false;
        for c in &lexed.comments {
            // Doc comments are prose, not markers: `/// lint: hot-path`
            // in documentation must not change semantics.
            if c.text.starts_with("///")
                || c.text.starts_with("//!")
                || c.text.starts_with("/**")
                || c.text.starts_with("/*!")
            {
                continue;
            }
            let body = c.text.trim_start_matches('/').trim();
            if body == "lint: hot-path" {
                if c.start_line < first_code_line {
                    file_hot = true;
                } else {
                    hot_marker_lines.insert(c.start_line);
                }
            }
            if body == "lint: cold" {
                cold_marker_lines.insert(c.start_line);
            }
            if c.text.contains("ALLOC:") {
                alloc_ok_lines.extend(c.start_line..=c.end_line);
            }
            if c.text.contains("PANIC:") {
                panic_ok_lines.extend(c.start_line..=c.end_line);
            }
            if c.text.contains("SAFETY:") {
                safety_lines.extend(c.start_line..=c.end_line);
            }
        }
        // A justification may wrap onto continuation lines: a tagged
        // comment extends through every immediately following comment
        // line, so the block as a whole sits adjacent to the code line.
        for (a, b) in lexed.comments.iter().zip(lexed.comments.iter().skip(1)) {
            if b.start_line != a.end_line + 1 {
                continue;
            }
            for set in [&mut alloc_ok_lines, &mut panic_ok_lines, &mut safety_lines] {
                if set.contains(&a.end_line) {
                    set.extend(b.start_line..=b.end_line);
                }
            }
        }

        let mut model = FileModel {
            rel_path: rel_path.to_string(),
            toks,
            in_test,
            in_attr,
            code_lines,
            hot_marker_lines,
            cold_marker_lines,
            alloc_ok_lines,
            panic_ok_lines,
            safety_lines,
            file_hot,
            fns: Vec::new(),
        };
        model.scan_fns();
        model
    }

    /// Finds every `fn` item with a body and decides whether it is hot.
    fn scan_fns(&mut self) {
        let n = self.toks.len();
        let mut fns = Vec::new();
        for i in 0..n {
            if !self.toks[i].is_ident("fn") || self.in_attr[i] {
                continue;
            }
            let name = match self.toks.get(i + 1) {
                Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                _ => continue,
            };
            // First `{` before a `;` opens the body (a `;` means a
            // bodiless trait-method declaration).
            let mut body_open = None;
            let mut j = i + 2;
            while j < n {
                if self.toks[j].is_punct('{') {
                    body_open = Some(j);
                    break;
                }
                if self.toks[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            let Some(open) = body_open else { continue };
            let mut braces = 0i64;
            let mut close = open;
            while close < n {
                if self.toks[close].is_punct('{') {
                    braces += 1;
                } else if self.toks[close].is_punct('}') {
                    braces -= 1;
                    if braces == 0 {
                        break;
                    }
                }
                close += 1;
            }
            let kw_line = self.toks[i].line;
            let cold_marked = self.marker_applies(&self.cold_marker_lines, kw_line);
            let hot = if cold_marked {
                false
            } else {
                self.file_hot || self.marker_applies(&self.hot_marker_lines, kw_line)
            };
            let cold = cold_marked || self.has_cold_attr(i);
            fns.push(FnSpan { name, body: open..(close + 1).min(n), hot, cold });
        }
        self.fns = fns;
    }

    /// Is the `fn` keyword at token `i` preceded by a `#[cold]` attribute?
    /// Walks back over attributes and declaration modifiers (`pub(crate)`,
    /// `unsafe`, `const`, `async`, `extern`); anything else ends the item.
    fn has_cold_attr(&self, i: usize) -> bool {
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &self.toks[j];
            if self.in_attr[j] {
                if t.is_ident("cold") {
                    return true;
                }
                continue;
            }
            let modifier = match t.kind {
                TokKind::Ident => matches!(
                    t.text.as_str(),
                    "pub"
                        | "crate"
                        | "super"
                        | "self"
                        | "in"
                        | "unsafe"
                        | "const"
                        | "async"
                        | "extern"
                ),
                TokKind::Punct(c) => c == '(' || c == ')',
                _ => false,
            };
            if !modifier {
                return false;
            }
        }
        false
    }

    /// A marker on line `l` applies to an item starting at `item_line`
    /// when every line strictly between them carries no code (comments,
    /// attributes, and blank lines are transparent).
    fn marker_applies(&self, markers: &HashSet<u32>, item_line: u32) -> bool {
        markers
            .iter()
            .any(|&l| l < item_line && (l + 1..item_line).all(|x| !self.code_lines.contains(&x)))
    }

    fn justified(&self, set: &HashSet<u32>, line: u32) -> bool {
        set.contains(&line) || (line > 1 && set.contains(&(line - 1)))
    }

    /// Binary targets (`src/main.rs`, `src/bin/*`) are exempt from the
    /// panic policy: a CLI aborting with a message is acceptable there.
    fn is_binary_target(&self) -> bool {
        self.rel_path.ends_with("src/main.rs") || self.rel_path.contains("/src/bin/")
    }

    fn ident_at(&self, i: usize, name: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_ident(name))
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    /// `base :: name` ending at index `i` (the `name` token).
    fn path_call(&self, i: usize, base: &str) -> bool {
        i >= 3
            && self.punct_at(i - 1, ':')
            && self.punct_at(i - 2, ':')
            && self.ident_at(i - 3, base)
    }

    /// `.name(` or `.name::<…>(` at index `i` (the `name` token).
    fn method_call(&self, i: usize) -> bool {
        i >= 1
            && self.punct_at(i - 1, '.')
            && (self.punct_at(i + 1, '(') || self.punct_at(i + 1, ':'))
    }

    /// The innermost function whose body contains token `i`.
    fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns.iter().filter(|f| f.body.contains(&i)).min_by_key(|f| f.body.end - f.body.start)
    }

    fn push(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
        out.push(Finding { file: self.rel_path.clone(), line, rule, message });
    }

    // --- rule 1: hot-path allocation ---------------------------------------
    fn check_hot_path_alloc(&self, out: &mut Vec<Finding>) {
        for f in &self.fns {
            // Constructors may allocate: the rule protects steady state,
            // and `new`/`with_*`/`default` run once at setup.
            if !f.hot || is_constructor(&f.name) {
                continue;
            }
            for i in f.body.clone() {
                if self.in_test[i] || self.in_attr[i] {
                    continue;
                }
                let t = &self.toks[i];
                if t.kind != TokKind::Ident {
                    continue;
                }
                let what = match t.text.as_str() {
                    "collect" | "to_vec" | "clone" if self.method_call(i) => {
                        format!(".{}()", t.text)
                    }
                    "vec" if self.punct_at(i + 1, '!') => "vec![]".to_string(),
                    "format" if self.punct_at(i + 1, '!') => "format!".to_string(),
                    "new" if self.path_call(i, "Vec") => "Vec::new".to_string(),
                    "new" if self.path_call(i, "Box") => "Box::new".to_string(),
                    "from" if self.path_call(i, "String") => "String::from".to_string(),
                    _ => continue,
                };
                if self.justified(&self.alloc_ok_lines, t.line) {
                    continue;
                }
                self.push(
                    out,
                    RULE_HOT_PATH_ALLOC,
                    t.line,
                    format!(
                        "allocating call `{what}` in hot path `{}` (sanction with `// ALLOC: <why>` if intentional)",
                        f.name
                    ),
                );
            }
        }
    }

    // --- rule 2: atomic writes ---------------------------------------------
    fn check_atomic_write(&self, out: &mut Vec<Finding>) {
        if self.rel_path == ATOMIC_WRITE_EXEMPT {
            return;
        }
        for (i, t) in self.toks.iter().enumerate() {
            if self.in_test[i] || self.in_attr[i] || t.kind != TokKind::Ident {
                continue;
            }
            let what = match t.text.as_str() {
                "create" if self.path_call(i, "File") => "File::create",
                "write" if self.path_call(i, "fs") => "fs::write",
                "OpenOptions" => "OpenOptions",
                _ => continue,
            };
            self.push(
                out,
                RULE_ATOMIC_WRITE,
                t.line,
                format!(
                    "`{what}` outside {ATOMIC_WRITE_EXEMPT} — route artifact writes through geometry::io::write_atomic"
                ),
            );
        }
    }

    // --- rule 3: cached env reads ------------------------------------------
    fn check_env_read(&self, out: &mut Vec<Finding>) {
        let sanctioned = ENV_READ_SANCTIONED.contains(&self.rel_path.as_str());
        for (i, t) in self.toks.iter().enumerate() {
            if self.in_test[i] || self.in_attr[i] || t.kind != TokKind::Ident {
                continue;
            }
            if !t.text.starts_with("var") || !self.path_call(i, "env") {
                continue;
            }
            if sanctioned {
                // Sanctioned files must still read once: through a
                // `OnceLock::get_or_init` closure, or in a one-shot
                // constructor. Reverting the caching re-flags the site.
                let cached = self.enclosing_fn(i).is_some_and(|f| {
                    is_constructor(&f.name)
                        || self.toks[f.body.clone()].iter().any(|t| t.is_ident("get_or_init"))
                });
                if !cached {
                    self.push(
                        out,
                        RULE_ENV_READ,
                        t.line,
                        format!(
                            "`std::env::{}` in a sanctioned file must be read once via `OnceLock::get_or_init` (or a one-shot constructor)",
                            t.text
                        ),
                    );
                }
            } else {
                self.push(
                    out,
                    RULE_ENV_READ,
                    t.line,
                    format!(
                        "`std::env::{}` outside the sanctioned cached sites ({})",
                        t.text,
                        ENV_READ_SANCTIONED.join(", ")
                    ),
                );
            }
        }
    }

    // --- rule 4: panic policy ----------------------------------------------
    fn check_panic_policy(&self, out: &mut Vec<Finding>) {
        if self.is_binary_target() {
            return;
        }
        for (i, t) in self.toks.iter().enumerate() {
            if self.in_test[i] || self.in_attr[i] || t.kind != TokKind::Ident {
                continue;
            }
            let what = match t.text.as_str() {
                "unwrap" | "expect"
                    if i >= 1 && self.punct_at(i - 1, '.') && self.punct_at(i + 1, '(') =>
                {
                    format!(".{}()", t.text)
                }
                "panic" if self.punct_at(i + 1, '!') => "panic!".to_string(),
                _ => continue,
            };
            if self.justified(&self.panic_ok_lines, t.line) {
                continue;
            }
            self.push(
                out,
                RULE_PANIC_POLICY,
                t.line,
                format!(
                    "`{what}` in library code — propagate a Result or justify with `// PANIC: <why unreachable>`"
                ),
            );
        }
    }

    // --- rule 5: unsafe hygiene --------------------------------------------
    fn check_unsafe_safety(&self, out: &mut Vec<Finding>) {
        for (i, t) in self.toks.iter().enumerate() {
            if self.in_attr[i] || !t.is_ident("unsafe") || !self.punct_at(i + 1, '{') {
                continue;
            }
            if self.justified(&self.safety_lines, t.line) {
                continue;
            }
            self.push(
                out,
                RULE_UNSAFE_SAFETY,
                t.line,
                "`unsafe` block without an adjacent `// SAFETY: <why sound>` comment".to_string(),
            );
        }
    }

    // --- rule 6: obs discipline --------------------------------------------
    //
    // Two failure modes of the instrumentation layer:
    //
    // * A span guard discarded at its own statement (`let _ = obs::span(…)`
    //   or a bare `obs::span(…);`) records an ~0 ns sample instead of the
    //   phase it was meant to cover — in particular it cannot survive a `?`
    //   or early return in the phase. Guards must be bound to a live
    //   binding (`let _sp = …`, underscore-prefixed names are fine) or
    //   consumed via `.finish()`.
    // * Metrics inside `#[cold]` / `// lint: cold` functions: error paths
    //   stay uninstrumented so failure handling never pays (or skews) the
    //   observability budget.
    fn check_obs(&self, out: &mut Vec<Finding>) {
        for (i, t) in self.toks.iter().enumerate() {
            if self.in_test[i] || self.in_attr[i] || t.kind != TokKind::Ident {
                continue;
            }
            if !(self.path_call(i, "obs") || self.path_call(i, "ganopc_obs")) {
                continue;
            }
            if let Some(f) = self.enclosing_fn(i) {
                if f.cold {
                    self.push(
                        out,
                        RULE_OBS,
                        t.line,
                        format!(
                            "obs recording inside cold fn `{}` — `#[cold]`/`// lint: cold` error paths stay uninstrumented",
                            f.name
                        ),
                    );
                    continue;
                }
            }
            if t.text == "span" && self.punct_at(i + 1, '(') && self.span_guard_discarded(i) {
                self.push(
                    out,
                    RULE_OBS,
                    t.line,
                    "span guard dropped at its own statement — bind it (`let _sp = obs::span(…)`) so the span covers the scope it measures"
                        .to_string(),
                );
            }
        }
    }

    /// Does the `obs::span(...)` call whose `span` token sits at `i` discard
    /// its guard immediately? True for `let _ = obs::span(…);` and for a
    /// bare statement `obs::span(…);` — both drop the guard at the `;`.
    fn span_guard_discarded(&self, i: usize) -> bool {
        // `let _ = …`: the wildcard pattern drops the guard at once.
        if i >= 6
            && self.ident_at(i - 6, "let")
            && self.ident_at(i - 5, "_")
            && self.punct_at(i - 4, '=')
        {
            return true;
        }
        // Bare statement: the path starts a statement and the call's close
        // paren is immediately followed by `;` (no binding, no method
        // chain, no surrounding expression).
        let starts_stmt = match i.checked_sub(4) {
            None => true,
            Some(b) => self.punct_at(b, ';') || self.punct_at(b, '{') || self.punct_at(b, '}'),
        };
        if !starts_stmt {
            return false;
        }
        let mut depth = 0i64;
        let mut k = i + 1;
        while k < self.toks.len() {
            if self.punct_at(k, '(') {
                depth += 1;
            } else if self.punct_at(k, ')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        self.punct_at(k + 1, ';')
    }
}

/// `#[test]`, `#[cfg(test)]`, and friends — but not `#[cfg(not(test))]`.
fn is_test_attr(inner: &[Tok]) -> bool {
    if inner.len() == 1 && inner[0].is_ident("test") {
        return true;
    }
    inner.windows(4).any(|w| {
        w[0].is_ident("cfg") && w[1].is_punct('(') && w[2].is_ident("test") && w[3].is_punct(')')
    })
}

/// One-shot setup functions exempt from the hot-path allocation rule.
fn is_constructor(name: &str) -> bool {
    name == "new"
        || name == "default"
        || name.starts_with("new_")
        || name.starts_with("with_")
        || name.starts_with("from_")
}
