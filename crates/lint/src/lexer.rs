//! A small hand-rolled Rust lexer.
//!
//! The linter's rules are lexical pattern matches over token streams, so
//! the lexer only needs to be precise about the things that would cause
//! false positives in a grep-based checker: comments (line, doc, nested
//! block), string/char literals (including raw and byte strings), and
//! lifetimes-vs-char-literals. It deliberately does not build an AST —
//! the workspace compiles offline against `vendor/`, so pulling in `syn`
//! is not an option, and the rules only ever need token adjacency plus
//! brace-depth tracking (see [`crate::scope`]).

/// Token classes the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Vec`, ...).
    Ident,
    /// Single punctuation character (`{`, `:`, `!`, `#`, ...).
    Punct(char),
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (empty for punctuation — the char lives in the kind).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with the span of lines it covers (block comments may span
/// several). Doc comments are comments too.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based first line.
    pub start_line: u32,
    /// 1-based last line (== `start_line` for `//` comments).
    pub end_line: u32,
    /// Comment body without the `//` / `/*` markers.
    pub text: String,
}

/// The lexer output: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments.
///
/// The lexer is total: any byte sequence produces *some* token stream
/// (unterminated literals run to end of input), so a syntactically broken
/// file degrades to weaker linting rather than a crash.
pub fn lex(src: &str) -> Lexed {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' => self.raw_or_ident(),
                _ if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    self.push(TokKind::Punct(c as char), String::new(), self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { start_line: line, end_line: line, text });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { start_line, end_line: self.line, text });
    }

    /// Ordinary (escaped) string literal; the opening quote is current.
    fn string(&mut self) {
        let line = self.line;
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// Raw string with `hashes` trailing `#`s; cursor is on the opening `"`.
    fn raw_string(&mut self, hashes: usize) {
        let line = self.line;
        self.pos += 1;
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.src[self.pos] == b'"'
                && self.src[self.pos + 1..].iter().take(hashes).filter(|&&b| b == b'#').count()
                    == hashes
            {
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// `'a'` / `b'a'` char literals versus `'a` lifetimes.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let is_char = match next {
            Some(b'\\') => true,
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() => {
                // 'x' is a char only when a quote closes it immediately;
                // otherwise it is the lifetime 'x (or 'xyz).
                self.peek(2) == Some(b'\'')
            }
            Some(_) => true, // '(' etc: a char literal of punctuation
            None => false,
        };
        if !is_char {
            self.pos += 1;
            let start = self.pos;
            while self.pos < self.src.len()
                && (self.src[self.pos] == b'_' || self.src[self.pos].is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Char, String::new(), line);
    }

    /// Disambiguates `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` and plain
    /// identifiers starting with `r`/`b` (including `r#raw_idents`).
    fn raw_or_ident(&mut self) {
        let c = self.src[self.pos];
        let mut ahead = 1usize;
        if c == b'b' && self.peek(1) == Some(b'r') {
            ahead = 2;
        }
        if c == b'b' && self.peek(1) == Some(b'\'') {
            self.pos += 1;
            self.char_or_lifetime();
            return;
        }
        if c == b'b' && self.peek(1) == Some(b'"') {
            self.pos += 1;
            self.string();
            return;
        }
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) == Some(b'"') && (ahead == 2 || c == b'r') {
            self.pos += ahead + hashes;
            self.raw_string(hashes);
            return;
        }
        self.ident();
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        // Skip a raw-identifier prefix (`r#match`) so the text is the name.
        if self.src[self.pos] == b'r' && self.peek(1) == Some(b'#') {
            self.pos += 2;
        }
        while self.pos < self.src.len()
            && (self.src[self.pos] == b'_' || self.src[self.pos].is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text_start = if self.src[start] == b'r' && self.src.get(start + 1) == Some(&b'#') {
            start + 2
        } else {
            start
        };
        let text = String::from_utf8_lossy(&self.src[text_start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        while self.pos < self.src.len()
            && (self.src[self.pos] == b'_' || self.src[self.pos].is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        // Fractional part: a dot followed by a digit (so `0..n` ranges and
        // `1.max(2)` method calls keep their dots as punctuation).
        if self.pos + 1 < self.src.len()
            && self.src[self.pos] == b'.'
            && self.src[self.pos + 1].is_ascii_digit()
        {
            self.pos += 1;
            while self.pos < self.src.len()
                && (self.src[self.pos] == b'_' || self.src[self.pos].is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
        }
        self.push(TokKind::Num, String::new(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_do_not_produce_code_tokens() {
        let l = lex("// File::create in a comment\nlet x = 1; /* fs::write */");
        assert!(l.tokens.iter().all(|t| t.text != "File" && t.text != "fs"));
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r##"let s = "File::create"; let r = r#"fs::write"#;"##);
        assert!(l.tokens.iter().all(|t| t.text != "File" && t.text != "fs"));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert!(!l.tokens.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn char_literals_including_escapes() {
        let l = lex(r"let a = 'x'; let b = '\n'; let c = '\''; let d = b'q';");
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 4);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let l = lex("/* outer /* inner */ still comment */\nfn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].start_line, 1);
        let f = l.tokens.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 2);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let l = lex("let s = \"a\nb\nc\";\nfn g() {}");
        let g = l.tokens.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(g.line, 4);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_method_calls() {
        let l = lex("for i in 0..10 { let x = 1.5e3; let y = 2.0f32; }");
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the `..` of the range must stay punctuation");
    }

    #[test]
    fn raw_identifiers_keep_their_name() {
        assert!(idents("let r#type = 1;").contains(&"type".to_string()));
    }

    #[test]
    fn vec_macro_tokens() {
        let l = lex("let v = vec![1, 2];");
        let i = l.tokens.iter().position(|t| t.is_ident("vec")).unwrap();
        assert!(l.tokens[i + 1].is_punct('!'));
    }
}
