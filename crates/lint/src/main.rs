//! `ganopc-lint` binary: lint the workspace, print one finding per line
//! in the stable `rule:file:line: message` format, and exit non-zero on
//! any diagnostic so `scripts/check.sh` can gate on it.

use std::process::ExitCode;

fn main() -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ganopc-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = ganopc_lint::find_workspace_root(&cwd);
    match ganopc_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            eprintln!("ganopc-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("ganopc-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ganopc-lint: io error while walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
