//! `ganopc-lint` — dependency-free static enforcement of workspace
//! invariants.
//!
//! The repo's hard-won invariants (zero-allocation hot paths, atomic
//! artifact writes, cached env reads, a no-silent-panic policy, unsafe
//! hygiene, observability discipline) used to live only in DESIGN.md and
//! reviewers' heads. This
//! crate turns them into machine-checked rules: a small hand-rolled
//! lexer (`lexer`) feeds token-pattern rules (`rules`) that walk every
//! workspace `src/` tree. `scripts/check.sh` fails on any finding.
//!
//! Diagnostics use a stable one-line format so tooling can diff runs:
//!
//! ```text
//! rule:file:line: message
//! ```
//!
//! See DESIGN.md §12 for the rule catalogue, the marker comment syntax
//! (`// lint: hot-path`, `// ALLOC:`, `// PANIC:`, `// SAFETY:`), and
//! the procedure for sanctioning a new call site.

pub mod lexer;
pub mod rules;

pub use rules::{lint_source, Finding};

use std::io;
use std::path::{Path, PathBuf};

/// Lints every `.rs` file under the workspace root's `src/` trees
/// (`src/` and `crates/*/src/`). Vendored dependencies (`vendor/`),
/// build output (`target/`), and integration-test trees (`tests/`) are
/// outside those roots and therefore never visited.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let top = root.join("src");
    if top.is_dir() {
        collect_rs(&top, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = rel_path(root, file);
        findings.extend(lint_source(&rel, &source));
    }
    findings.sort();
    Ok(findings)
}

/// Recursively gathers `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes, for stable diagnostics
/// across platforms.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`. Falls back to `start` itself.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}
