//! Property-based tests for the geometry substrate.

use ganopc_geometry::layout::union_area;
use ganopc_geometry::{drc, ClipSynthesizer, DesignRules, Layout, Rect};
use proptest::prelude::*;

fn rect() -> impl Strategy<Value = Rect> {
    (0i64..1000, 0i64..1000, 1i64..300, 1i64..300)
        .prop_map(|(x, y, w, h)| Rect::from_origin_size(x, y, w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Intersection is commutative and contained in both operands.
    #[test]
    fn intersection_axioms(a in rect(), b in rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.area() <= a.area().min(b.area()));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    /// Gap is symmetric and zero iff the rects intersect or abut.
    #[test]
    fn gap_symmetry(a in rect(), b in rect()) {
        prop_assert_eq!(a.gap(&b), b.gap(&a));
        if a.intersects(&b) {
            prop_assert_eq!(a.gap(&b), 0);
        }
    }

    /// Union area is translation invariant.
    #[test]
    fn union_area_translation_invariant(
        rects in prop::collection::vec(rect(), 1..10),
        dx in -500i64..500,
        dy in -500i64..500,
    ) {
        let moved: Vec<Rect> = rects.iter().map(|r| r.translate(dx, dy)).collect();
        prop_assert_eq!(union_area(&rects), union_area(&moved));
    }

    /// Inclusion–exclusion holds for two rectangles.
    #[test]
    fn union_area_inclusion_exclusion(a in rect(), b in rect()) {
        let overlap = a.intersection(&b).map(|i| i.area()).unwrap_or(0);
        prop_assert_eq!(union_area(&[a, b]), a.area() + b.area() - overlap);
    }

    /// The synthesizer emits DRC-clean, non-empty clips for any seed.
    #[test]
    fn synthesizer_always_clean(seed in 0u64..5000) {
        let rules = DesignRules::m1_32nm();
        let clip = ClipSynthesizer::new(rules, 2048, 6).synthesize(seed);
        prop_assert!(!clip.is_empty());
        let violations = drc::check(&clip, &rules);
        prop_assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }

    /// Rasterized coverage never exceeds 1 and total never exceeds the
    /// frame area.
    #[test]
    fn raster_coverage_bounds(rects in prop::collection::vec(rect(), 0..8)) {
        let clip = Layout::with_shapes(Rect::new(0, 0, 1024, 1024), rects);
        let raster = clip.rasterize_raster(64, 64);
        prop_assert!(raster.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(raster.sum() <= (64.0 * 64.0) + 1e-3);
    }

    /// Pooling then nearest upsampling preserves the mean.
    #[test]
    fn pool_upsample_mean(values in prop::collection::vec(0.0f32..1.0, 64)) {
        let r = ganopc_geometry::raster::Raster::from_vec(8, 8, values);
        let round = r.avg_pool(2).upsample_nearest(2);
        prop_assert!((round.mean() - r.mean()).abs() < 1e-5);
    }
}
