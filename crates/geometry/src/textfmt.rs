//! A minimal line-oriented text format for layouts.
//!
//! Real EDA flows would hand this library GDSII/OASIS data; for a
//! dependency-free reproduction we define a trivially parseable exchange
//! format instead:
//!
//! ```text
//! # comments and blank lines are ignored
//! frame 0 0 2048 2048
//! rect 100 100 180 700
//! poly 0,0 200,0 200,80 80,80 80,300 0,300
//! ```
//!
//! * `frame x0 y0 x1 y1` — required, once, before any shape;
//! * `rect x0 y0 x1 y1` — an axis-aligned rectangle;
//! * `poly x,y x,y ...` — a rectilinear polygon (decomposed into
//!   rectangles on load).

use crate::polygon::{Polygon, PolygonError};
use crate::{Layout, Rect};
use std::fmt;
use std::path::Path;

/// Errors from parsing the text layout format.
#[derive(Debug)]
pub enum ParseLayoutError {
    /// A line could not be interpreted.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Shape lines appeared before (or without) a `frame` line.
    MissingFrame,
    /// A polygon failed validation.
    Polygon {
        /// 1-based line number.
        line: usize,
        /// The underlying polygon error.
        source: PolygonError,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLayoutError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseLayoutError::MissingFrame => {
                write!(f, "layout must declare a frame before shapes")
            }
            ParseLayoutError::Polygon { line, source } => {
                write!(f, "line {line}: invalid polygon: {source}")
            }
            ParseLayoutError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl std::error::Error for ParseLayoutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseLayoutError::Polygon { source, .. } => Some(source),
            ParseLayoutError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseLayoutError {
    fn from(e: std::io::Error) -> Self {
        ParseLayoutError::Io(e)
    }
}

/// Serializes a layout to the text format.
pub fn layout_to_string(layout: &Layout) -> String {
    let f = layout.frame();
    let mut out = format!("frame {} {} {} {}\n", f.x0, f.y0, f.x1, f.y1);
    for r in layout.shapes() {
        out.push_str(&format!("rect {} {} {} {}\n", r.x0, r.y0, r.x1, r.y1));
    }
    out
}

/// Parses a layout from the text format.
///
/// # Errors
///
/// Returns [`ParseLayoutError`] with a line number on any malformed input.
pub fn parse_layout(text: &str) -> Result<Layout, ParseLayoutError> {
    let mut layout: Option<Layout> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        // PANIC: the line was checked non-empty above, so a token exists.
        let keyword = tokens.next().expect("nonempty line");
        let rest: Vec<&str> = tokens.collect();
        let syntax = |message: String| ParseLayoutError::Syntax { line: line_no, message };
        match keyword {
            "frame" => {
                let coords = parse_ints(&rest).map_err(syntax)?;
                if coords.len() != 4 {
                    return Err(syntax(format!("frame needs 4 coordinates, got {}", coords.len())));
                }
                let frame = Rect::new(coords[0], coords[1], coords[2], coords[3]);
                if frame.is_empty() {
                    return Err(syntax("frame encloses no area".into()));
                }
                if layout.is_some() {
                    return Err(syntax("duplicate frame".into()));
                }
                layout = Some(Layout::new(frame));
            }
            "rect" => {
                let target = layout.as_mut().ok_or(ParseLayoutError::MissingFrame)?;
                let coords = parse_ints(&rest).map_err(syntax)?;
                if coords.len() != 4 {
                    return Err(syntax(format!("rect needs 4 coordinates, got {}", coords.len())));
                }
                let r = Rect::new(coords[0], coords[1], coords[2], coords[3]);
                if r.is_empty() {
                    return Err(syntax("rect encloses no area".into()));
                }
                target.push(r);
            }
            "poly" => {
                let target = layout.as_mut().ok_or(ParseLayoutError::MissingFrame)?;
                let mut vertices = Vec::with_capacity(rest.len());
                for pair in &rest {
                    let Some((xs, ys)) = pair.split_once(',') else {
                        return Err(syntax(format!("expected x,y pair, got '{pair}'")));
                    };
                    let x: i64 =
                        xs.parse().map_err(|_| syntax(format!("invalid coordinate '{xs}'")))?;
                    let y: i64 =
                        ys.parse().map_err(|_| syntax(format!("invalid coordinate '{ys}'")))?;
                    vertices.push((x, y));
                }
                let polygon = Polygon::new(vertices)
                    .map_err(|source| ParseLayoutError::Polygon { line: line_no, source })?;
                target.push_polygon(&polygon);
            }
            other => return Err(syntax(format!("unknown keyword '{other}'"))),
        }
    }
    layout.ok_or(ParseLayoutError::MissingFrame)
}

fn parse_ints(tokens: &[&str]) -> Result<Vec<i64>, String> {
    tokens.iter().map(|t| t.parse::<i64>().map_err(|_| format!("invalid integer '{t}'"))).collect()
}

/// Writes a layout file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_layout<P: AsRef<Path>>(path: P, layout: &Layout) -> Result<(), ParseLayoutError> {
    crate::io::write_atomic(path, layout_to_string(layout).as_bytes())?;
    Ok(())
}

/// Reads a layout file.
///
/// # Errors
///
/// Propagates I/O failures and parse errors.
pub fn read_layout<P: AsRef<Path>>(path: P) -> Result<Layout, ParseLayoutError> {
    parse_layout(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_rect_layout() {
        let mut clip = Layout::new(Rect::new(0, 0, 2048, 2048));
        clip.push(Rect::from_origin_size(100, 100, 80, 700));
        clip.push(Rect::from_origin_size(300, 200, 80, 900));
        let text = layout_to_string(&clip);
        let parsed = parse_layout(&text).unwrap();
        assert_eq!(parsed, clip);
    }

    #[test]
    fn parses_polygons_and_comments() {
        let text = "\
# an L-shape clip
frame 0 0 1024 1024

poly 0,0 200,0 200,80 80,80 80,300 0,300
rect 500 500 580 900
";
        let clip = parse_layout(text).unwrap();
        assert_eq!(clip.frame(), Rect::new(0, 0, 1024, 1024));
        assert_eq!(clip.shapes().len(), 3); // 2 from the polygon + 1 rect
        assert_eq!(clip.pattern_area(), 200 * 80 + 80 * 220 + 80 * 400);
    }

    #[test]
    fn reports_line_numbers() {
        let text = "frame 0 0 100 100\nrect 1 2 3\n";
        match parse_layout(text) {
            Err(ParseLayoutError::Syntax { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("4 coordinates"), "{message}");
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_shapes_before_frame() {
        assert!(matches!(parse_layout("rect 0 0 10 10\n"), Err(ParseLayoutError::MissingFrame)));
        assert!(matches!(parse_layout(""), Err(ParseLayoutError::MissingFrame)));
    }

    #[test]
    fn rejects_duplicate_frame_and_bad_tokens() {
        assert!(parse_layout("frame 0 0 10 10\nframe 0 0 20 20\n").is_err());
        assert!(parse_layout("frame 0 0 10 10\nblob 1 2\n").is_err());
        assert!(parse_layout("frame 0 0 10 10\npoly 1,2 3;4 5,6 7,8\n").is_err());
    }

    #[test]
    fn polygon_errors_carry_line() {
        let text = "frame 0 0 100 100\npoly 0,0 5,5 5,0 0,5\n";
        match parse_layout(text) {
            Err(ParseLayoutError::Polygon { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected polygon error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ganopc-textfmt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clip.layout");
        let mut clip = Layout::new(Rect::new(0, 0, 512, 512));
        clip.push(Rect::new(10, 10, 90, 410));
        write_layout(&path, &clip).unwrap();
        assert_eq!(read_layout(&path).unwrap(), clip);
        std::fs::remove_file(&path).unwrap();
    }
}
