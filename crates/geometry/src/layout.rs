//! Layout clips: a frame plus a bag of rectilinear shapes.

use crate::raster::Raster;
use crate::Rect;
use serde::{Deserialize, Serialize};

/// A layout clip: a rectangular frame (in nm) containing rectangles.
///
/// L/T/U-shaped patterns are represented as overlapping/abutting rectangle
/// unions, matching how M1 wiring decomposes. Rasterization and area queries
/// treat the shape set as a *union* (overlaps are not double counted).
///
/// ```
/// use ganopc_geometry::{Layout, Rect};
/// let mut clip = Layout::new(Rect::new(0, 0, 1024, 1024));
/// clip.push(Rect::from_origin_size(100, 100, 80, 600));
/// clip.push(Rect::from_origin_size(100, 620, 400, 80)); // L-shape arm
/// assert_eq!(clip.shapes().len(), 2);
/// assert!(clip.pattern_area() < 80 * 600 + 400 * 80); // overlap counted once
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    frame: Rect,
    shapes: Vec<Rect>,
}

impl Layout {
    /// Creates an empty clip with the given frame.
    pub fn new(frame: Rect) -> Self {
        Layout { frame, shapes: Vec::new() }
    }

    /// Creates a clip from a frame and shape list.
    pub fn with_shapes(frame: Rect, shapes: Vec<Rect>) -> Self {
        Layout { frame, shapes }
    }

    /// The clip frame.
    #[inline]
    pub fn frame(&self) -> Rect {
        self.frame
    }

    /// The shapes of the clip.
    #[inline]
    pub fn shapes(&self) -> &[Rect] {
        &self.shapes
    }

    /// Adds a shape (not clipped to the frame; callers keep shapes inside).
    pub fn push(&mut self, shape: Rect) {
        self.shapes.push(shape);
    }

    /// Adds a rectilinear polygon, decomposed into rectangles
    /// ([`crate::Polygon::to_rects`]).
    pub fn push_polygon(&mut self, polygon: &crate::Polygon) {
        self.shapes.extend(polygon.to_rects());
    }

    /// Number of shapes.
    #[inline]
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Returns `true` when the clip holds no shapes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Exact union area of the shapes in nm² (overlaps counted once),
    /// computed by coordinate-compression sweep.
    ///
    /// This is the "Area" column of Table 2 in the paper.
    pub fn pattern_area(&self) -> i64 {
        union_area(&self.shapes)
    }

    /// Rasterizes the clip into a `height × width` coverage bitmap.
    ///
    /// Each pixel holds the fraction of its footprint covered by the shape
    /// union, in `[0, 1]` — pixels fully inside a shape are `1.0`, boundary
    /// pixels are area-weighted. The frame maps onto the full image.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0 || height == 0` or the frame is empty.
    pub fn rasterize(&self, width: usize, height: usize) -> Vec<f32> {
        self.rasterize_raster(width, height).into_data()
    }

    /// Like [`Layout::rasterize`] but returns a typed [`Raster`].
    pub fn rasterize_raster(&self, width: usize, height: usize) -> Raster {
        assert!(width > 0 && height > 0, "raster dimensions must be nonzero");
        assert!(!self.frame.is_empty(), "cannot rasterize an empty frame");
        let mut img = Raster::zeros(height, width);
        let fx = width as f64 / self.frame.width() as f64;
        let fy = height as f64 / self.frame.height() as f64;
        for shape in &self.shapes {
            let Some(clipped) = shape.intersection(&self.frame) else { continue };
            // Shape corners in (fractional) pixel coordinates.
            let px0 = (clipped.x0 - self.frame.x0) as f64 * fx;
            let px1 = (clipped.x1 - self.frame.x0) as f64 * fx;
            let py0 = (clipped.y0 - self.frame.y0) as f64 * fy;
            let py1 = (clipped.y1 - self.frame.y0) as f64 * fy;
            let ix0 = px0.floor() as usize;
            let ix1 = (px1.ceil() as usize).min(width);
            let iy0 = py0.floor() as usize;
            let iy1 = (py1.ceil() as usize).min(height);
            for y in iy0..iy1 {
                let cy0 = (y as f64).max(py0);
                let cy1 = ((y + 1) as f64).min(py1);
                let hy = (cy1 - cy0).max(0.0);
                for x in ix0..ix1 {
                    let cx0 = (x as f64).max(px0);
                    let cx1 = ((x + 1) as f64).min(px1);
                    let wx = (cx1 - cx0).max(0.0);
                    let v = img.get(y, x) + (wx * hy) as f32;
                    img.set(y, x, v.min(1.0));
                }
            }
        }
        img
    }

    /// Translates every shape and the frame.
    pub fn translate(&mut self, dx: i64, dy: i64) {
        self.frame = self.frame.translate(dx, dy);
        for s in &mut self.shapes {
            *s = s.translate(dx, dy);
        }
    }
}

impl Extend<Rect> for Layout {
    fn extend<T: IntoIterator<Item = Rect>>(&mut self, iter: T) {
        self.shapes.extend(iter);
    }
}

/// Exact area of the union of a rectangle set (coordinate compression +
/// row sweep). `O(n²)` in the number of distinct y-coordinates — fine for
/// clip-scale inputs (tens to hundreds of shapes).
pub fn union_area(rects: &[Rect]) -> i64 {
    let rects: Vec<&Rect> = rects.iter().filter(|r| !r.is_empty()).collect();
    if rects.is_empty() {
        return 0;
    }
    let mut ys: Vec<i64> = rects.iter().flat_map(|r| [r.y0, r.y1]).collect();
    ys.sort_unstable();
    ys.dedup();
    let mut total = 0i64;
    for band in ys.windows(2) {
        let (y0, y1) = (band[0], band[1]);
        // Collect x-intervals of rects spanning this band and merge them.
        let mut xs: Vec<(i64, i64)> =
            rects.iter().filter(|r| r.y0 <= y0 && r.y1 >= y1).map(|r| (r.x0, r.x1)).collect();
        if xs.is_empty() {
            continue;
        }
        xs.sort_unstable();
        let mut covered = 0i64;
        let (mut cur_lo, mut cur_hi) = xs[0];
        for &(lo, hi) in &xs[1..] {
            if lo > cur_hi {
                covered += cur_hi - cur_lo;
                cur_lo = lo;
                cur_hi = hi;
            } else {
                cur_hi = cur_hi.max(hi);
            }
        }
        covered += cur_hi - cur_lo;
        total += covered * (y1 - y0);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_area_disjoint_and_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(20, 0, 30, 10);
        assert_eq!(union_area(&[a, b]), 200);
        let c = Rect::new(5, 5, 15, 15);
        assert_eq!(union_area(&[a, c]), 100 + 100 - 25);
        assert_eq!(union_area(&[]), 0);
        assert_eq!(union_area(&[a, a, a]), 100);
    }

    #[test]
    fn union_area_contained() {
        let outer = Rect::new(0, 0, 100, 100);
        let inner = Rect::new(10, 10, 20, 20);
        assert_eq!(union_area(&[outer, inner]), 10_000);
    }

    #[test]
    fn pattern_area_matches_union() {
        let frame = Rect::new(0, 0, 1000, 1000);
        let clip =
            Layout::with_shapes(frame, vec![Rect::new(0, 0, 80, 500), Rect::new(0, 420, 400, 500)]);
        assert_eq!(clip.pattern_area(), 80 * 500 + 400 * 80 - 80 * 80);
    }

    #[test]
    fn rasterize_full_coverage_rect() {
        // A shape spanning exactly half the frame at raster-aligned edges.
        let frame = Rect::new(0, 0, 64, 64);
        let clip = Layout::with_shapes(frame, vec![Rect::new(0, 0, 32, 64)]);
        let img = clip.rasterize(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                let expect = if x < 4 { 1.0 } else { 0.0 };
                assert_eq!(img[y * 8 + x], expect, "pixel ({y},{x})");
            }
        }
    }

    #[test]
    fn rasterize_antialiases_boundary() {
        // Shape covering 1.5 pixel columns: second column is half covered.
        let frame = Rect::new(0, 0, 80, 80);
        let clip = Layout::with_shapes(frame, vec![Rect::new(0, 0, 15, 80)]);
        let img = clip.rasterize(8, 8);
        assert_eq!(img[0], 1.0);
        assert!((img[1] - 0.5).abs() < 1e-6);
        assert_eq!(img[2], 0.0);
    }

    #[test]
    fn rasterize_conserves_area() {
        let frame = Rect::new(0, 0, 2048, 2048);
        let clip = Layout::with_shapes(
            frame,
            vec![
                Rect::from_origin_size(100, 100, 80, 700),
                Rect::from_origin_size(300, 200, 80, 900),
                Rect::from_origin_size(100, 900, 500, 80),
            ],
        );
        let img = clip.rasterize(256, 256);
        let px_area_nm2 = (2048.0 / 256.0) * (2048.0 / 256.0);
        let raster_area: f64 = img.iter().map(|&v| v as f64).sum::<f64>() * px_area_nm2;
        let exact = clip.pattern_area() as f64;
        assert!(
            (raster_area - exact).abs() / exact < 0.01,
            "raster {raster_area} vs exact {exact}"
        );
    }

    #[test]
    fn rasterize_clamps_overlaps() {
        let frame = Rect::new(0, 0, 64, 64);
        let clip =
            Layout::with_shapes(frame, vec![Rect::new(0, 0, 64, 64), Rect::new(0, 0, 64, 64)]);
        let img = clip.rasterize(4, 4);
        assert!(img.iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn shapes_outside_frame_are_clipped() {
        let frame = Rect::new(0, 0, 64, 64);
        let clip = Layout::with_shapes(frame, vec![Rect::new(-100, -100, -10, -10)]);
        let img = clip.rasterize(8, 8);
        assert!(img.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn translate_moves_everything() {
        let mut clip = Layout::with_shapes(Rect::new(0, 0, 10, 10), vec![Rect::new(1, 1, 2, 2)]);
        clip.translate(5, -5);
        assert_eq!(clip.frame(), Rect::new(5, -5, 15, 5));
        assert_eq!(clip.shapes()[0], Rect::new(6, -4, 7, -3));
    }

    #[test]
    fn extend_adds_shapes() {
        let mut clip = Layout::new(Rect::new(0, 0, 100, 100));
        clip.extend([Rect::new(0, 0, 1, 1), Rect::new(2, 2, 3, 3)]);
        assert_eq!(clip.len(), 2);
        assert!(!clip.is_empty());
    }
}
