//! Design rules (paper Table 1).

use serde::{Deserialize, Serialize};

/// Minimum-size design rules for clip synthesis and DRC.
///
/// The GAN-OPC paper synthesizes its 4000-instance training library "based on
/// size and spacing rules" summarized in Table 1 for the 32 nm M1 layer:
///
/// | Item | Min size (nm) |
/// |------|---------------|
/// | M1 critical dimension | 80 |
/// | Pitch | 140 |
/// | Tip-to-tip distance | 60 |
///
/// `min_spacing` is derived as `pitch - cd` (140 − 80 = 60 nm) — the
/// line-to-line gap implied by minimum-pitch wiring.
///
/// ```
/// use ganopc_geometry::DesignRules;
/// let r = DesignRules::m1_32nm();
/// assert_eq!(r.min_cd_nm, 80);
/// assert_eq!(r.min_pitch_nm, 140);
/// assert_eq!(r.min_tip_to_tip_nm, 60);
/// assert_eq!(r.min_spacing_nm(), 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DesignRules {
    /// Minimum wire width (critical dimension), nm.
    pub min_cd_nm: i64,
    /// Minimum center-to-center pitch of parallel wires, nm.
    pub min_pitch_nm: i64,
    /// Minimum distance between facing line ends, nm.
    pub min_tip_to_tip_nm: i64,
}

impl DesignRules {
    /// The Table 1 rule set used throughout the paper (32 nm M1).
    pub const fn m1_32nm() -> Self {
        DesignRules { min_cd_nm: 80, min_pitch_nm: 140, min_tip_to_tip_nm: 60 }
    }

    /// Creates a custom rule set.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_cd_nm < min_pitch_nm` and
    /// `min_tip_to_tip_nm > 0`.
    pub fn new(min_cd_nm: i64, min_pitch_nm: i64, min_tip_to_tip_nm: i64) -> Self {
        assert!(min_cd_nm > 0, "cd must be positive");
        assert!(min_pitch_nm > min_cd_nm, "pitch must exceed cd");
        assert!(min_tip_to_tip_nm > 0, "tip-to-tip must be positive");
        DesignRules { min_cd_nm, min_pitch_nm, min_tip_to_tip_nm }
    }

    /// Line-to-line spacing implied by minimum pitch: `pitch − cd`.
    #[inline]
    pub const fn min_spacing_nm(&self) -> i64 {
        self.min_pitch_nm - self.min_cd_nm
    }

    /// Uniformly scales all rules by an integer factor (used when
    /// experimenting at coarser synthetic nodes).
    pub fn scaled(&self, factor: i64) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        DesignRules {
            min_cd_nm: self.min_cd_nm * factor,
            min_pitch_nm: self.min_pitch_nm * factor,
            min_tip_to_tip_nm: self.min_tip_to_tip_nm * factor,
        }
    }
}

impl Default for DesignRules {
    fn default() -> Self {
        DesignRules::m1_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper, verbatim.
    #[test]
    fn table1_values() {
        let r = DesignRules::m1_32nm();
        assert_eq!(r.min_cd_nm, 80);
        assert_eq!(r.min_pitch_nm, 140);
        assert_eq!(r.min_tip_to_tip_nm, 60);
    }

    #[test]
    fn spacing_derived_from_pitch() {
        assert_eq!(DesignRules::m1_32nm().min_spacing_nm(), 60);
        assert_eq!(DesignRules::new(100, 250, 70).min_spacing_nm(), 150);
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(DesignRules::default(), DesignRules::m1_32nm());
    }

    #[test]
    fn scaling() {
        let r = DesignRules::m1_32nm().scaled(2);
        assert_eq!(r.min_cd_nm, 160);
        assert_eq!(r.min_pitch_nm, 280);
        assert_eq!(r.min_tip_to_tip_nm, 120);
    }

    #[test]
    #[should_panic(expected = "pitch must exceed cd")]
    fn rejects_pitch_below_cd() {
        let _ = DesignRules::new(80, 80, 60);
    }
}
