//! Image export for figure galleries (PGM, portable graymap).
//!
//! The Figure 8/9 reproductions dump masks and wafer images as binary PGM
//! files — viewable everywhere, writable without an image dependency.

use crate::raster::Raster;
use ganopc_fault as fault;
use ganopc_obs as obs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Applies an injected fault to the payload stream: `Tear(n)` passes
/// exactly `n` bytes through and then errors (a torn write), `Enospc`
/// fails the first write with the OS disk-full code. Only ever
/// constructed when the `fault-inject` feature armed the sink.
struct FaultedWriter<'a, W: Write> {
    inner: &'a mut W,
    mode: fault::WriteFault,
    passed: usize,
}

impl<W: Write> Write for FaultedWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.mode {
            fault::WriteFault::Tear(limit) => {
                let allow = limit.saturating_sub(self.passed).min(buf.len());
                if allow == 0 {
                    return Err(io::Error::other("fault-inject: torn write"));
                }
                let n = self.inner.write(&buf[..allow])?;
                self.passed += n;
                Ok(n)
            }
            fault::WriteFault::Enospc => Err(io::Error::from_raw_os_error(28)), // ENOSPC
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Atomically writes `bytes` to `path`.
///
/// The payload is first written to a temporary file in the *same*
/// directory, flushed and `fsync`ed, then renamed over the final path.
/// A crash (or write failure) at any point leaves either the previous
/// file or no file at `path` — never a truncated one. Every artifact the
/// workspace persists (checkpoints, PGM images, CSVs) goes through this
/// helper.
///
/// # Errors
///
/// Propagates I/O failures; on failure the temporary file is removed and
/// the final path is untouched.
pub fn write_atomic<P: AsRef<Path>>(path: P, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(path, |w| w.write_all(bytes))
}

/// Atomic-write plumbing: `fill` streams the payload into a buffered
/// temporary file; on success the file is synced and renamed into place,
/// on failure the temporary is removed and the final path is untouched.
///
/// # Errors
///
/// Propagates I/O failures from `fill`, the sync, or the rename.
pub fn write_atomic_with<P: AsRef<Path>>(
    path: P,
    fill: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    // Distinct temp names let concurrent writers in one directory coexist.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot write {}: no file name", path.display()),
        )
    })?;
    let tmp = dir.join(format!(
        ".{}.{}.{}.tmp",
        name.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    // Fault sink: with the `fault-inject` feature off this is a constant
    // `None` and the whole branch folds away; armed, the installed plan
    // may fail, tear or misdirect this specific write operation.
    let injected = fault::next_write_fault();
    if injected.is_some() {
        obs::counter_add(obs::Counter::FaultsInjected, 1);
    }
    if matches!(injected, Some(fault::WriteFault::Fail)) {
        return Err(io::Error::other("fault-inject: write failed"));
    }
    let write_span = obs::span(obs::Span::ArtifactWrite);
    let written = (|| {
        let mut writer = io::BufWriter::new(std::fs::File::create(&tmp)?);
        match injected {
            Some(mode @ (fault::WriteFault::Tear(_) | fault::WriteFault::Enospc)) => {
                fill(&mut FaultedWriter { inner: &mut writer, mode, passed: 0 })?
            }
            _ => fill(&mut writer)?,
        }
        let file = writer.into_inner().map_err(|e| e.into_error())?;
        let fsync_span = obs::span(obs::Span::ArtifactFsync);
        let synced = file.sync_all();
        fsync_span.finish();
        synced?;
        if matches!(injected, Some(fault::WriteFault::FsyncFail)) {
            return Err(io::Error::other("fault-inject: fsync failed"));
        }
        Ok(())
    })();
    let renamed = written.and_then(|()| {
        if matches!(injected, Some(fault::WriteFault::RenameFail)) {
            return Err(io::Error::other("fault-inject: rename failed"));
        }
        std::fs::rename(&tmp, path)
    });
    write_span.finish();
    if renamed.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    renamed
}

/// Removes stale atomic-write temporaries (`.{name}.{pid}.{seq}.tmp`)
/// left in `dir` by a crashed writer, returning the number swept.
///
/// `write_atomic*` renames or removes its temporary before returning, so
/// a matching file observed at command startup is an orphan from a dead
/// process. Only names produced by this module (leading `.`, trailing
/// `.tmp`) are touched; user files like `notes.tmp` survive. The sweep
/// is advisory: unreadable directories and unremovable entries are
/// skipped silently. Swept orphans are counted under `stale_tmp_swept`.
pub fn sweep_stale_tmp<P: AsRef<Path>>(dir: P) -> usize {
    let Ok(entries) = std::fs::read_dir(dir.as_ref()) else {
        return 0;
    };
    let mut swept = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with('.')
            && name.ends_with(".tmp")
            && path.is_file()
            && std::fs::remove_file(&path).is_ok()
        {
            swept += 1;
        }
    }
    if swept > 0 {
        obs::counter_add(obs::Counter::StaleTmpSwept, swept as u64);
    }
    swept
}

/// Encodes a raster as a binary (P5) PGM image.
///
/// Samples are clamped to `[0, 1]` and quantized to 8 bits.
///
/// ```
/// use ganopc_geometry::{io::pgm_bytes, raster::Raster};
/// let r = Raster::filled(2, 3, 1.0);
/// let bytes = pgm_bytes(&r);
/// assert!(bytes.starts_with(b"P5\n3 2\n255\n"));
/// assert_eq!(bytes.len(), "P5\n3 2\n255\n".len() + 6);
/// ```
pub fn pgm_bytes(raster: &Raster) -> Vec<u8> {
    let header = format!("P5\n{} {}\n255\n", raster.width(), raster.height());
    let mut bytes = header.into_bytes();
    bytes.extend(raster.as_slice().iter().map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8));
    bytes
}

/// Writes a raster to `path` as binary PGM.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_pgm<P: AsRef<Path>>(path: P, raster: &Raster) -> io::Result<()> {
    write_atomic(path, &pgm_bytes(raster))
}

/// Horizontally concatenates rasters (all must share a height) with a
/// 1-pixel 0.5-gray separator — used to compose figure strips.
///
/// # Panics
///
/// Panics if `tiles` is empty or heights differ.
pub fn hstack(tiles: &[&Raster]) -> Raster {
    assert!(!tiles.is_empty(), "hstack of zero tiles");
    let h = tiles[0].height();
    assert!(tiles.iter().all(|t| t.height() == h), "hstack height mismatch");
    let total_w: usize = tiles.iter().map(|t| t.width()).sum::<usize>() + tiles.len() - 1;
    let mut out = Raster::filled(h, total_w, 0.5);
    let mut x0 = 0usize;
    for t in tiles {
        for y in 0..h {
            for x in 0..t.width() {
                out.set(y, x0 + x, t.get(y, x));
            }
        }
        x0 += t.width() + 1;
    }
    out
}

/// Vertically concatenates rasters (all must share a width) with a 1-pixel
/// separator row.
///
/// # Panics
///
/// Panics if `tiles` is empty or widths differ.
pub fn vstack(tiles: &[&Raster]) -> Raster {
    assert!(!tiles.is_empty(), "vstack of zero tiles");
    let w = tiles[0].width();
    assert!(tiles.iter().all(|t| t.width() == w), "vstack width mismatch");
    let total_h: usize = tiles.iter().map(|t| t.height()).sum::<usize>() + tiles.len() - 1;
    let mut out = Raster::filled(total_h, w, 0.5);
    let mut y0 = 0usize;
    for t in tiles {
        for y in 0..t.height() {
            for x in 0..w {
                out.set(y0 + y, x, t.get(y, x));
            }
        }
        y0 += t.height() + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_header_and_payload() {
        let mut r = Raster::zeros(2, 2);
        r.set(0, 0, 1.0);
        r.set(1, 1, 0.5);
        let bytes = pgm_bytes(&r);
        let header = b"P5\n2 2\n255\n";
        assert!(bytes.starts_with(header));
        let pixels = &bytes[header.len()..];
        assert_eq!(pixels, &[255, 0, 0, 128]);
    }

    #[test]
    fn pgm_clamps_out_of_range() {
        let r = Raster::from_vec(1, 2, vec![-0.5, 2.0]);
        let bytes = pgm_bytes(&r);
        let pixels = &bytes[b"P5\n2 1\n255\n".len()..];
        assert_eq!(pixels, &[0, 255]);
    }

    #[test]
    fn write_and_read_back() {
        let dir = std::env::temp_dir().join("ganopc-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        let r = Raster::filled(4, 4, 0.25);
        write_pgm(&path, &r).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes, pgm_bytes(&r));
        std::fs::remove_file(&path).unwrap();
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ganopc-io-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn leftover_tmp_files(dir: &Path) -> Vec<std::path::PathBuf> {
        std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect()
    }

    #[test]
    fn write_atomic_replaces_existing_file() {
        let dir = tmp_dir("atomic");
        let path = dir.join("data.bin");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        assert!(leftover_tmp_files(&dir).is_empty(), "tmp file leaked");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_leaves_no_partial_file() {
        let dir = tmp_dir("atomic-fail");
        let path = dir.join("data.bin");
        // Injected mid-write failure: some bytes are written, then the
        // producer dies. Neither a truncated final file nor a stray tmp
        // file may remain.
        let err = write_atomic_with(&path, |w| {
            w.write_all(b"partial payload")?;
            Err(io::Error::other("injected crash"))
        });
        assert!(err.is_err());
        assert!(!path.exists(), "partial file visible at final path");
        assert!(leftover_tmp_files(&dir).is_empty(), "tmp file leaked");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_preserves_previous_contents() {
        let dir = tmp_dir("atomic-keep");
        let path = dir.join("data.bin");
        write_atomic(&path, b"stable").unwrap();
        let _ = write_atomic_with(&path, |_| Err(io::Error::other("injected crash")));
        assert_eq!(std::fs::read(&path).unwrap(), b"stable");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_rejects_directory_target() {
        let dir = tmp_dir("atomic-dirtarget");
        assert!(write_atomic(dir.join(".."), b"x").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_only_stale_atomic_tmp_orphans() {
        let dir = tmp_dir("sweep");
        // Orphans in our naming scheme, as a crashed writer would leave.
        std::fs::write(dir.join(".ckpt.12345.0.tmp"), b"orphan").unwrap();
        std::fs::write(dir.join(".img.pgm.999.3.tmp"), b"orphan").unwrap();
        // A user file with a tmp extension but not our dot-prefix.
        std::fs::write(dir.join("notes.tmp"), b"keep me").unwrap();
        write_atomic(dir.join("keep.bin"), b"payload").unwrap();
        assert_eq!(sweep_stale_tmp(&dir), 2);
        assert_eq!(std::fs::read(dir.join("keep.bin")).unwrap(), b"payload");
        assert_eq!(std::fs::read(dir.join("notes.tmp")).unwrap(), b"keep me");
        assert_eq!(sweep_stale_tmp(&dir), 0, "second sweep finds nothing");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_of_missing_directory_is_a_noop() {
        let dir = tmp_dir("sweep-missing").join("does-not-exist");
        assert_eq!(sweep_stale_tmp(&dir), 0);
    }

    #[test]
    fn hstack_layout() {
        let a = Raster::filled(2, 2, 1.0);
        let b = Raster::filled(2, 3, 0.0);
        let s = hstack(&[&a, &b]);
        assert_eq!(s.shape(), (2, 6));
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 2), 0.5); // separator
        assert_eq!(s.get(0, 3), 0.0);
    }

    #[test]
    fn vstack_layout() {
        let a = Raster::filled(1, 2, 1.0);
        let b = Raster::filled(2, 2, 0.0);
        let s = vstack(&[&a, &b]);
        assert_eq!(s.shape(), (4, 2));
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(1, 0), 0.5);
        assert_eq!(s.get(2, 0), 0.0);
    }

    #[test]
    fn stacks_reject_mismatched_tiles() {
        let a = Raster::zeros(2, 2);
        let b = Raster::zeros(3, 2);
        assert!(std::panic::catch_unwind(|| hstack(&[&a, &b])).is_err());
        let c = Raster::zeros(2, 3);
        assert!(std::panic::catch_unwind(|| vstack(&[&a, &c])).is_err());
    }
}
