//! Design-rule-driven random clip synthesis.
//!
//! The paper (Section 4) synthesizes a 4000-instance training library from
//! 32 nm M1 design specifications: "all the shapes are randomly placed
//! together based on simple design rules, as detailed in Table 1". This
//! module reproduces that generator and additionally regenerates ten
//! *benchmark-like* clips whose pattern areas match the "Area" column of
//! Table 2 (the ICCAD-2013 clips themselves are not redistributable — see
//! DESIGN.md §3).
//!
//! Synthesis is greedy rejection sampling: candidate patterns (wires, L-, T-
//! and U-shapes) are drawn at random and accepted only when they keep the
//! whole clip DRC-clean, so every emitted layout satisfies
//! [`crate::drc::is_clean`] by construction.

use crate::drc::{classify_gap, GapKind};
use crate::{DesignRules, Layout, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded random generator of DRC-clean M1-like clips.
///
/// ```
/// use ganopc_geometry::{ClipSynthesizer, DesignRules, drc};
/// let rules = DesignRules::m1_32nm();
/// let synth = ClipSynthesizer::new(rules, 2048, 12);
/// let clip = synth.synthesize(1);
/// assert!(drc::is_clean(&clip, &rules));
/// // Deterministic in the seed:
/// assert_eq!(clip, synth.synthesize(1));
/// ```
#[derive(Debug, Clone)]
pub struct ClipSynthesizer {
    rules: DesignRules,
    frame_nm: i64,
    /// Number of *pattern groups* (a group is a wire or a multi-rect shape).
    target_groups: usize,
    /// Keep-out margin between patterns and the frame boundary, nm.
    margin_nm: i64,
    /// Maximum rejection-sampling attempts per group.
    max_attempts: usize,
}

impl ClipSynthesizer {
    /// Creates a synthesizer for square clips of side `frame_nm` targeting
    /// `target_groups` placed pattern groups.
    ///
    /// # Panics
    ///
    /// Panics if the frame is too small to hold even one minimum shape.
    pub fn new(rules: DesignRules, frame_nm: i64, target_groups: usize) -> Self {
        let margin_nm = (frame_nm / 10).max(rules.min_pitch_nm);
        assert!(
            frame_nm > 2 * margin_nm + rules.min_cd_nm * 2,
            "frame {frame_nm} nm too small for rules"
        );
        ClipSynthesizer { rules, frame_nm, target_groups, margin_nm, max_attempts: 400 }
    }

    /// The rule set used for synthesis.
    #[inline]
    pub fn rules(&self) -> DesignRules {
        self.rules
    }

    /// Clip frame side length, nm.
    #[inline]
    pub fn frame_nm(&self) -> i64 {
        self.frame_nm
    }

    /// Synthesizes one clip deterministically from `seed`.
    pub fn synthesize(&self, seed: u64) -> Layout {
        self.synthesize_with_area(seed, i64::MAX)
    }

    /// Synthesizes a clip, stopping early once the union pattern area reaches
    /// `target_area_nm2` (used to regenerate the Table 2 "Area" column).
    pub fn synthesize_with_area(&self, seed: u64, target_area_nm2: i64) -> Layout {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let frame = Rect::new(0, 0, self.frame_nm, self.frame_nm);
        let mut accepted: Vec<Rect> = Vec::new();
        let mut layout = Layout::new(frame);
        let mut area = 0i64;
        let mut groups = 0usize;
        let mut attempts = 0usize;
        while groups < self.target_groups
            && area < target_area_nm2
            && attempts < self.max_attempts * self.target_groups
        {
            attempts += 1;
            let group = self.propose_group(&mut rng);
            if self.group_fits(&group, &accepted) {
                for r in &group {
                    area += r.area();
                    accepted.push(*r);
                    layout.push(*r);
                }
                // Union area is approximated by the sum here (group members
                // abut rather than overlap by construction), so `area` tracks
                // the true pattern area closely enough for targeting.
                groups += 1;
            }
        }
        layout
    }

    /// Draws one candidate pattern group: a wire, L-, T- or U-shape.
    fn propose_group(&self, rng: &mut StdRng) -> Vec<Rect> {
        let cd = self.rules.min_cd_nm;
        let lo = self.margin_nm;
        let hi = self.frame_nm - self.margin_nm;
        // Quantize positions to a sub-pitch grid to mimic track-based layout.
        let quantum = self.rules.min_tip_to_tip_nm.min(cd) / 2;
        let snap = |v: i64| (v / quantum) * quantum;
        let span = hi - lo;
        let min_len = (cd * 2).min(span);
        let max_len = (span / 2).max(min_len + 1);

        let kind = rng.gen_range(0..100);
        let vertical = rng.gen_bool(0.5);
        // Occasionally widen the wire (up to 2x CD), as real M1 does.
        let width = if rng.gen_bool(0.2) { cd + snap(rng.gen_range(0..=cd)) } else { cd };
        let len = snap(rng.gen_range(min_len..max_len)).max(min_len);
        let x = snap(rng.gen_range(lo..hi - width.min(span)));
        let y = snap(rng.gen_range(lo..hi - len.min(span)));

        let trunk = if vertical {
            Rect::from_origin_size(x, y, width, len)
        } else {
            Rect::from_origin_size(x, y, len, width)
        };
        let mut group = vec![trunk];
        let arm_len = snap(rng.gen_range(min_len..max_len)).max(min_len);

        if kind >= 55 {
            // L-shape: arm from one end of the trunk.
            group.push(self.arm(rng, &trunk, vertical, cd, arm_len, /*from_end=*/ true));
        }
        if kind >= 80 {
            // T/U-shape: second arm from the other end.
            group.push(self.arm(rng, &trunk, vertical, cd, arm_len, /*from_end=*/ false));
        }
        group
    }

    /// Builds an arm abutting the trunk at one of its ends.
    fn arm(
        &self,
        rng: &mut StdRng,
        trunk: &Rect,
        trunk_vertical: bool,
        cd: i64,
        arm_len: i64,
        from_end: bool,
    ) -> Rect {
        let positive = rng.gen_bool(0.5);
        if trunk_vertical {
            // Horizontal arm at the top or bottom of a vertical trunk.
            let y = if from_end { trunk.y1 - cd } else { trunk.y0 };
            if positive {
                Rect::from_origin_size(trunk.x1, y, arm_len, cd)
            } else {
                Rect::from_origin_size(trunk.x0 - arm_len, y, arm_len, cd)
            }
        } else {
            let x = if from_end { trunk.x1 - cd } else { trunk.x0 };
            if positive {
                Rect::from_origin_size(x, trunk.y1, cd, arm_len)
            } else {
                Rect::from_origin_size(x, trunk.y0 - arm_len, cd, arm_len)
            }
        }
    }

    /// Accepts a group only if every rect stays in the padded frame and keeps
    /// rule-clean distances to every previously accepted rect.
    fn group_fits(&self, group: &[Rect], accepted: &[Rect]) -> bool {
        let inner = Rect::new(
            self.margin_nm,
            self.margin_nm,
            self.frame_nm - self.margin_nm,
            self.frame_nm - self.margin_nm,
        );
        for r in group {
            if r.critical_dimension() < self.rules.min_cd_nm || !inner.contains_rect(r) {
                return false;
            }
            for s in accepted {
                let gap = r.gap(s);
                if gap == 0 {
                    return false; // would merge with a different group
                }
                let min = match classify_gap(r, s) {
                    GapKind::TipToTip => self.rules.min_tip_to_tip_nm,
                    GapKind::SideToSide | GapKind::Corner => self.rules.min_spacing_nm(),
                };
                if gap < min {
                    return false;
                }
            }
        }
        // Members of the same group must form one connected pattern, and any
        // non-touching pair inside the group must still respect spacing (the
        // DRC checker does not know about nets).
        if group.len() > 1 {
            for (i, r) in group.iter().enumerate() {
                let mut touches = false;
                for (j, s) in group.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let gap = r.gap(s);
                    if gap == 0 {
                        touches = true;
                        continue;
                    }
                    let min = match classify_gap(r, s) {
                        GapKind::TipToTip => self.rules.min_tip_to_tip_nm,
                        GapKind::SideToSide | GapKind::Corner => self.rules.min_spacing_nm(),
                    };
                    if gap < min {
                        return false;
                    }
                }
                if !touches {
                    return false;
                }
            }
        }
        true
    }
}

/// Pattern areas of the ten ICCAD-2013 benchmark clips (Table 2, "Area" in
/// nm²) used to regenerate benchmark-like test cases.
pub const TABLE2_AREAS_NM2: [i64; 10] =
    [215_344, 169_280, 213_504, 82_560, 281_958, 286_234, 229_149, 128_544, 317_581, 102_400];

/// A regenerated benchmark clip.
#[derive(Debug, Clone)]
pub struct BenchmarkClip {
    /// 1-based case id, matching Table 2 rows.
    pub id: usize,
    /// Target pattern area from Table 2, nm².
    pub paper_area_nm2: i64,
    /// The synthesized layout.
    pub layout: Layout,
}

/// Regenerates ten benchmark-like clips whose pattern areas track the
/// Table 2 "Area" column, on `frame_nm`-sized frames.
///
/// ```
/// use ganopc_geometry::synthesis::benchmark_suite;
/// let suite = benchmark_suite(2048);
/// assert_eq!(suite.len(), 10);
/// ```
pub fn benchmark_suite(frame_nm: i64) -> Vec<BenchmarkClip> {
    let rules = DesignRules::m1_32nm();
    // Scale target areas with the frame: Table 2 areas assume 2048 nm clips.
    let scale = (frame_nm as f64 / 2048.0).powi(2);
    TABLE2_AREAS_NM2
        .iter()
        .enumerate()
        .map(|(i, &paper_area)| {
            let target = (paper_area as f64 * scale) as i64;
            let synth = ClipSynthesizer::new(rules, frame_nm, 64);
            let layout = synth.synthesize_with_area(1000 + i as u64, target);
            BenchmarkClip { id: i + 1, paper_area_nm2: paper_area, layout }
        })
        .collect()
}

/// The synthesized training library of Section 4 (default 4000 instances).
#[derive(Debug, Clone)]
pub struct TrainingLibrary {
    clips: Vec<Layout>,
}

impl TrainingLibrary {
    /// Generates `count` DRC-clean clips on `frame_nm` frames, deterministic
    /// in `base_seed`.
    pub fn generate(rules: DesignRules, frame_nm: i64, count: usize, base_seed: u64) -> Self {
        let clips = (0..count)
            .map(|i| {
                // Vary density across the library, spanning sparse training
                // clips up to benchmark-like dense clips (cf. Table 2 areas).
                let groups = 4 + (i % 25) * 2;
                ClipSynthesizer::new(rules, frame_nm, groups)
                    .synthesize(base_seed.wrapping_add(i as u64))
            })
            .collect();
        TrainingLibrary { clips }
    }

    /// The generated clips.
    #[inline]
    pub fn clips(&self) -> &[Layout] {
        &self.clips
    }

    /// Number of clips.
    #[inline]
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// Returns `true` when the library holds no clips.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }

    /// Iterates over the clips.
    pub fn iter(&self) -> std::slice::Iter<'_, Layout> {
        self.clips.iter()
    }
}

impl<'a> IntoIterator for &'a TrainingLibrary {
    type Item = &'a Layout;
    type IntoIter = std::slice::Iter<'a, Layout>;
    fn into_iter(self) -> Self::IntoIter {
        self.clips.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc;

    #[test]
    fn synthesized_clips_are_drc_clean() {
        let rules = DesignRules::m1_32nm();
        let synth = ClipSynthesizer::new(rules, 2048, 10);
        for seed in 0..20 {
            let clip = synth.synthesize(seed);
            let violations = drc::check(&clip, &rules);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
            assert!(!clip.is_empty(), "seed {seed} produced an empty clip");
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let rules = DesignRules::m1_32nm();
        let synth = ClipSynthesizer::new(rules, 2048, 8);
        assert_eq!(synth.synthesize(99), synth.synthesize(99));
    }

    #[test]
    fn different_seeds_differ() {
        let rules = DesignRules::m1_32nm();
        let synth = ClipSynthesizer::new(rules, 2048, 8);
        assert_ne!(synth.synthesize(1), synth.synthesize(2));
    }

    #[test]
    fn clips_contain_multi_rect_shapes_eventually() {
        // Across a handful of seeds we should see L/T shapes (groups > 1 rect),
        // i.e. more rects than groups.
        let rules = DesignRules::m1_32nm();
        let synth = ClipSynthesizer::new(rules, 2048, 10);
        let total_rects: usize = (0..10).map(|s| synth.synthesize(s).len()).sum();
        assert!(total_rects > 10 * 6, "suspiciously few rects: {total_rects}");
    }

    #[test]
    fn area_targeting_stops_near_target() {
        let rules = DesignRules::m1_32nm();
        let synth = ClipSynthesizer::new(rules, 2048, 256);
        let target = 200_000;
        let clip = synth.synthesize_with_area(5, target);
        let area = clip.pattern_area();
        // Must reach the target (within one max-shape overshoot) and not
        // wildly exceed it.
        assert!(area >= (target as f64 * 0.7) as i64, "area {area} too small");
        assert!(area <= (target as f64 * 1.6) as i64, "area {area} too large");
    }

    #[test]
    fn benchmark_suite_matches_table2_shape() {
        let suite = benchmark_suite(2048);
        assert_eq!(suite.len(), 10);
        for clip in &suite {
            assert!(drc::is_clean(&clip.layout, &DesignRules::m1_32nm()), "case {}", clip.id);
            let area = clip.layout.pattern_area();
            let target = clip.paper_area_nm2;
            assert!(
                (area as f64) > target as f64 * 0.6 && (area as f64) < target as f64 * 1.7,
                "case {}: area {area} vs paper {target}",
                clip.id
            );
        }
        // Relative ordering of big vs small cases is preserved.
        let a4 = suite[3].layout.pattern_area();
        let a9 = suite[8].layout.pattern_area();
        assert!(a9 > a4, "case 9 should be denser than case 4");
    }

    #[test]
    fn training_library_generation() {
        let lib = TrainingLibrary::generate(DesignRules::m1_32nm(), 1024, 16, 7);
        assert_eq!(lib.len(), 16);
        assert!(!lib.is_empty());
        for clip in &lib {
            assert!(drc::is_clean(clip, &DesignRules::m1_32nm()));
        }
        // Deterministic.
        let lib2 = TrainingLibrary::generate(DesignRules::m1_32nm(), 1024, 16, 7);
        assert_eq!(lib.clips(), lib2.clips());
    }
}
