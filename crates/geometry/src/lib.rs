//! Rectilinear layout substrate for the GAN-OPC reproduction.
//!
//! The DAC-2018 GAN-OPC paper evaluates on ten industrial 32 nm M1 clips from
//! the ICCAD-2013 mask-optimization contest and trains on 4000 synthesized
//! clips generated under simple design rules (paper Table 1). Neither dataset
//! is redistributable, so this crate rebuilds the whole geometry layer:
//!
//! * [`Rect`] / [`Layout`] — integer-nanometer rectilinear geometry;
//! * [`DesignRules`] — the Table 1 rule set ([`DesignRules::m1_32nm`]);
//! * [`drc`] — a design-rule checker used to validate synthesized clips;
//! * [`raster`] — rasterization to `f32` bitmaps, average pooling and
//!   nearest/linear upsampling (the paper's 8×8 pooling pipeline);
//! * [`synthesis`] — seeded random clip synthesis ([`ClipSynthesizer`]) and
//!   the 4000-instance [`synthesis::TrainingLibrary`], plus the ten
//!   benchmark-like clips with Table 2 pattern areas;
//! * [`io`] — PGM image dumps for figure galleries.
//!
//! # Example
//!
//! ```
//! use ganopc_geometry::{ClipSynthesizer, DesignRules};
//!
//! let rules = DesignRules::m1_32nm();
//! let synth = ClipSynthesizer::new(rules, 2048, 10);
//! let clip = synth.synthesize(42);
//! assert!(!clip.shapes().is_empty());
//! // Rasterize at 1 px = 16 nm => 128×128 image.
//! let raster = clip.rasterize(128, 128);
//! assert_eq!(raster.len(), 128 * 128);
//! ```

pub mod layout;
mod rect;
mod rules;

pub mod drc;
pub mod io;
pub mod polygon;
pub mod raster;
pub mod synthesis;
pub mod textfmt;

pub use layout::Layout;
pub use polygon::Polygon;
pub use rect::Rect;
pub use rules::DesignRules;
pub use synthesis::ClipSynthesizer;
