//! Dense `f32` rasters and the pooling/upsampling pipeline.
//!
//! The paper feeds 2048×2048 clips through an **8×8 average pooling** before
//! the neural networks and recovers mask resolution afterwards with **linear
//! interpolation** (Section 4). [`Raster::avg_pool`] and
//! [`Raster::upsample_bilinear`] implement exactly those two stages.

use serde::{Deserialize, Serialize};

/// A row-major `height × width` grid of `f32` samples.
///
/// Used for target patterns, masks, aerial images and wafer images across the
/// workspace.
///
/// ```
/// use ganopc_geometry::raster::Raster;
/// let mut r = Raster::zeros(4, 4);
/// r.set(1, 2, 0.5);
/// assert_eq!(r.get(1, 2), 0.5);
/// assert_eq!(r.sum(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Raster {
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Raster {
    /// An all-zero raster.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(height: usize, width: usize) -> Self {
        assert!(height > 0 && width > 0, "raster dimensions must be nonzero");
        Raster { height, width, data: vec![0.0; height * width] }
    }

    /// A raster filled with `value`.
    pub fn filled(height: usize, width: usize, value: f32) -> Self {
        let mut r = Raster::zeros(height, width);
        r.data.fill(value);
        r
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != height * width` or a dimension is zero.
    pub fn from_vec(height: usize, width: usize, data: Vec<f32>) -> Self {
        assert!(height > 0 && width > 0, "raster dimensions must be nonzero");
        assert_eq!(data.len(), height * width, "buffer size mismatch");
        Raster { height, width, data }
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the raster holds no samples (never for valid
    /// rasters).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Sample at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.height && col < self.width, "raster index out of bounds");
        self.data[row * self.width + col]
    }

    /// Writes the sample at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.height && col < self.width, "raster index out of bounds");
        self.data[row * self.width + col] = value;
    }

    /// Borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the raster and returns the buffer.
    #[inline]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Largest sample.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest sample.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 distance to another raster of the same shape
    /// (Definition 1 of the paper when both are binary wafer/target images).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn squared_l2_distance(&self, other: &Raster) -> f64 {
        assert_eq!(self.shape(), other.shape(), "raster shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum()
    }

    /// `(height, width)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.height, self.width)
    }

    /// `factor × factor` average pooling (the paper's 8×8 stage).
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are divisible by `factor` and
    /// `factor > 0`.
    pub fn avg_pool(&self, factor: usize) -> Raster {
        assert!(factor > 0, "pool factor must be positive");
        assert!(
            self.height.is_multiple_of(factor) && self.width.is_multiple_of(factor),
            "raster {}x{} not divisible by pool factor {factor}",
            self.height,
            self.width
        );
        let oh = self.height / factor;
        let ow = self.width / factor;
        let norm = 1.0 / (factor * factor) as f32;
        let mut out = Raster::zeros(oh, ow);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for dy in 0..factor {
                    let row = (oy * factor + dy) * self.width + ox * factor;
                    for dx in 0..factor {
                        acc += self.data[row + dx];
                    }
                }
                out.data[oy * ow + ox] = acc * norm;
            }
        }
        out
    }

    /// Nearest-neighbour upsampling by an integer factor.
    pub fn upsample_nearest(&self, factor: usize) -> Raster {
        assert!(factor > 0, "upsample factor must be positive");
        let oh = self.height * factor;
        let ow = self.width * factor;
        let mut out = Raster::zeros(oh, ow);
        for y in 0..oh {
            let sy = y / factor;
            for x in 0..ow {
                out.data[y * ow + x] = self.data[sy * self.width + x / factor];
            }
        }
        out
    }

    /// Bilinear upsampling by an integer factor (the paper's "simple linear
    /// interpolation" used to restore full mask resolution).
    ///
    /// Sample positions are pixel centers; border samples clamp.
    pub fn upsample_bilinear(&self, factor: usize) -> Raster {
        assert!(factor > 0, "upsample factor must be positive");
        let oh = self.height * factor;
        let ow = self.width * factor;
        let mut out = Raster::zeros(oh, ow);
        let f = factor as f32;
        for y in 0..oh {
            // Source coordinate of this output pixel center.
            let sy = ((y as f32 + 0.5) / f - 0.5).max(0.0);
            let y0 = (sy.floor() as usize).min(self.height - 1);
            let y1 = (y0 + 1).min(self.height - 1);
            let ty = sy - y0 as f32;
            for x in 0..ow {
                let sx = ((x as f32 + 0.5) / f - 0.5).max(0.0);
                let x0 = (sx.floor() as usize).min(self.width - 1);
                let x1 = (x0 + 1).min(self.width - 1);
                let tx = sx - x0 as f32;
                let a = self.data[y0 * self.width + x0];
                let b = self.data[y0 * self.width + x1];
                let c = self.data[y1 * self.width + x0];
                let d = self.data[y1 * self.width + x1];
                let top = a + (b - a) * tx;
                let bot = c + (d - c) * tx;
                out.data[y * ow + x] = top + (bot - top) * ty;
            }
        }
        out
    }

    /// Thresholds into a binary raster: `1.0` where `sample >= threshold`.
    pub fn binarize(&self, threshold: f32) -> Raster {
        let data = self.data.iter().map(|&v| if v >= threshold { 1.0 } else { 0.0 }).collect();
        Raster { height: self.height, width: self.width, data }
    }

    /// Fraction of samples that are `>= threshold`.
    pub fn coverage(&self, threshold: f32) -> f32 {
        let n = self.data.iter().filter(|&&v| v >= threshold).count();
        n as f32 / self.data.len() as f32
    }

    /// Binary box dilation: a sample becomes `1.0` when any sample within
    /// Chebyshev distance `radius` is `>= threshold`. Used to build halo
    /// regions (e.g. the legal mask-correction zone around a target).
    pub fn dilate_box(&self, radius: usize, threshold: f32) -> Raster {
        if radius == 0 {
            return self.binarize(threshold);
        }
        // Separable: horizontal any-pass then vertical any-pass.
        let mut horiz = Raster::zeros(self.height, self.width);
        for y in 0..self.height {
            for x in 0..self.width {
                let lo = x.saturating_sub(radius);
                let hi = (x + radius).min(self.width - 1);
                let any = (lo..=hi).any(|xx| self.get(y, xx) >= threshold);
                horiz.set(y, x, if any { 1.0 } else { 0.0 });
            }
        }
        let mut out = Raster::zeros(self.height, self.width);
        for y in 0..self.height {
            let lo = y.saturating_sub(radius);
            let hi = (y + radius).min(self.height - 1);
            for x in 0..self.width {
                let any = (lo..=hi).any(|yy| horiz.get(yy, x) >= 0.5);
                out.set(y, x, if any { 1.0 } else { 0.0 });
            }
        }
        out
    }

    /// Element-wise map into a new raster.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Raster {
        Raster {
            height: self.height,
            width: self.width,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut r = Raster::zeros(3, 5);
        assert_eq!(r.shape(), (3, 5));
        assert_eq!(r.len(), 15);
        r.set(2, 4, 9.0);
        assert_eq!(r.get(2, 4), 9.0);
        assert_eq!(r.as_slice()[14], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let r = Raster::zeros(2, 2);
        let _ = r.get(2, 0);
    }

    #[test]
    fn from_vec_validates_length() {
        let r = Raster::from_vec(2, 3, vec![1.0; 6]);
        assert_eq!(r.sum(), 6.0);
        assert!(std::panic::catch_unwind(|| Raster::from_vec(2, 3, vec![0.0; 5])).is_err());
    }

    #[test]
    fn statistics() {
        let r = Raster::from_vec(1, 4, vec![1.0, -2.0, 3.0, 0.0]);
        assert_eq!(r.sum(), 2.0);
        assert_eq!(r.mean(), 0.5);
        assert_eq!(r.max(), 3.0);
        assert_eq!(r.min(), -2.0);
    }

    #[test]
    fn avg_pool_exact_blocks() {
        #[rustfmt::skip]
        let r = Raster::from_vec(4, 4, vec![
            1.0, 1.0, 0.0, 0.0,
            1.0, 1.0, 0.0, 4.0,
            2.0, 0.0, 0.0, 0.0,
            0.0, 2.0, 0.0, 0.0,
        ]);
        let p = r.avg_pool(2);
        assert_eq!(p.shape(), (2, 2));
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(0, 1), 1.0);
        assert_eq!(p.get(1, 0), 1.0);
        assert_eq!(p.get(1, 1), 0.0);
    }

    #[test]
    fn avg_pool_preserves_mean() {
        let r = Raster::from_vec(8, 8, (0..64).map(|i| i as f32).collect());
        let p = r.avg_pool(4);
        assert!((p.mean() - r.mean()).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn avg_pool_requires_divisibility() {
        let _ = Raster::zeros(6, 6).avg_pool(4);
    }

    #[test]
    fn nearest_upsample_replicates() {
        let r = Raster::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let u = r.upsample_nearest(2);
        assert_eq!(u.shape(), (4, 4));
        assert_eq!(u.get(0, 0), 1.0);
        assert_eq!(u.get(0, 1), 1.0);
        assert_eq!(u.get(1, 1), 1.0);
        assert_eq!(u.get(3, 3), 4.0);
        assert_eq!(u.get(0, 3), 2.0);
    }

    #[test]
    fn bilinear_upsample_constant_is_constant() {
        let r = Raster::filled(3, 3, 0.7);
        let u = r.upsample_bilinear(4);
        assert!(u.as_slice().iter().all(|&v| (v - 0.7).abs() < 1e-6));
    }

    #[test]
    fn bilinear_upsample_preserves_mean_of_linear_ramp() {
        let r = Raster::from_vec(1, 4, vec![0.0, 1.0, 2.0, 3.0]);
        let u = r.upsample_bilinear(2);
        assert_eq!(u.shape(), (2, 8));
        // Interior is a smooth ramp, monotone nondecreasing.
        let row: Vec<f32> = (0..8).map(|x| u.get(0, x)).collect();
        for w in row.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "{row:?}");
        }
        assert_eq!(row[0], 0.0);
        assert_eq!(row[7], 3.0);
    }

    #[test]
    fn pool_then_upsample_roundtrip_on_blocky_image() {
        // An image constant on 4x4 blocks survives pool(4)+nearest(4) exactly.
        let mut r = Raster::zeros(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                let v = if x < 4 { 1.0 } else { 0.0 };
                r.set(y, x, v);
            }
        }
        let round = r.avg_pool(4).upsample_nearest(4);
        assert_eq!(round, r);
    }

    #[test]
    fn binarize_and_coverage() {
        let r = Raster::from_vec(1, 4, vec![0.2, 0.5, 0.8, 0.49]);
        let b = r.binarize(0.5);
        assert_eq!(b.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
        assert_eq!(r.coverage(0.5), 0.5);
    }

    #[test]
    fn squared_l2_distance_binary_images() {
        let a = Raster::from_vec(1, 4, vec![1.0, 0.0, 1.0, 0.0]);
        let b = Raster::from_vec(1, 4, vec![1.0, 1.0, 0.0, 0.0]);
        assert_eq!(a.squared_l2_distance(&b), 2.0);
        assert_eq!(a.squared_l2_distance(&a), 0.0);
    }

    #[test]
    fn dilate_box_grows_chebyshev_ball() {
        let mut r = Raster::zeros(7, 7);
        r.set(3, 3, 1.0);
        let d = r.dilate_box(2, 0.5);
        for y in 0..7 {
            for x in 0..7 {
                let inside = (y as i64 - 3).abs() <= 2 && (x as i64 - 3).abs() <= 2;
                assert_eq!(d.get(y, x), if inside { 1.0 } else { 0.0 }, "({y},{x})");
            }
        }
        // Radius 0 is plain binarization.
        assert_eq!(r.dilate_box(0, 0.5), r.binarize(0.5));
    }

    #[test]
    fn map_applies_function() {
        let r = Raster::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let m = r.map(|v| v * v);
        assert_eq!(m.as_slice(), &[1.0, 4.0, 9.0]);
    }
}
