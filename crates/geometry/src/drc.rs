//! Design-rule checking for synthesized clips.
//!
//! The synthesizer in [`crate::synthesis`] must emit layouts that satisfy the
//! Table 1 rules; this module provides the independent checker used by its
//! tests (and available to users validating their own clips).

use crate::{DesignRules, Layout, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of the gap between two shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GapKind {
    /// Facing line ends along the wire direction (tip-to-tip rule).
    TipToTip,
    /// Parallel run side-to-side (spacing / pitch rule).
    SideToSide,
    /// Diagonal corner-to-corner adjacency.
    Corner,
}

impl fmt::Display for GapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GapKind::TipToTip => "tip-to-tip",
            GapKind::SideToSide => "side-to-side",
            GapKind::Corner => "corner",
        };
        f.write_str(s)
    }
}

/// A single design-rule violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// Shape `index` is narrower than the minimum critical dimension.
    Width {
        /// Index into [`Layout::shapes`].
        index: usize,
        /// Observed critical dimension, nm.
        cd_nm: i64,
    },
    /// Shapes `a` and `b` are closer than the applicable minimum.
    Spacing {
        /// First shape index.
        a: usize,
        /// Second shape index.
        b: usize,
        /// Observed gap, nm.
        gap_nm: i64,
        /// Which rule the gap falls under.
        kind: GapKind,
    },
    /// Shape `index` extends beyond the clip frame.
    OutOfFrame {
        /// Index into [`Layout::shapes`].
        index: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Width { index, cd_nm } => {
                write!(f, "shape {index}: cd {cd_nm} nm below minimum")
            }
            Violation::Spacing { a, b, gap_nm, kind } => {
                write!(f, "shapes {a},{b}: {kind} gap {gap_nm} nm below minimum")
            }
            Violation::OutOfFrame { index } => write!(f, "shape {index}: outside clip frame"),
        }
    }
}

/// Classifies the adjacency between two disjoint rectangles.
///
/// A gap purely in `x` between two *vertical* wires (height > width) is
/// side-to-side; between two *horizontal* wires it is tip-to-tip (facing line
/// ends), and symmetrically for gaps in `y`. Mixed orientations fall back to
/// side-to-side (the tighter interpretation is identical under Table 1 where
/// both minima are 60 nm). Diagonal adjacency is [`GapKind::Corner`].
pub fn classify_gap(a: &Rect, b: &Rect) -> GapKind {
    let (dx, dy) = a.axis_gaps(b);
    if dx > 0 && dy > 0 {
        return GapKind::Corner;
    }
    let horizontal_wires = a.width() >= a.height() && b.width() >= b.height();
    let vertical_wires = a.height() >= a.width() && b.height() >= b.width();
    if dx > 0 {
        // Gap along x: horizontal wires face each other end-to-end.
        if horizontal_wires {
            GapKind::TipToTip
        } else {
            GapKind::SideToSide
        }
    } else if dy > 0 {
        if vertical_wires {
            GapKind::TipToTip
        } else {
            GapKind::SideToSide
        }
    } else {
        // Touching; callers skip this case.
        GapKind::SideToSide
    }
}

/// Checks a layout against a rule set, returning every violation found.
///
/// Shapes that intersect or abut are treated as one connected pattern and are
/// exempt from spacing checks (they form L/T-shapes by construction).
///
/// ```
/// use ganopc_geometry::{drc, DesignRules, Layout, Rect};
/// let rules = DesignRules::m1_32nm();
/// let mut clip = Layout::new(Rect::new(0, 0, 1000, 1000));
/// clip.push(Rect::from_origin_size(0, 0, 80, 500));
/// clip.push(Rect::from_origin_size(120, 0, 80, 500)); // only 40 nm away
/// let violations = drc::check(&clip, &rules);
/// assert_eq!(violations.len(), 1);
/// ```
pub fn check(layout: &Layout, rules: &DesignRules) -> Vec<Violation> {
    let mut violations = Vec::new();
    let frame = layout.frame();
    let shapes = layout.shapes();
    for (i, s) in shapes.iter().enumerate() {
        if s.critical_dimension() < rules.min_cd_nm {
            violations.push(Violation::Width { index: i, cd_nm: s.critical_dimension() });
        }
        if !frame.contains_rect(s) {
            violations.push(Violation::OutOfFrame { index: i });
        }
    }
    for i in 0..shapes.len() {
        for j in i + 1..shapes.len() {
            let (a, b) = (&shapes[i], &shapes[j]);
            let gap = a.gap(b);
            if gap == 0 {
                continue; // touching or overlapping: same pattern
            }
            let kind = classify_gap(a, b);
            let min = match kind {
                GapKind::TipToTip => rules.min_tip_to_tip_nm,
                GapKind::SideToSide | GapKind::Corner => rules.min_spacing_nm(),
            };
            if gap < min {
                violations.push(Violation::Spacing { a: i, b: j, gap_nm: gap, kind });
            }
        }
    }
    violations
}

/// Convenience: `true` when the layout is violation-free.
pub fn is_clean(layout: &Layout, rules: &DesignRules) -> bool {
    check(layout, rules).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Rect {
        Rect::new(0, 0, 2048, 2048)
    }

    #[test]
    fn clean_minimum_pitch_pair_passes() {
        let rules = DesignRules::m1_32nm();
        let clip = Layout::with_shapes(
            frame(),
            vec![
                Rect::from_origin_size(100, 100, 80, 600),
                Rect::from_origin_size(240, 100, 80, 600), // pitch exactly 140
            ],
        );
        assert!(is_clean(&clip, &rules), "{:?}", check(&clip, &rules));
    }

    #[test]
    fn narrow_wire_flags_width() {
        let rules = DesignRules::m1_32nm();
        let clip = Layout::with_shapes(frame(), vec![Rect::from_origin_size(0, 0, 79, 500)]);
        let v = check(&clip, &rules);
        assert_eq!(v, vec![Violation::Width { index: 0, cd_nm: 79 }]);
    }

    #[test]
    fn close_parallel_wires_flag_spacing() {
        let rules = DesignRules::m1_32nm();
        let clip = Layout::with_shapes(
            frame(),
            vec![
                Rect::from_origin_size(0, 0, 80, 500),
                Rect::from_origin_size(139, 0, 80, 500), // 59 nm gap
            ],
        );
        let v = check(&clip, &rules);
        assert_eq!(
            v,
            vec![Violation::Spacing { a: 0, b: 1, gap_nm: 59, kind: GapKind::SideToSide }]
        );
    }

    #[test]
    fn close_line_ends_flag_tip_to_tip() {
        let rules = DesignRules::m1_32nm();
        let clip = Layout::with_shapes(
            frame(),
            vec![
                Rect::from_origin_size(0, 0, 80, 500),
                Rect::from_origin_size(0, 559, 80, 300), // 59 nm vertical gap
            ],
        );
        let v = check(&clip, &rules);
        assert_eq!(v, vec![Violation::Spacing { a: 0, b: 1, gap_nm: 59, kind: GapKind::TipToTip }]);
    }

    #[test]
    fn touching_shapes_are_exempt() {
        // An L-shape: two abutting rects, no spacing violation.
        let rules = DesignRules::m1_32nm();
        let clip = Layout::with_shapes(
            frame(),
            vec![Rect::from_origin_size(0, 0, 80, 500), Rect::from_origin_size(80, 0, 400, 80)],
        );
        assert!(is_clean(&clip, &rules));
    }

    #[test]
    fn out_of_frame_detected() {
        let rules = DesignRules::m1_32nm();
        let clip = Layout::with_shapes(
            Rect::new(0, 0, 100, 100),
            vec![Rect::from_origin_size(50, 50, 80, 80)],
        );
        let v = check(&clip, &rules);
        assert!(v.contains(&Violation::OutOfFrame { index: 0 }));
    }

    #[test]
    fn classify_gap_cases() {
        // Vertical wires separated horizontally → side-to-side.
        let a = Rect::from_origin_size(0, 0, 80, 400);
        let b = Rect::from_origin_size(200, 0, 80, 400);
        assert_eq!(classify_gap(&a, &b), GapKind::SideToSide);
        // Vertical wires separated vertically → tip-to-tip.
        let c = Rect::from_origin_size(0, 500, 80, 400);
        assert_eq!(classify_gap(&a, &c), GapKind::TipToTip);
        // Horizontal wires separated horizontally → tip-to-tip.
        let d = Rect::from_origin_size(0, 0, 400, 80);
        let e = Rect::from_origin_size(500, 0, 400, 80);
        assert_eq!(classify_gap(&d, &e), GapKind::TipToTip);
        // Diagonal.
        let f = Rect::from_origin_size(200, 600, 80, 80);
        assert_eq!(classify_gap(&a, &f), GapKind::Corner);
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::Spacing { a: 1, b: 2, gap_nm: 40, kind: GapKind::TipToTip };
        assert_eq!(v.to_string(), "shapes 1,2: tip-to-tip gap 40 nm below minimum");
        let w = Violation::Width { index: 0, cd_nm: 10 };
        assert!(w.to_string().contains("cd 10 nm"));
    }
}
