//! Axis-aligned integer rectangles in nanometers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open, axis-aligned rectangle `[x0, x1) × [y0, y1)` in integer
/// nanometers.
///
/// The half-open convention means two rectangles sharing an edge *abut*
/// without overlapping, and a rectangle's [`area`](Rect::area) equals
/// `width * height` exactly.
///
/// ```
/// use ganopc_geometry::Rect;
/// let r = Rect::new(0, 0, 80, 400);
/// assert_eq!(r.width(), 80);
/// assert_eq!(r.height(), 400);
/// assert_eq!(r.area(), 32_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: i64,
    /// Bottom edge (inclusive).
    pub y0: i64,
    /// Right edge (exclusive).
    pub x1: i64,
    /// Top edge (exclusive).
    pub y1: i64,
}

impl Rect {
    /// Creates a rectangle, normalizing corner order.
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        Rect { x0: x0.min(x1), y0: y0.min(y1), x1: x0.max(x1), y1: y0.max(y1) }
    }

    /// A rectangle from origin and size.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is negative.
    pub fn from_origin_size(x: i64, y: i64, w: i64, h: i64) -> Self {
        assert!(w >= 0 && h >= 0, "negative size {w}x{h}");
        Rect { x0: x, y0: y, x1: x + w, y1: y + h }
    }

    /// Width `x1 - x0`.
    #[inline]
    pub fn width(&self) -> i64 {
        self.x1 - self.x0
    }

    /// Height `y1 - y0`.
    #[inline]
    pub fn height(&self) -> i64 {
        self.y1 - self.y0
    }

    /// Area in nm².
    #[inline]
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Returns `true` when the rectangle encloses no area.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1 || self.y0 >= self.y1
    }

    /// Shorter of the two sides — the *critical dimension* of a wire segment.
    #[inline]
    pub fn critical_dimension(&self) -> i64 {
        self.width().min(self.height())
    }

    /// Returns `true` when `self` and `other` share interior area.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// The overlapping region, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let r = Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        };
        if r.is_empty() {
            None
        } else {
            Some(r)
        }
    }

    /// Smallest rectangle containing both.
    pub fn bounding_union(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Returns `true` when `other` lies fully inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x0 <= other.x0 && self.y0 <= other.y0 && self.x1 >= other.x1 && self.y1 >= other.y1
    }

    /// Returns `true` when the point `(x, y)` lies inside.
    #[inline]
    pub fn contains_point(&self, x: i64, y: i64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Grows (positive `d`) or shrinks (negative `d`) all four sides.
    pub fn expand(&self, d: i64) -> Rect {
        Rect::new(self.x0 - d, self.y0 - d, self.x1 + d, self.y1 + d)
    }

    /// Translates by `(dx, dy)`.
    pub fn translate(&self, dx: i64, dy: i64) -> Rect {
        Rect { x0: self.x0 + dx, y0: self.y0 + dy, x1: self.x1 + dx, y1: self.y1 + dy }
    }

    /// Minimum gap between two *disjoint* rectangles along the axes
    /// (Chebyshev-style: the larger of the per-axis gaps, 0 if they overlap
    /// or abut in both axes).
    ///
    /// This is the quantity design rules constrain: two wires at spacing `s`
    /// have `gap == s`.
    pub fn gap(&self, other: &Rect) -> i64 {
        let dx = (other.x0 - self.x1).max(self.x0 - other.x1).max(0);
        let dy = (other.y0 - self.y1).max(self.y0 - other.y1).max(0);
        dx.max(dy)
    }

    /// Per-axis gaps `(dx, dy)`; each is 0 when the projections overlap.
    pub fn axis_gaps(&self, other: &Rect) -> (i64, i64) {
        let dx = (other.x0 - self.x1).max(self.x0 - other.x1).max(0);
        let dy = (other.y0 - self.y1).max(self.y0 - other.y1).max(0);
        (dx, dy)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{} {}x{}]", self.x0, self.y0, self.width(), self.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!(r, Rect { x0: 0, y0: 5, x1: 10, y1: 20 });
    }

    #[test]
    fn area_and_cd() {
        let r = Rect::from_origin_size(0, 0, 80, 400);
        assert_eq!(r.area(), 32_000);
        assert_eq!(r.critical_dimension(), 80);
    }

    #[test]
    fn empty_rect() {
        assert!(Rect { x0: 0, y0: 0, x1: 0, y1: 10 }.is_empty());
        assert!(!Rect::new(0, 0, 1, 1).is_empty());
    }

    #[test]
    fn abutting_rects_do_not_intersect() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);
        assert_eq!(a.gap(&b), 0);
    }

    #[test]
    fn intersection_overlapping() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
    }

    #[test]
    fn bounding_union_contains_both() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(10, -3, 12, 2);
        let u = a.bounding_union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::new(0, -3, 12, 4));
    }

    #[test]
    fn gap_between_separated_wires() {
        // Two vertical wires with 60 nm horizontal spacing.
        let a = Rect::from_origin_size(0, 0, 80, 500);
        let b = Rect::from_origin_size(140, 0, 80, 500);
        assert_eq!(a.gap(&b), 60);
        assert_eq!(a.axis_gaps(&b), (60, 0));
        // Tip-to-tip: same column, vertical gap.
        let c = Rect::from_origin_size(0, 560, 80, 200);
        assert_eq!(a.gap(&c), 60);
        assert_eq!(a.axis_gaps(&c), (0, 60));
    }

    #[test]
    fn diagonal_gap_uses_max_axis() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(15, 30, 20, 40);
        assert_eq!(a.axis_gaps(&b), (5, 20));
        assert_eq!(a.gap(&b), 20);
    }

    #[test]
    fn expand_and_translate() {
        let r = Rect::new(5, 5, 10, 10);
        assert_eq!(r.expand(2), Rect::new(3, 3, 12, 12));
        assert_eq!(r.expand(-2), Rect::new(7, 7, 8, 8));
        assert_eq!(r.translate(-5, 5), Rect::new(0, 10, 5, 15));
    }

    #[test]
    fn contains_point_half_open() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains_point(0, 0));
        assert!(r.contains_point(9, 9));
        assert!(!r.contains_point(10, 0));
        assert!(!r.contains_point(0, 10));
    }

    #[test]
    #[should_panic(expected = "negative size")]
    fn from_origin_size_rejects_negative() {
        let _ = Rect::from_origin_size(0, 0, -1, 5);
    }
}
