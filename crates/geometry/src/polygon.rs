//! Rectilinear polygons and their decomposition into rectangles.
//!
//! Real layout formats (GDSII/OASIS) describe M1 wires as rectilinear
//! polygons; the rest of this workspace operates on rectangle unions. This
//! module bridges the two: [`Polygon`] validates a rectilinear outline and
//! [`Polygon::to_rects`] slices it into horizontal rectangles with a
//! scanline pass, ready to be pushed into a [`crate::Layout`].

use crate::Rect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One scanline band of a polygon interior: `(y_lo, y_hi, x-intervals)`.
type ScanBand = (i64, i64, Vec<(i64, i64)>);

/// Errors from polygon validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than 4 vertices.
    TooFewVertices(usize),
    /// An edge is neither horizontal nor vertical.
    NotRectilinear {
        /// Index of the offending edge (from vertex `i` to `i+1`).
        edge: usize,
    },
    /// Consecutive duplicate vertex.
    DegenerateEdge {
        /// Index of the zero-length edge.
        edge: usize,
    },
    /// The outline self-intersects (detected as an odd scanline interval
    /// count).
    SelfIntersecting,
}

impl fmt::Display for PolygonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolygonError::TooFewVertices(n) => write!(f, "polygon needs >= 4 vertices, got {n}"),
            PolygonError::NotRectilinear { edge } => {
                write!(f, "edge {edge} is neither horizontal nor vertical")
            }
            PolygonError::DegenerateEdge { edge } => write!(f, "edge {edge} has zero length"),
            PolygonError::SelfIntersecting => write!(f, "polygon outline self-intersects"),
        }
    }
}

impl std::error::Error for PolygonError {}

/// A closed rectilinear polygon, stored as its vertex loop (the closing
/// edge from the last vertex back to the first is implicit).
///
/// ```
/// use ganopc_geometry::polygon::Polygon;
/// // An L-shape.
/// let poly = Polygon::new(vec![
///     (0, 0), (200, 0), (200, 80), (80, 80), (80, 300), (0, 300),
/// ])?;
/// assert_eq!(poly.area(), 200 * 80 + 80 * 220);
/// let rects = poly.to_rects();
/// assert_eq!(rects.len(), 2);
/// # Ok::<(), ganopc_geometry::polygon::PolygonError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<(i64, i64)>,
}

impl Polygon {
    /// Validates and wraps a vertex loop.
    ///
    /// # Errors
    ///
    /// Returns [`PolygonError`] for outlines that are too short, contain
    /// diagonal or zero-length edges, or self-intersect.
    pub fn new(vertices: Vec<(i64, i64)>) -> Result<Self, PolygonError> {
        if vertices.len() < 4 {
            return Err(PolygonError::TooFewVertices(vertices.len()));
        }
        let n = vertices.len();
        for i in 0..n {
            let (x0, y0) = vertices[i];
            let (x1, y1) = vertices[(i + 1) % n];
            if x0 == x1 && y0 == y1 {
                return Err(PolygonError::DegenerateEdge { edge: i });
            }
            if x0 != x1 && y0 != y1 {
                return Err(PolygonError::NotRectilinear { edge: i });
            }
        }
        let poly = Polygon { vertices };
        // Scanline validation: every band must contain an even number of
        // vertical-edge crossings.
        if poly.scan_bands().is_none() {
            return Err(PolygonError::SelfIntersecting);
        }
        Ok(poly)
    }

    /// Builds an axis-aligned rectangle polygon.
    pub fn from_rect(rect: Rect) -> Self {
        Polygon {
            vertices: vec![
                (rect.x0, rect.y0),
                (rect.x1, rect.y0),
                (rect.x1, rect.y1),
                (rect.x0, rect.y1),
            ],
        }
    }

    /// The vertex loop.
    pub fn vertices(&self) -> &[(i64, i64)] {
        &self.vertices
    }

    /// Bounding box of the outline.
    pub fn bounding_box(&self) -> Rect {
        let xs = self.vertices.iter().map(|v| v.0);
        let ys = self.vertices.iter().map(|v| v.1);
        Rect {
            // PANIC: Polygon::new rejects outlines with fewer than 4
            // vertices, so the min/max iterators are never empty.
            x0: xs.clone().min().expect("nonempty"),
            // PANIC: as above — the vertex iterator is never empty.
            x1: xs.max().expect("nonempty"),
            // PANIC: as above — the vertex iterator is never empty.
            y0: ys.clone().min().expect("nonempty"),
            // PANIC: as above — the vertex iterator is never empty.
            y1: ys.max().expect("nonempty"),
        }
    }

    /// Per-y-band x-intervals of the interior (scanline decomposition).
    /// Returns `None` when a band has an odd crossing count (invalid
    /// outline). Each band is `(y_lo, y_hi, x-intervals)`.
    fn scan_bands(&self) -> Option<Vec<ScanBand>> {
        let n = self.vertices.len();
        // Vertical edges as (x, y_lo, y_hi).
        let mut verticals = Vec::new();
        for i in 0..n {
            let (x0, y0) = self.vertices[i];
            let (x1, y1) = self.vertices[(i + 1) % n];
            if x0 == x1 {
                verticals.push((x0, y0.min(y1), y0.max(y1)));
            }
        }
        let mut ys: Vec<i64> = verticals.iter().flat_map(|v| [v.1, v.2]).collect();
        ys.sort_unstable();
        ys.dedup();
        let mut bands = Vec::new();
        for band in ys.windows(2) {
            let (y0, y1) = (band[0], band[1]);
            let mut xs: Vec<i64> =
                verticals.iter().filter(|v| v.1 <= y0 && v.2 >= y1).map(|v| v.0).collect();
            xs.sort_unstable();
            if !xs.len().is_multiple_of(2) {
                return None;
            }
            let intervals: Vec<(i64, i64)> = xs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
            bands.push((y0, y1, intervals));
        }
        Some(bands)
    }

    /// Interior area.
    pub fn area(&self) -> i64 {
        self.scan_bands()
            // PANIC: Polygon::new only accepts outlines scan_bands handles.
            .expect("validated at construction")
            .iter()
            .map(|(y0, y1, intervals)| {
                let width: i64 = intervals.iter().map(|(a, b)| b - a).sum();
                width * (y1 - y0)
            })
            .sum()
    }

    /// Decomposes the interior into non-overlapping horizontal rectangles,
    /// merging vertically where adjacent bands share intervals.
    pub fn to_rects(&self) -> Vec<Rect> {
        // PANIC: Polygon::new only accepts outlines scan_bands handles.
        let bands = self.scan_bands().expect("validated at construction");
        let mut out: Vec<Rect> = Vec::new();
        // Active rectangles currently open for vertical merging.
        let mut open: Vec<Rect> = Vec::new();
        for (y0, y1, intervals) in bands {
            let mut next_open = Vec::with_capacity(intervals.len());
            for (x0, x1) in intervals {
                // Try to extend an open rect with identical x-span ending
                // at y0.
                if let Some(pos) = open.iter().position(|r| r.x0 == x0 && r.x1 == x1 && r.y1 == y0)
                {
                    let mut r = open.swap_remove(pos);
                    r.y1 = y1;
                    next_open.push(r);
                } else {
                    next_open.push(Rect { x0, y0, x1, y1 });
                }
            }
            out.append(&mut open);
            open = next_open;
        }
        out.extend(open);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::union_area;

    fn l_shape() -> Polygon {
        Polygon::new(vec![(0, 0), (200, 0), (200, 80), (80, 80), (80, 300), (0, 300)]).unwrap()
    }

    #[test]
    fn rejects_invalid_outlines() {
        assert_eq!(
            Polygon::new(vec![(0, 0), (1, 0), (1, 1)]),
            Err(PolygonError::TooFewVertices(3))
        );
        assert_eq!(
            Polygon::new(vec![(0, 0), (5, 5), (5, 0), (0, 0), (0, 5), (1, 5)]).unwrap_err(),
            PolygonError::NotRectilinear { edge: 0 }
        );
        assert_eq!(
            Polygon::new(vec![(0, 0), (0, 0), (5, 0), (5, 5), (0, 5), (0, 1)]).unwrap_err(),
            PolygonError::DegenerateEdge { edge: 0 }
        );
    }

    #[test]
    fn rectangle_roundtrip() {
        let r = Rect::new(10, 20, 110, 220);
        let p = Polygon::from_rect(r);
        assert_eq!(p.area(), r.area());
        assert_eq!(p.to_rects(), vec![r]);
        assert_eq!(p.bounding_box(), r);
    }

    #[test]
    fn l_shape_area_and_decomposition() {
        let p = l_shape();
        assert_eq!(p.area(), 200 * 80 + 80 * 220);
        let rects = p.to_rects();
        assert_eq!(union_area(&rects), p.area());
        // Decomposition is disjoint.
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                assert!(!a.intersects(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn t_shape_decomposition() {
        // A T: horizontal bar with a stem.
        let p = Polygon::new(vec![
            (0, 0),
            (300, 0),
            (300, 80),
            (190, 80),
            (190, 280),
            (110, 280),
            (110, 80),
            (0, 80),
        ])
        .unwrap();
        assert_eq!(p.area(), 300 * 80 + 80 * 200);
        let rects = p.to_rects();
        assert_eq!(union_area(&rects), p.area());
        assert_eq!(rects.len(), 2);
    }

    #[test]
    fn u_shape_has_two_intervals_per_band() {
        let p = Polygon::new(vec![
            (0, 0),
            (300, 0),
            (300, 300),
            (220, 300),
            (220, 80),
            (80, 80),
            (80, 300),
            (0, 300),
        ])
        .unwrap();
        let rects = p.to_rects();
        assert_eq!(union_area(&rects), p.area());
        // Bottom bar + two prongs.
        assert_eq!(rects.len(), 3);
    }

    #[test]
    fn vertical_merging_minimizes_rect_count() {
        // A plus-shape decomposes into 3 rects (left arm, tall center
        // column, right arm), not 3 bands x intervals.
        let p = Polygon::new(vec![
            (100, 0),
            (200, 0),
            (200, 100),
            (300, 100),
            (300, 200),
            (200, 200),
            (200, 300),
            (100, 300),
            (100, 200),
            (0, 200),
            (0, 100),
            (100, 100),
        ])
        .unwrap();
        let rects = p.to_rects();
        assert_eq!(union_area(&rects), p.area());
        assert_eq!(rects.len(), 3, "{rects:?}");
    }

    #[test]
    fn display_of_errors() {
        assert!(PolygonError::SelfIntersecting.to_string().contains("self-intersects"));
        assert!(PolygonError::TooFewVertices(2).to_string().contains("got 2"));
    }
}
