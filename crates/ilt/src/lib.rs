//! Inverse lithography technique (ILT) mask optimization.
//!
//! This crate implements the pixel-based, steepest-descent ILT solver the
//! GAN-OPC paper uses in three roles:
//!
//! 1. the **baseline** it compares against (the MOSAIC-style solver
//!    \[7 in the paper\], Table 2 column "ILT");
//! 2. the **refinement stage** of the GAN-OPC flow (Fig. 6): the generator's
//!    quasi-optimal mask is handed to ILT for a few final iterations;
//! 3. the **gradient source** of ILT-guided generator pre-training
//!    (Algorithm 2).
//!
//! # Formulation (paper Eq. (11)–(14))
//!
//! The mask is parametrized by an unconstrained field `P` through the
//! translated sigmoid `M_b = σ(β·P)` (Eq. (13)); the relaxed wafer image is
//! `Z = σ(α(I − I_th))` (Eq. (12)); steepest descent minimizes
//! `E = ‖Z_t − Z‖²` (Eq. (11)) using the analytic gradient of Eq. (14)
//! (provided by [`ganopc_litho::LithoModel::gradient`], chained here with
//! the mask-sigmoid derivative `β·M_b(1−M_b)`).
//!
//! # Example
//!
//! ```
//! use ganopc_ilt::{IltConfig, IltEngine};
//! use ganopc_litho::{Field, LithoModel};
//!
//! # fn main() -> Result<(), ganopc_ilt::IltError> {
//! let model = LithoModel::iccad2013_like(64)?;
//! let mut target = Field::zeros(64, 64);
//! for y in 20..44 {
//!     for x in 29..35 {
//!         target.set(y, x, 1.0);
//!     }
//! }
//! let mut engine = IltEngine::new(model, IltConfig::fast());
//! let result = engine.optimize(&target)?;
//! assert!(result.l2_history.last().unwrap() <= result.l2_history.first().unwrap());
//! # Ok(())
//! # }
//! ```

use ganopc_fault as fault;
use ganopc_litho::{Field, LithoModel};
use ganopc_obs as obs;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from ILT optimization.
#[derive(Debug)]
pub enum IltError {
    /// Propagated lithography-model failure.
    Litho(ganopc_litho::LithoError),
    /// Target/initial-mask shape differs from the engine's model frame.
    ShapeMismatch {
        /// Expected `(height, width)`.
        expected: (usize, usize),
        /// Received `(height, width)`.
        actual: (usize, usize),
    },
    /// The descent error went NaN/∞ — the guard rail aborted the run
    /// instead of propagating non-finite values through the best-mask
    /// tracking.
    NonFinite {
        /// 1-based iteration at which the error left the finite domain.
        iteration: usize,
    },
}

impl fmt::Display for IltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IltError::Litho(e) => write!(f, "lithography failure: {e}"),
            IltError::ShapeMismatch { expected, actual } => write!(
                f,
                "field shape {}x{} does not match model frame {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            IltError::NonFinite { iteration } => {
                write!(f, "ILT error became non-finite at iteration {iteration}")
            }
        }
    }
}

impl Error for IltError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IltError::Litho(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ganopc_litho::LithoError> for IltError {
    fn from(e: ganopc_litho::LithoError) -> Self {
        IltError::Litho(e)
    }
}

/// ILT solver configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IltConfig {
    /// Maximum steepest-descent iterations.
    pub max_iterations: usize,
    /// Step size applied to the max-normalized gradient.
    pub step_size: f32,
    /// Mask-sigmoid steepness β of Eq. (13).
    pub beta: f32,
    /// Stop when the relative error improvement over `patience` iterations
    /// falls below this value.
    pub tolerance: f64,
    /// Window (iterations) for the convergence test.
    pub patience: usize,
    /// Average gradients over the ±2 % dose corners as well as nominal
    /// (process-window-aware descent, as MOSAIC does). Slower but yields a
    /// tighter PV band.
    pub process_window_aware: bool,
    /// Heavy-ball momentum on the parametrization updates (0 disables).
    /// Accelerates the long low-curvature valleys typical of litho error
    /// landscapes.
    pub momentum: f32,
}

impl IltConfig {
    /// Full-strength baseline solver (Table 2 "ILT" column). Plain
    /// steepest descent, as in the paper's references; enable
    /// [`IltConfig::momentum`] for the accelerated variant (it drives the
    /// scaled benchmark's L2 near zero, which makes Table 2 ratios
    /// noise-dominated — see EXPERIMENTS.md).
    pub fn mosaic() -> Self {
        IltConfig {
            max_iterations: 320,
            step_size: 0.6,
            beta: 4.0,
            momentum: 0.0,
            tolerance: 1e-4,
            patience: 12,
            process_window_aware: true,
        }
    }

    /// Refinement stage of the GAN-OPC flow (Fig. 6): the starting point is
    /// already close, so fewer iterations, nominal dose only.
    pub fn refinement() -> Self {
        IltConfig {
            max_iterations: 100,
            step_size: 0.6,
            beta: 4.0,
            momentum: 0.0,
            tolerance: 1e-4,
            patience: 8,
            process_window_aware: false,
        }
    }

    /// Cheap setting for unit tests and examples.
    pub fn fast() -> Self {
        IltConfig {
            max_iterations: 24,
            step_size: 0.6,
            beta: 4.0,
            momentum: 0.0,
            tolerance: 1e-5,
            patience: 24,
            process_window_aware: false,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_iterations == 0 {
            return Err("max_iterations must be positive".into());
        }
        if self.step_size <= 0.0 {
            return Err("step_size must be positive".into());
        }
        if self.beta <= 0.0 {
            return Err("beta must be positive".into());
        }
        if self.patience == 0 {
            return Err("patience must be positive".into());
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(format!("momentum {} out of [0,1)", self.momentum));
        }
        Ok(())
    }
}

impl Default for IltConfig {
    fn default() -> Self {
        IltConfig::mosaic()
    }
}

/// Outcome of one ILT run.
#[derive(Debug, Clone)]
pub struct IltResult {
    /// Final binarized mask.
    pub mask: Field,
    /// Final relaxed mask `M_b` (pre-binarization).
    pub mask_relaxed: Field,
    /// Binary wafer image of the final mask at nominal dose.
    pub wafer: Field,
    /// Relaxed lithography error `E` per iteration (Eq. (11)).
    pub l2_history: Vec<f64>,
    /// Squared L2 of the final *binary* wafer vs target, nm².
    pub binary_l2_nm2: f64,
    /// Iterations actually run.
    pub iterations: usize,
    /// Wall-clock runtime, seconds.
    pub runtime_s: f64,
}

/// A steepest-descent ILT engine bound to one lithography model.
#[derive(Debug)]
pub struct IltEngine {
    model: LithoModel,
    config: IltConfig,
}

impl IltEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`IltConfig::validate`].
    pub fn new(model: LithoModel, config: IltConfig) -> Self {
        // PANIC: documented above — misconfiguration is a programming error
        // at construction, not a runtime condition to recover from.
        config.validate().expect("invalid ILT configuration");
        IltEngine { model, config }
    }

    /// The lithography model.
    pub fn model(&self) -> &LithoModel {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &IltConfig {
        &self.config
    }

    /// Consumes the engine, returning the model (for reuse elsewhere).
    pub fn into_model(self) -> LithoModel {
        self.model
    }

    /// Optimizes a mask for `target`, initializing from the target itself —
    /// the conventional full ILT flow (paper Fig. 1).
    ///
    /// # Errors
    ///
    /// Returns [`IltError::ShapeMismatch`] on frame disagreement.
    pub fn optimize(&mut self, target: &Field) -> Result<IltResult, IltError> {
        self.optimize_from(target, target)
    }

    /// Optimizes starting from `initial_mask` — the GAN-OPC refinement stage
    /// (Fig. 6), where `initial_mask` is the generator output.
    ///
    /// # Errors
    ///
    /// Returns [`IltError::ShapeMismatch`] on frame disagreement.
    pub fn optimize_from(
        &mut self,
        target: &Field,
        initial_mask: &Field,
    ) -> Result<IltResult, IltError> {
        let frame = self.model.shape();
        for f in [target, initial_mask] {
            if f.shape() != frame {
                return Err(IltError::ShapeMismatch { expected: frame, actual: f.shape() });
            }
        }
        // The run span both feeds the ilt_optimize histogram and supplies
        // the result's runtime field; per-iteration spans and the loss/EPE
        // traces are recorded inside the loop below.
        let run_span = obs::span(obs::Span::IltOptimize);
        obs::counter_add(obs::Counter::IltRuns, 1);
        let (h, w) = frame;
        let beta = self.config.beta;
        // Unconstrained parametrization: P = logit(m)/β with m clamped away
        // from {0,1} so the sigmoid stays responsive.
        let mut p = Field::from_vec(
            h,
            w,
            initial_mask
                .as_slice()
                .iter()
                .map(|&m| {
                    let mc = m.clamp(0.1, 0.9);
                    (mc / (1.0 - mc)).ln() / beta
                })
                .collect(),
        );

        let doses: &[f32] =
            if self.config.process_window_aware { &[0.98, 1.0, 1.02] } else { &[1.0] };

        let mut history = Vec::with_capacity(self.config.max_iterations);
        let mut best_p = p.clone();
        let mut best_err = f64::INFINITY;
        let mut velocity = vec![0.0f32; h * w];
        let mut since_best = 0usize;
        // Iteration-loop buffers, hoisted so the descent loop allocates
        // nothing: the relaxed mask, the dose-accumulated gradient and the
        // per-dose gradient written by the allocation-free litho entry point.
        let mut m_b = Field::zeros(h, w);
        let mut grad = vec![0.0f32; h * w];
        let mut dose_grad = vec![0.0f32; h * w];
        let mu = self.config.momentum;
        let mut iterations = 0usize;
        // EPE-trace scratch (binary mask, aerial intensity, wafer) exists
        // only when the trace is enabled — the default (stride 0) costs the
        // descent loop nothing.
        let epe_stride = obs::epe_trace_stride();
        let mut epe_scratch = if epe_stride > 0 {
            // ALLOC: opt-in diagnostics scratch, hoisted outside the loop.
            Some((Field::zeros(h, w), vec![0.0f32; h * w], Field::zeros(h, w)))
        } else {
            None
        };
        for iter in 0..self.config.max_iterations {
            let _iter_span = obs::span(obs::Span::IltIteration);
            obs::counter_add(obs::Counter::IltIterations, 1);
            iterations = iter + 1;
            // Relaxed mask from the parametrization (Eq. (13)).
            for (mb, &pv) in m_b.as_mut_slice().iter_mut().zip(p.as_slice()) {
                *mb = 1.0 / (1.0 + (-beta * pv).exp());
            }
            // Accumulate gradient and error over the dose corners.
            grad.fill(0.0);
            let mut err = 0.0f64;
            for &dose in doses {
                err += self.model.gradient_into(&m_b, target, dose, &mut dose_grad)?;
                for (g, &r) in grad.iter_mut().zip(&dose_grad) {
                    *g += r;
                }
            }
            err /= doses.len() as f64;
            // Fault sink: armed builds may poison this iteration's error
            // with NaN/∞ to exercise the guard rail below (constant None
            // when the `fault-inject` feature is off).
            if let Some(poison) = fault::numeric_fault(fault::Domain::Ilt, iterations as u64) {
                obs::counter_add(obs::Counter::FaultsInjected, 1);
                err = poison.as_f64();
            }
            // Guard rail: a non-finite error means the descent left the
            // representable domain — abort typed rather than let NaN flow
            // through the history and best-mask comparisons (every NaN
            // compare is false, so `best_p` would silently freeze).
            if !err.is_finite() {
                obs::counter_add(obs::Counter::IltGuardTrips, 1);
                return Err(IltError::NonFinite { iteration: iterations });
            }
            history.push(err);
            obs::trace_push(obs::Trace::IltLoss, err);
            if let Some((bin_mask, aerial, wafer)) = epe_scratch.as_mut() {
                if iter % epe_stride == 0 {
                    // Print the binarized current mask and count EPE
                    // violations — the convergence signal Fig. 5 plots.
                    for (b, &mb) in bin_mask.as_mut_slice().iter_mut().zip(m_b.as_slice()) {
                        *b = f32::from(mb >= 0.5);
                    }
                    self.model.aerial_image_into(bin_mask, aerial.as_mut_slice())?;
                    let th = self.model.threshold();
                    for (wv, &iv) in wafer.as_mut_slice().iter_mut().zip(aerial.iter()) {
                        *wv = f32::from(iv >= th);
                    }
                    let (violations, _) = ganopc_litho::metrics::epe_violations(
                        wafer,
                        target,
                        self.model.pixel_nm(),
                        &ganopc_litho::metrics::DefectConfig::default(),
                    );
                    obs::trace_push(obs::Trace::IltEpe, violations as f64);
                }
            }
            if err < best_err {
                best_err = err;
                best_p = p.clone();
                since_best = 0;
            } else {
                since_best += 1;
                // Guard rail: the relative-improvement test below can be
                // kept alive indefinitely by an oscillating error; if the
                // *best* error has not moved for several patience windows
                // the run is stuck — bail out with the best mask found.
                if since_best >= self.config.patience.saturating_mul(4).max(8) {
                    obs::counter_add(obs::Counter::IltGuardTrips, 1);
                    break;
                }
            }
            // Chain through the mask sigmoid: ∂E/∂P = ∂E/∂M_b · β·M_b(1−M_b),
            // then take a max-normalized step (scale-free descent).
            let mut gmax = 0.0f32;
            for (g, &mb) in grad.iter_mut().zip(m_b.as_slice()) {
                *g *= beta * mb * (1.0 - mb);
                gmax = gmax.max(g.abs());
            }
            if gmax <= f32::EPSILON {
                break;
            }
            let step = self.config.step_size / gmax;
            for ((pv, g), v) in p.as_mut_slice().iter_mut().zip(&grad).zip(velocity.iter_mut()) {
                *v = mu * *v - step * g;
                *pv += *v;
            }
            // Convergence: relative improvement over the patience window.
            if history.len() > self.config.patience {
                let past = history[history.len() - 1 - self.config.patience];
                let rel = (past - err) / past.max(1e-12);
                if rel < self.config.tolerance {
                    break;
                }
            }
        }

        // Binarize the best parametrization and evaluate it for real.
        let mask_relaxed = best_p.map(|v| 1.0 / (1.0 + (-beta * v).exp()));
        let mask = mask_relaxed.binarize(0.5);
        let wafer = self.model.print_nominal(&mask);
        let binary_l2_nm2 =
            ganopc_litho::metrics::squared_l2_nm2(&wafer, target, self.model.pixel_nm());
        Ok(IltResult {
            mask,
            mask_relaxed,
            wafer,
            l2_history: history,
            binary_l2_nm2,
            iterations,
            runtime_s: run_span.finish().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganopc_litho::metrics::squared_l2_nm2;
    use ganopc_litho::OpticalConfig;

    fn small_model() -> LithoModel {
        let mut cfg = OpticalConfig::default_32nm(32.0); // 64 px == 2048 nm
        cfg.pupil_grid = 11;
        cfg.num_kernels = 8;
        LithoModel::new(cfg, 64, 64).unwrap()
    }

    fn cross_target() -> Field {
        let mut t = Field::zeros(64, 64);
        for y in 16..48 {
            for x in 30..34 {
                t.set(y, x, 1.0);
            }
        }
        for y in 30..34 {
            for x in 16..48 {
                t.set(y, x, 1.0);
            }
        }
        t
    }

    #[test]
    fn optimization_reduces_relaxed_error() {
        let mut engine = IltEngine::new(small_model(), IltConfig::fast());
        let target = cross_target();
        let result = engine.optimize(&target).unwrap();
        assert!(result.iterations > 1);
        let first = result.l2_history.first().unwrap();
        let last = result.l2_history.last().unwrap();
        assert!(last < first, "no progress: {first} -> {last}");
        assert!(result.runtime_s > 0.0);
    }

    #[test]
    fn optimized_mask_beats_no_opc() {
        let model = small_model();
        let target = cross_target();
        let px = model.pixel_nm();
        // Baseline: use the target as the mask directly.
        let no_opc_wafer = model.print_nominal(&target.binarize(0.5));
        let no_opc_l2 = squared_l2_nm2(&no_opc_wafer, &target, px);

        let mut cfg = IltConfig::fast();
        cfg.max_iterations = 60;
        let mut engine = IltEngine::new(model, cfg);
        let result = engine.optimize(&target).unwrap();
        assert!(
            result.binary_l2_nm2 < no_opc_l2,
            "ILT {} should beat no-OPC {}",
            result.binary_l2_nm2,
            no_opc_l2
        );
    }

    #[test]
    fn refinement_from_good_start_converges_immediately() {
        let mut engine = IltEngine::new(small_model(), IltConfig::fast());
        let target = cross_target();
        let full = engine.optimize(&target).unwrap();
        // Restart from the converged relaxed mask: error must start near the
        // converged level, far below a cold start.
        let refined = engine.optimize_from(&target, &full.mask_relaxed).unwrap();
        let cold_start = full.l2_history[0];
        let warm_start = refined.l2_history[0];
        assert!(
            warm_start < cold_start,
            "warm start {warm_start} not better than cold start {cold_start}"
        );
        assert!(refined.binary_l2_nm2 <= full.binary_l2_nm2 * 1.5);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let mut engine = IltEngine::new(small_model(), IltConfig::fast());
        let bad = Field::zeros(32, 32);
        assert!(matches!(engine.optimize(&bad), Err(IltError::ShapeMismatch { .. })));
    }

    #[test]
    fn process_window_aware_runs_and_tracks_corners() {
        let mut cfg = IltConfig::fast();
        cfg.process_window_aware = true;
        cfg.max_iterations = 6;
        let mut engine = IltEngine::new(small_model(), cfg);
        let target = cross_target();
        let result = engine.optimize(&target).unwrap();
        assert_eq!(result.l2_history.len(), result.iterations);
    }

    #[test]
    fn mask_is_binary() {
        let mut engine = IltEngine::new(small_model(), IltConfig::fast());
        let result = engine.optimize(&cross_target()).unwrap();
        assert!(result.mask.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(result.mask_relaxed.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let target = cross_target();
        let run = |mu: f32| {
            let mut cfg = IltConfig::fast();
            cfg.max_iterations = 15;
            cfg.momentum = mu;
            let mut engine = IltEngine::new(small_model(), cfg);
            *engine.optimize(&target).unwrap().l2_history.last().unwrap()
        };
        let plain = run(0.0);
        let heavy = run(0.6);
        assert!(heavy < plain * 1.05, "momentum should not hurt materially: {heavy} vs {plain}");
    }

    #[test]
    fn config_presets_validate() {
        for cfg in [IltConfig::mosaic(), IltConfig::refinement(), IltConfig::fast()] {
            assert!(cfg.validate().is_ok());
        }
        let mut bad = IltConfig::fast();
        bad.step_size = 0.0;
        assert!(bad.validate().is_err());
        let mut bad2 = IltConfig::fast();
        bad2.momentum = 1.0;
        assert!(bad2.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid ILT configuration")]
    fn engine_rejects_invalid_config() {
        let mut bad = IltConfig::fast();
        bad.max_iterations = 0;
        let _ = IltEngine::new(small_model(), bad);
    }
}
