//! Thread-count invariance of training.
//!
//! All parallel sites (GEMM blocks, per-sample convolutions, Hopkins kernel
//! loops, per-sample litho gradients) reduce in fixed index order, so a
//! training run must produce bit-identical statistics whether the pool uses
//! one worker or many. This is the single test in this binary because it
//! toggles the process-wide thread-count override.

use ganopc_core::pretrain::pretrain_generator;
use ganopc_core::{Discriminator, GanTrainer, Generator, OpcDataset, PretrainConfig, TrainConfig};
use ganopc_ilt::IltConfig;
use ganopc_litho::{LithoModel, OpticalConfig};

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ganopc_nn::pool::set_max_threads(Some(threads));
    let out = f();
    ganopc_nn::pool::set_max_threads(None);
    out
}

#[test]
fn training_stats_are_identical_for_any_thread_count() {
    let dataset = OpcDataset::synthesize(32, 2, IltConfig::fast(), 99).unwrap();

    // Observability must observe, never perturb. The span/counter hooks are
    // unconditionally active in every closure below (so each 1/3/4-thread
    // comparison already runs instrumented); the one opt-in recorder — the
    // ILT EPE trace, which replays aerial images into private scratch — is
    // checked here: synthesis with the trace enabled must reproduce the
    // untraced dataset bit-for-bit.
    ganopc_obs::set_epe_trace_stride(4);
    let traced = OpcDataset::synthesize(32, 2, IltConfig::fast(), 99).unwrap();
    ganopc_obs::set_epe_trace_stride(0);
    assert_eq!(dataset.targets(), traced.targets(), "EPE trace perturbed synthesized targets");
    assert_eq!(dataset.masks(), traced.masks(), "EPE trace perturbed ILT reference masks");

    // Adversarial training (Algorithm 1): StepStats derive PartialEq over
    // f64 fields, so equality here is bitwise.
    let train = || {
        let generator = Generator::new(32, 4, 5);
        let discriminator = Discriminator::new(32, 4, 6);
        let mut trainer = GanTrainer::new(generator, discriminator, TrainConfig::fast());
        trainer.train(&dataset)
    };
    let serial = with_threads(1, train);
    let uneven = with_threads(3, train);
    let parallel = with_threads(4, train);
    assert_eq!(serial, parallel, "GanTrainer::train diverged across thread counts");
    assert_eq!(serial, uneven, "GanTrainer::train diverged on an uneven worker split");

    // ILT-guided pre-training (Algorithm 2) exercises the litho-model pool
    // sites as well.
    let litho = {
        let mut cfg = OpticalConfig::default_32nm(2048.0 / 32.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 6;
        LithoModel::new(cfg, 32, 32).unwrap()
    };
    let pretrain = || {
        let mut generator = Generator::new(32, 4, 7);
        pretrain_generator(&mut generator, &litho, &dataset, &PretrainConfig::fast()).unwrap()
    };
    let serial = with_threads(1, pretrain);
    let uneven = with_threads(3, pretrain);
    let parallel = with_threads(4, pretrain);
    assert_eq!(serial, parallel, "pretrain_generator diverged across thread counts");
    assert_eq!(serial, uneven, "pretrain_generator diverged on an uneven worker split");

    // The spectral-engine hot paths directly: aerial image and the Eq. (14)
    // gradient on a 128-px frame must be bit-identical whether the Hopkins
    // kernel loop runs on one worker or four — the per-kernel partial
    // intensities and gradient terms are reduced serially in kernel order.
    let litho128 = {
        let mut cfg = OpticalConfig::default_32nm(2048.0 / 128.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 8;
        LithoModel::new(cfg, 128, 128).unwrap()
    };
    let mask = {
        let mut m = vec![0.0f32; 128 * 128];
        for y in 40..88 {
            for x in 32..96 {
                // A soft-edged bar: exercises both saturated and fractional
                // mask values through the sigmoid chain.
                m[y * 128 + x] = if (48..80).contains(&x) { 1.0 } else { 0.4 };
            }
        }
        ganopc_litho::Field::from_vec(128, 128, m)
    };
    let target = mask.map(|v| if v > 0.5 { 1.0 } else { 0.0 });
    let litho_eval = || {
        let aerial = litho128.aerial_image(&mask);
        let grad = litho128.gradient_at_dose(&mask, &target, 1.0).unwrap();
        (aerial, grad.error, grad.grad)
    };
    let (a1, e1, g1) = with_threads(1, litho_eval);
    let (a3, e3, g3) = with_threads(3, litho_eval);
    let (a4, e4, g4) = with_threads(4, litho_eval);
    assert_eq!(e1.to_bits(), e4.to_bits(), "litho error diverged across thread counts");
    assert_eq!(a1.as_slice(), a4.as_slice(), "aerial image diverged across thread counts");
    assert_eq!(g1.as_slice(), g4.as_slice(), "Eq. (14) gradient diverged across thread counts");
    // Three workers force ±1-sized chunk splits over the 8 Hopkins kernels;
    // the serial kernel-order reduction must hide the uneven partition.
    assert_eq!(e1.to_bits(), e3.to_bits(), "litho error diverged on an uneven worker split");
    assert_eq!(a1.as_slice(), a3.as_slice(), "aerial image diverged on an uneven worker split");
    assert_eq!(g1.as_slice(), g3.as_slice(), "Eq. (14) gradient diverged on an uneven split");

    // The batched no-grad fast path (`Generator::infer_into`) drives the
    // fused forward kernels through persistent buffers; it must be
    // bit-identical across thread counts, including on the second call that
    // reuses warm buffers.
    let (targets, _) = dataset.batch(&[0, 1]);
    let infer = || {
        let mut generator = Generator::new(32, 4, 11);
        let mut out = ganopc_nn::Tensor::zeros(&[1]);
        generator.infer_into(&targets, &mut out);
        generator.infer_into(&targets, &mut out);
        out
    };
    let serial = with_threads(1, infer);
    let uneven = with_threads(3, infer);
    let parallel = with_threads(4, infer);
    assert_eq!(
        serial.as_slice(),
        parallel.as_slice(),
        "Generator::infer_into diverged across thread counts"
    );
    assert_eq!(
        serial.as_slice(),
        uneven.as_slice(),
        "Generator::infer_into diverged on an uneven worker split"
    );
}
