//! Crash-safe resume: a run interrupted after `k` steps, checkpointed to
//! disk, and continued in a fresh trainer must be *bit-identical* to an
//! uninterrupted run — same per-step statistics, same final weights, same
//! optimizer state. Corrupt checkpoint files must fail with typed errors.

use ganopc_core::pretrain::pretrain_generator;
use ganopc_core::{
    Discriminator, GanOpcError, GanTrainer, Generator, OpcDataset, PretrainConfig, Pretrainer,
    TrainConfig,
};
use ganopc_ilt::IltConfig;
use ganopc_litho::{LithoModel, OpticalConfig};
use ganopc_nn::checkpoint::Checkpoint;
use std::path::PathBuf;

fn dataset() -> OpcDataset {
    OpcDataset::synthesize(32, 3, IltConfig::fast(), 42).unwrap()
}

fn litho_model() -> LithoModel {
    let mut cfg = OpticalConfig::default_32nm(2048.0 / 32.0);
    cfg.pupil_grid = 11;
    cfg.num_kernels = 6;
    LithoModel::new(cfg, 32, 32).unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ganopc-resume-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn fresh_trainer(config: TrainConfig) -> GanTrainer {
    GanTrainer::new(Generator::new(32, 4, 5), Discriminator::new(32, 4, 6), config)
}

#[test]
fn gan_training_resumes_bit_identically() {
    let ds = dataset();
    let mut config = TrainConfig::fast();
    config.iterations = 6;
    config.momentum = 0.5; // make optimizer state actually matter

    // Reference: N straight steps.
    let mut straight = fresh_trainer(config.clone());
    let straight_stats = straight.train(&ds);
    assert_eq!(straight_stats.len(), 6);

    // Interrupted: k steps, checkpoint to disk, fresh trainer, N − k steps.
    let path = temp_path("gan-trainer.ckpt");
    let mut first = fresh_trainer(config);
    let mut stats = first.train_for(&ds, 4);
    first.save_checkpoint(&path).unwrap();
    drop(first);
    let mut resumed = GanTrainer::resume(&path).unwrap();
    assert_eq!(resumed.step(), 4);
    stats.extend(resumed.train(&ds)); // runs the remaining 2

    // StepStats carries f64 losses and probabilities — PartialEq equality
    // here is bitwise equality of the whole training trajectory.
    assert_eq!(stats, straight_stats, "resumed trajectory diverged");
    assert_eq!(
        resumed.generator_mut().export_params(),
        straight.generator_mut().export_params(),
        "generator weights diverged after resume"
    );
    assert_eq!(
        resumed.discriminator_mut().export_params(),
        straight.discriminator_mut().export_params(),
        "discriminator weights diverged after resume"
    );
    // Optimizer velocity must match too, or the *next* step would diverge.
    let ck_a = resumed.to_checkpoint();
    let ck_b = straight.to_checkpoint();
    for section in ["opt_g/velocity", "opt_d/velocity"] {
        assert_eq!(
            ck_a.get_tensors(section).unwrap(),
            ck_b.get_tensors(section).unwrap(),
            "{section} diverged after resume"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn dropping_optimizer_state_would_diverge() {
    // The negative control for the bit-identity test: resuming weights but
    // not velocity must NOT reproduce the straight run (otherwise the
    // test above proves nothing about optimizer state).
    let ds = dataset();
    let mut config = TrainConfig::fast();
    config.iterations = 6;
    config.momentum = 0.5;

    let mut straight = fresh_trainer(config.clone());
    let straight_stats = straight.train(&ds);

    let mut first = fresh_trainer(config);
    let _ = first.train_for(&ds, 4);
    let mut ck = first.to_checkpoint();
    // Sabotage: wipe the velocity sections (empty = "never stepped").
    ck.put_tensors("opt_g/velocity", &[]);
    ck.put_tensors("opt_d/velocity", &[]);
    let mut resumed = GanTrainer::from_checkpoint(ck).unwrap();
    let tail = resumed.train(&ds);
    assert_ne!(
        &straight_stats[4..],
        &tail[..],
        "training is insensitive to dropped optimizer velocity"
    );
}

#[test]
fn pretraining_resumes_bit_identically() {
    let ds = dataset();
    let model = litho_model();
    let mut config = PretrainConfig::fast();
    config.iterations = 5;
    config.momentum = 0.5;

    // Reference A: the one-shot entry point (proves the Pretrainer matches
    // the historical pretrain_generator semantics exactly).
    let mut g_oneshot = Generator::new(32, 4, 9);
    let oneshot_stats = pretrain_generator(&mut g_oneshot, &model, &ds, &config).unwrap();

    // Reference B: an uninterrupted Pretrainer run.
    let mut straight = Pretrainer::new(Generator::new(32, 4, 9), config.clone());
    let straight_stats = straight.train(&model, &ds).unwrap();
    assert_eq!(straight_stats, oneshot_stats, "Pretrainer diverged from pretrain_generator");

    // Interrupted: 2 steps, checkpoint, fresh pre-trainer, remaining 3.
    let path = temp_path("pretrainer.ckpt");
    let mut first = Pretrainer::new(Generator::new(32, 4, 9), config);
    let mut stats = first.train_for(&model, &ds, 2).unwrap();
    first.save_checkpoint(&path).unwrap();
    drop(first);
    let mut resumed = Pretrainer::resume(&path).unwrap();
    assert_eq!(resumed.step(), 2);
    stats.extend(resumed.train(&model, &ds).unwrap());

    assert_eq!(stats, straight_stats, "resumed pre-training trajectory diverged");
    assert_eq!(
        resumed.generator_mut().export_params(),
        straight.generator_mut().export_params(),
        "generator weights diverged after pre-training resume"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupt_checkpoints_fail_with_typed_errors() {
    let ds = dataset();
    let mut config = TrainConfig::fast();
    config.iterations = 3;
    let path = temp_path("corruptible.ckpt");
    let mut trainer = fresh_trainer(config);
    let _ = trainer.train_for(&ds, 1);
    trainer.save_checkpoint(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Truncations at several depths.
    for cut in [0, 7, 12, 40, bytes.len() / 2, bytes.len() - 1] {
        let p = temp_path("truncated.ckpt");
        std::fs::write(&p, &bytes[..cut]).unwrap();
        assert!(
            matches!(GanTrainer::resume(&p), Err(GanOpcError::Checkpoint(_))),
            "truncation at {cut} did not fail as a checkpoint error"
        );
    }

    // A bit flip anywhere past the version field trips the CRC.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    let p = temp_path("flipped.ckpt");
    std::fs::write(&p, &flipped).unwrap();
    assert!(matches!(GanTrainer::resume(&p), Err(GanOpcError::Checkpoint(_))));

    // Not a checkpoint at all.
    let p = temp_path("garbage.ckpt");
    std::fs::write(&p, b"definitely not a checkpoint").unwrap();
    assert!(matches!(GanTrainer::resume(&p), Err(GanOpcError::Checkpoint(_))));

    // Missing file is an I/O-flavoured checkpoint error, not a panic.
    assert!(GanTrainer::resume(temp_path("does-not-exist.ckpt")).is_err());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn wrong_kind_and_hostile_state_rejected() {
    let ds = dataset();
    let model = litho_model();

    // A pre-trainer checkpoint is not a GAN-trainer checkpoint (and vice
    // versa) — the meta/kind tag catches the mix-up with a typed error.
    let mut pre = Pretrainer::new(Generator::new(32, 4, 1), PretrainConfig::fast());
    let _ = pre.train_for(&model, &ds, 1).unwrap();
    let path = temp_path("kind-mismatch.ckpt");
    pre.save_checkpoint(&path).unwrap();
    assert!(matches!(GanTrainer::resume(&path), Err(GanOpcError::Config(_))));

    let mut config = TrainConfig::fast();
    config.iterations = 2;
    let mut trainer = fresh_trainer(config);
    let _ = trainer.train_for(&ds, 1);
    trainer.save_checkpoint(&path).unwrap();
    assert!(matches!(Pretrainer::resume(&path), Err(GanOpcError::Config(_))));

    // Hostile scalar state must surface as errors, not panics or huge
    // allocations inside network constructors.
    let base = trainer.to_checkpoint();
    let corrupt = |f: &dyn Fn(&mut Checkpoint)| {
        let mut ck = base.clone();
        f(&mut ck);
        GanTrainer::from_checkpoint(ck)
    };
    assert!(matches!(corrupt(&|ck| ck.put_u64("arch/size", 1 << 40)), Err(GanOpcError::Config(_))));
    assert!(matches!(corrupt(&|ck| ck.put_u64("arch/size", 7)), Err(GanOpcError::Config(_))));
    assert!(matches!(corrupt(&|ck| ck.put_u64("arch/g_base", 0)), Err(GanOpcError::Config(_))));
    assert!(matches!(
        corrupt(&|ck| ck.put_f64("config/momentum", 2.0)),
        Err(GanOpcError::Config(_))
    ));
    assert!(matches!(
        corrupt(&|ck| ck.put_f64("config/lr_generator", -1.0)),
        Err(GanOpcError::Config(_))
    ));
    // Velocity tensors that do not match the network layout.
    assert!(matches!(
        corrupt(&|ck| ck.put_tensors("opt_g/velocity", &[ganopc_nn::Tensor::zeros(&[3, 3])])),
        Err(GanOpcError::Config(_))
    ));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn best_snapshot_restores_full_training_state() {
    // Satellite fix: train_with_validation used to restore only the best
    // *generator weights*, leaving both optimizers and the discriminator at
    // final-step state. Now the whole snapshot travels together; verify via
    // the checkpoint sections that live state == best state after the run.
    let ds = dataset();
    let model = litho_model();
    let (train, val) = ganopc_core::split_dataset(&ds, 0.34, 3).unwrap();
    let mut config = TrainConfig::fast();
    config.iterations = 4;
    config.momentum = 0.5;
    let mut trainer = fresh_trainer(config);
    let (stats, report) = trainer.train_with_validation(&train, &val, &model, 1).unwrap();
    assert_eq!(stats.len(), 4);
    assert_eq!(trainer.best_report(), Some(&report));

    let ck = trainer.to_checkpoint();
    for (live, best) in [
        ("g/params", "best/g_params"),
        ("d/params", "best/d_params"),
        ("opt_g/velocity", "best/opt_g"),
        ("opt_d/velocity", "best/opt_d"),
    ] {
        assert_eq!(
            ck.get_tensors(live).unwrap(),
            ck.get_tensors(best).unwrap(),
            "{live} was not restored to the best-validation snapshot"
        );
    }
}

#[test]
fn resume_preserves_best_snapshot_and_validation_flow() {
    let ds = dataset();
    let model = litho_model();
    let (train, val) = ganopc_core::split_dataset(&ds, 0.34, 3).unwrap();
    let mut config = TrainConfig::fast();
    config.iterations = 4;

    // A completed validated run, checkpointed and resumed: the best
    // snapshot (report + weights + optimizer state) must survive the disk
    // round trip exactly.
    let path = temp_path("validated.ckpt");
    let mut straight = fresh_trainer(config);
    let (_, report) = straight.train_with_validation(&train, &val, &model, 2).unwrap();
    straight.save_checkpoint(&path).unwrap();
    let mut resumed = GanTrainer::resume(&path).unwrap();
    assert_eq!(resumed.step(), 4);
    assert_eq!(resumed.best_report(), Some(&report));

    // Continuing a finished validated run does zero steps and hands back
    // the same best checkpoint instead of re-training or panicking.
    let (tail, report2) = resumed.train_with_validation(&train, &val, &model, 2).unwrap();
    assert!(tail.is_empty(), "finished run must not train further");
    assert_eq!(report2, report, "best report diverged across resume");
    std::fs::remove_file(&path).unwrap();
}
