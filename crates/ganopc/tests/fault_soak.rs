//! Fault-soak gate: short training / pretraining / ILT sessions under
//! seeded fault plans ([`ganopc_fault::plan_from_seed`]) must complete or
//! fail with a typed error — never panic — and every artifact that
//! survives on disk must reload. Plus targeted single-fault tests for
//! each write-fault kind, the read-fault hook, NaN-at-step-k recovery,
//! and the rollback bit-identity guarantee.
//!
//! This whole file is compiled only with the `fault-inject` feature;
//! `scripts/check.sh` runs it as
//! `cargo test --features fault-inject -p ganopc-core --test fault_soak`.
#![cfg(feature = "fault-inject")]

use ganopc_core::pretrain::pretrain_generator;
use ganopc_core::{
    Discriminator, GanOpcError, GanTrainer, Generator, OpcDataset, PretrainConfig,
    SupervisorConfig, TrainConfig, TrainSupervisor,
};
use ganopc_fault as fault;
use ganopc_fault::{Domain, FaultPlan, NumericFault, WriteFault};
use ganopc_geometry::io::write_atomic;
use ganopc_ilt::{IltConfig, IltEngine};
use ganopc_litho::{Field, LithoModel, OpticalConfig};
use ganopc_nn::checkpoint::{self, Checkpoint};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The fault sink is process-global: every test that installs a plan
/// holds this lock so concurrent test threads cannot see each other's
/// faults.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn faults_serialized() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn dataset() -> OpcDataset {
    OpcDataset::synthesize(32, 3, IltConfig::fast(), 42).unwrap()
}

fn litho_model() -> LithoModel {
    let mut cfg = OpticalConfig::default_32nm(2048.0 / 32.0);
    cfg.pupil_grid = 11;
    cfg.num_kernels = 6;
    LithoModel::new(cfg, 32, 32).unwrap()
}

fn tiny_trainer(seed: u64) -> GanTrainer {
    GanTrainer::new(
        Generator::new(32, 4, seed),
        Discriminator::new(32, 4, seed ^ 1),
        TrainConfig::fast(),
    )
}

fn soak_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ganopc-fault-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Post-session invariants for a soak directory: no stray atomic-write
/// temporaries anywhere, and every surviving checkpoint decodes.
fn assert_artifacts_clean(dir: &Path) {
    let mut pending = vec![dir.to_path_buf()];
    while let Some(d) = pending.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                pending.push(path);
                continue;
            }
            let name = path.file_name().unwrap().to_str().unwrap();
            assert!(
                !(name.starts_with('.') && name.ends_with(".tmp")),
                "stray atomic-write temporary survived: {}",
                path.display()
            );
            if name.starts_with("ring-") || name == "best.ckpt" {
                Checkpoint::load(&path)
                    .unwrap_or_else(|e| panic!("unreloadable ring entry {}: {e}", path.display()));
            } else if name.ends_with(".ckpt") {
                checkpoint::load(&path)
                    .unwrap_or_else(|e| panic!("unreloadable artifact {}: {e}", path.display()));
            }
        }
    }
}

/// The headline soak: 36 seeded fault plans, each driving a short
/// pretraining leg plus a supervised training session plus a final
/// artifact save. Whatever the plan does, the session must complete or
/// fail typed (a panic fails this test), and afterwards the directory
/// must hold only reloadable artifacts and no temporaries.
#[test]
fn seeded_fault_plans_never_panic_and_artifacts_reload() {
    let _g = faults_serialized();
    let ds = dataset();
    let model = litho_model();
    for seed in 0..36u64 {
        let dir = soak_dir(&format!("seed{seed}"));
        fault::install(fault::plan_from_seed(seed));

        // Pretraining leg: exercises Domain::Pretrain numeric faults.
        let mut generator = Generator::new(32, 4, seed ^ 0xA5);
        let mut pcfg = PretrainConfig::fast();
        pcfg.iterations = 3;
        if let Err(e) = pretrain_generator(&mut generator, &model, &ds, &pcfg) {
            // Typed and displayable is all that is required of a failure.
            let _ = e.to_string();
        }

        // Supervised training leg: exercises Domain::Train numeric
        // faults, ring write faults, and rollback read faults.
        let cfg = SupervisorConfig {
            ckpt_ring: 2,
            checkpoint_every: 2,
            max_retries: 2,
            divergence_window: 4,
            explosion_factor: 4.0,
            lr_backoff: 0.5,
            stall_patience: 0,
        };
        let mut sup = TrainSupervisor::new(dir.join("ring"), cfg).unwrap();
        let mut trainer =
            GanTrainer::new(generator, Discriminator::new(32, 4, seed ^ 0x5A), TrainConfig::fast());
        match sup.run(&mut trainer, &ds, 6) {
            Ok(stats) => assert!(stats.len() <= 6, "seed {seed}: more stats than steps"),
            Err(e) => {
                let _ = e.to_string();
            }
        }

        // Final artifact write attempt — may be the one the plan kills.
        let (mut generator, _) = trainer.into_networks();
        let _ = generator.save(dir.join("generator.ckpt"));

        fault::clear();
        assert_artifacts_clean(&dir);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ILT sessions under seeded plans: the descent either converges or
    /// bails with a typed error (non-finite guard, stagnation bail-out);
    /// an `Ok` result must carry a finite mask.
    #[test]
    fn ilt_sessions_survive_seeded_faults(seed in 0u64..512) {
        let _g = faults_serialized();
        let mut target = Field::zeros(32, 32);
        for r in 10..22 {
            for c in 12..20 {
                target.set(r, c, 1.0);
            }
        }
        let mut cfg = IltConfig::fast();
        cfg.max_iterations = 10;
        let mut engine = IltEngine::new(litho_model(), cfg);
        fault::install(fault::plan_from_seed(seed));
        let outcome = engine.optimize(&target);
        fault::clear();
        match outcome {
            Ok(result) => {
                prop_assert!(
                    result.mask.as_slice().iter().all(|v| v.is_finite()),
                    "Ok result carries a non-finite mask"
                );
            }
            Err(e) => {
                let _ = e.to_string(); // typed and displayable
            }
        }
    }
}

#[test]
fn torn_write_preserves_previous_artifact() {
    let _g = faults_serialized();
    let dir = soak_dir("torn");
    let path = dir.join("artifact.bin");
    write_atomic(&path, b"previous good payload").unwrap();
    let mut plan = FaultPlan::empty();
    plan.write_faults.push((0, WriteFault::Tear(3)));
    fault::install(plan);
    let err = write_atomic(&path, b"replacement that tears").unwrap_err();
    fault::clear();
    assert!(err.to_string().contains("torn"), "unexpected error: {err}");
    assert_eq!(std::fs::read(&path).unwrap(), b"previous good payload");
    assert_artifacts_clean(&dir);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn enospc_fails_the_write_and_leaves_no_debris() {
    let _g = faults_serialized();
    let dir = soak_dir("enospc");
    let path = dir.join("artifact.bin");
    let mut plan = FaultPlan::empty();
    plan.write_faults.push((0, WriteFault::Enospc));
    fault::install(plan);
    let err = write_atomic(&path, b"payload").unwrap_err();
    fault::clear();
    assert_eq!(err.raw_os_error(), Some(28), "expected ENOSPC, got {err}");
    assert!(!path.exists(), "destination must not appear after a failed write");
    assert_artifacts_clean(&dir);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fsync_and_rename_faults_never_expose_a_partial_artifact() {
    let _g = faults_serialized();
    let dir = soak_dir("sync-rename");
    for kind in [WriteFault::Fail, WriteFault::FsyncFail, WriteFault::RenameFail] {
        let path = dir.join("artifact.bin");
        let mut plan = FaultPlan::empty();
        plan.write_faults.push((0, kind));
        fault::install(plan);
        assert!(write_atomic(&path, b"payload").is_err(), "{kind:?} did not fail the write");
        fault::clear();
        assert!(!path.exists(), "{kind:?} exposed a destination file");
        assert_artifacts_clean(&dir);
    }
    // The faults are one-shot: the very next write goes through clean.
    let path = dir.join("artifact.bin");
    write_atomic(&path, b"payload").unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), b"payload");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn read_fault_fails_one_load_then_recovers() {
    let _g = faults_serialized();
    let dir = soak_dir("read");
    let path = dir.join("state.ckpt");
    let mut ck = Checkpoint::new();
    ck.put_u64("progress/step", 7);
    ck.save(&path).unwrap();
    let mut plan = FaultPlan::empty();
    plan.read_faults.push(0);
    fault::install(plan);
    let err = Checkpoint::load(&path).unwrap_err();
    assert!(err.to_string().contains("fault-inject"), "unexpected error: {err}");
    // One-shot: the retry (same installed plan) succeeds.
    let reloaded = Checkpoint::load(&path).unwrap();
    fault::clear();
    assert_eq!(reloaded.get_u64("progress/step").unwrap(), 7);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A NaN poisoned into step k's reported losses trips the monitor, rolls
/// the trainer back one ring generation, and the session still completes
/// its full budget — the transient-fault recovery the supervisor exists
/// for.
#[test]
fn nan_at_step_k_is_recovered_by_rollback() {
    let _g = faults_serialized();
    let ds = dataset();
    let dir = soak_dir("nan-recovery");
    let cfg = SupervisorConfig {
        ckpt_ring: 4,
        checkpoint_every: 1,
        max_retries: 2,
        divergence_window: 4,
        explosion_factor: 1e6,
        lr_backoff: 0.5,
        stall_patience: 0,
    };
    let mut sup = TrainSupervisor::new(&dir, cfg).unwrap();
    let mut trainer = tiny_trainer(17);
    let mut plan = FaultPlan::empty();
    plan.numeric_faults.push((Domain::Train, 3, NumericFault::Nan));
    fault::install(plan);
    let stats = sup.run(&mut trainer, &ds, 5).unwrap();
    fault::clear();
    assert_eq!(sup.retries_used(), 1, "expected exactly one recovery");
    assert!(sup.lr_scale() < 1.0, "LR backoff was not applied");
    assert_eq!(trainer.step(), 5, "session did not complete its budget");
    assert_eq!(stats.len(), 5, "surviving timeline is incomplete");
    assert!(
        stats.iter().all(|s| s.l2_loss.is_finite() && s.adversarial_loss.is_finite()),
        "poisoned stats leaked into the surviving timeline"
    );
    assert_artifacts_clean(&dir);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance guarantee: at `lr_backoff = 1.0` a supervisor recovery
/// replays exactly the math a clean run would have executed — the faulted
/// run's stats and final state are bit-identical both to an unfaulted run
/// and to a clean resume from the very ring entry the rollback restored.
#[test]
fn rollback_recovery_is_bit_identical_to_clean_resume() {
    let _g = faults_serialized();
    let ds = dataset();
    let dir = soak_dir("bit-identity");

    // Reference: the same trainer seed, no faults, no supervisor.
    let mut plain = tiny_trainer(21);
    let plain_stats = plain.train_for(&ds, 6);

    let cfg = SupervisorConfig {
        ckpt_ring: 10, // keep every generation so the rollback point survives
        checkpoint_every: 1,
        max_retries: 2,
        divergence_window: 4,
        explosion_factor: 1e6,
        lr_backoff: 1.0, // recovery must replay the exact same schedule
        stall_patience: 0,
    };
    let mut sup = TrainSupervisor::new(&dir, cfg).unwrap();
    let mut faulted = tiny_trainer(21);
    let mut plan = FaultPlan::empty();
    plan.numeric_faults.push((Domain::Train, 4, NumericFault::Inf));
    fault::install(plan);
    let stats = sup.run(&mut faulted, &ds, 6).unwrap();
    fault::clear();
    assert_eq!(sup.retries_used(), 1, "the poison must have tripped exactly once");

    // Identical trajectory and final state despite the trip + rollback.
    assert_eq!(stats, plain_stats, "recovered trajectory diverged from the clean run");
    assert_eq!(
        faulted.to_checkpoint().to_bytes(),
        plain.to_checkpoint().to_bytes(),
        "recovered state is not bit-identical to the clean run"
    );

    // And the stronger form: resume cleanly from the ring entry the
    // rollback used (step 3, written before the poisoned step 4) and
    // train the remaining steps — same bytes again.
    let ck = Checkpoint::load(sup.ring().entry_path(3)).unwrap();
    let mut resumed = GanTrainer::from_checkpoint(ck).unwrap();
    assert_eq!(resumed.step(), 3);
    let tail = resumed.train_for(&ds, 3);
    assert_eq!(&tail[..], &plain_stats[3..], "clean-resume tail diverged");
    assert_eq!(
        resumed.to_checkpoint().to_bytes(),
        faulted.to_checkpoint().to_bytes(),
        "supervisor recovery differs from a clean resume off the same checkpoint"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Write faults aimed at the ring degrade it gracefully: pushes fail
/// (counted, tolerated) and a later rollback uses the newest entry that
/// actually landed — or fails typed when none did.
#[test]
fn ring_write_faults_degrade_to_typed_divergence() {
    let _g = faults_serialized();
    let ds = dataset();
    let dir = soak_dir("ring-starved");
    let cfg = SupervisorConfig {
        ckpt_ring: 3,
        checkpoint_every: 1,
        max_retries: 2,
        divergence_window: 4,
        explosion_factor: 1e6,
        lr_backoff: 0.5,
        stall_patience: 0,
    };
    let mut sup = TrainSupervisor::new(&dir, cfg).unwrap();
    let mut trainer = tiny_trainer(23);
    // Kill every ring write the session will attempt, then poison step 2:
    // the trip finds no rollback point and must fail typed, not panic.
    let mut plan = FaultPlan::empty();
    for op in 0..10 {
        plan.write_faults.push((op, WriteFault::Fail));
    }
    plan.numeric_faults.push((Domain::Train, 2, NumericFault::Nan));
    fault::install(plan);
    let outcome = sup.run(&mut trainer, &ds, 4);
    fault::clear();
    match outcome {
        Err(GanOpcError::Divergence(e)) => {
            assert_eq!(e.retries, 0, "no rollback point existed, so no retry was possible");
        }
        other => panic!("expected a typed divergence failure, got {other:?}"),
    }
    assert_artifacts_clean(&dir);
    std::fs::remove_dir_all(&dir).unwrap();
}
