//! Allocation-regression guard for the zero-allocation engine.
//!
//! After a warmup that sizes every persistent buffer (layer scratch, the
//! Sequential tape, optimizer moments, loss-gradient buffers, the trainer's
//! own scratch), steady-state `GanTrainer::train_step` and
//! `Generator::infer_into` must perform **zero** heap allocations. A counting
//! global allocator makes any regression an immediate test failure rather
//! than a slow perf drift.
//!
//! The guarantee now covers the parallel path too: the persistent work-crew
//! dispatches through a shared job descriptor and atomic chunk claims, with
//! no job or result vectors, so after a warmup that spawns the crew and
//! sizes per-worker scratch a 4-thread steady state is also allocation-free.
//! This is the single test in this binary because both the allocator counter
//! and the thread override are process-wide.
//!
//! The obs instrumentation (span timers, counters, trace rings) is active
//! on every measured path and is itself covered by a dedicated block: the
//! zero-allocation guarantee holds *with metrics recording enabled*.

use ganopc_core::{Discriminator, GanTrainer, Generator, OpcDataset, TrainConfig};
use ganopc_ilt::IltConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_training_and_inference_allocate_nothing() {
    ganopc_nn::pool::set_max_threads(Some(1));

    let dataset = OpcDataset::synthesize(32, 4, IltConfig::fast(), 42).unwrap();
    let (targets, refs) = dataset.batch(&[0, 1, 2, 3]);

    // Training steady state: two warmup steps size every buffer (the second
    // catches anything lazily grown on first reuse), then three measured
    // steps must not touch the allocator.
    let generator = Generator::new(32, 4, 1);
    let discriminator = Discriminator::new(32, 4, 2);
    let mut trainer = GanTrainer::new(generator, discriminator, TrainConfig::fast());
    for _ in 0..2 {
        trainer.train_step(&targets, &refs);
    }
    let before = allocations();
    for _ in 0..3 {
        trainer.train_step(&targets, &refs);
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "train_step allocated {delta} times after warmup");

    // Batched inference fast path.
    let mut g = Generator::new(32, 4, 3);
    let mut out = ganopc_nn::Tensor::zeros(&[1]);
    for _ in 0..2 {
        g.infer_into(&targets, &mut out);
    }
    let before = allocations();
    for _ in 0..3 {
        g.infer_into(&targets, &mut out);
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "infer_into allocated {delta} times after warmup");

    // Parallel steady state: the work-crew hands chunks out through the
    // shared descriptor, so beyond the warmup (which spawns the workers and
    // sizes their thread-local scratch) a 4-way dispatch allocates nothing
    // either.
    ganopc_nn::pool::set_max_threads(Some(4));
    for _ in 0..2 {
        trainer.train_step(&targets, &refs);
    }
    let before = allocations();
    for _ in 0..3 {
        trainer.train_step(&targets, &refs);
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "train_step allocated {delta} times after warmup at 4 threads");

    for _ in 0..2 {
        g.infer_into(&targets, &mut out);
    }
    let before = allocations();
    for _ in 0..3 {
        g.infer_into(&targets, &mut out);
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "infer_into allocated {delta} times after warmup at 4 threads");

    // Metrics recording itself is allocation-free: counters, span guards,
    // and trace pushes write fixed static slots. Every measured loop above
    // already ran with the train/infer spans and pool counters recording;
    // this block pins the obs primitives directly so a future change that
    // buys convenience with a heap allocation fails here by name.
    use ganopc_obs as obs;
    let before = allocations();
    for i in 0..64 {
        let sp = obs::span(obs::Span::TrainStep);
        obs::counter_add(obs::Counter::TrainSteps, 1);
        obs::trace_push(obs::Trace::IltLoss, i as f64);
        drop(sp);
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "obs recording allocated {delta} times");

    ganopc_nn::pool::set_max_threads(None);
}
