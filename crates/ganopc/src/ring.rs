//! Bounded on-disk checkpoint ring: the supervisor's rollback store.
//!
//! A ring directory holds the last `K` training checkpoints as
//! `ring-<step:08>.ckpt` plus an optional `best.ckpt` (the best-validation
//! state, exempt from rotation). Pushing beyond capacity deletes the
//! oldest entry, so disk usage is bounded no matter how long a run lives.
//!
//! Every file goes through the atomic writer, so a crash mid-push leaves
//! the previous ring intact; [`CheckpointRing::open`] additionally sweeps
//! stale atomic-write temporaries and re-indexes whatever survived, which
//! is what makes the ring a valid recovery source after a hard kill.
//! [`CheckpointRing::load_latest_good`] walks entries newest-first and
//! skips (and drops) any that fail to decode — a torn or
//! injected-corrupt file costs one generation of history, never the run.

use crate::GanOpcError;
use ganopc_nn::checkpoint::{Checkpoint, CheckpointError};
use std::path::{Path, PathBuf};

/// File-name prefix of rotated ring entries.
const RING_PREFIX: &str = "ring-";
/// File-name suffix of every checkpoint the ring manages.
const RING_SUFFIX: &str = ".ckpt";
/// Name of the rotation-exempt best-validation checkpoint.
const BEST_NAME: &str = "best.ckpt";

/// A bounded ring of training checkpoints in one directory.
#[derive(Debug)]
pub struct CheckpointRing {
    dir: PathBuf,
    capacity: usize,
    /// `(step, path)` entries, ascending by step.
    entries: Vec<(usize, PathBuf)>,
}

impl CheckpointRing {
    /// Opens (creating if needed) a ring directory holding at most
    /// `capacity` rotated checkpoints, sweeping stale atomic-write
    /// temporaries and indexing any `ring-*.ckpt` survivors from a
    /// previous process.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or listed.
    pub fn open<P: AsRef<Path>>(dir: P, capacity: usize) -> Result<Self, GanOpcError> {
        let dir = dir.as_ref().to_path_buf();
        let file_err = |op: &'static str, source: std::io::Error| {
            GanOpcError::Checkpoint(CheckpointError::File { op, path: dir.clone(), source })
        };
        std::fs::create_dir_all(&dir).map_err(|e| file_err("create", e))?;
        ganopc_geometry::io::sweep_stale_tmp(&dir);
        let mut entries = Vec::new();
        for entry in std::fs::read_dir(&dir).map_err(|e| file_err("read", e))? {
            let entry = entry.map_err(|e| file_err("read", e))?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(step) = name
                .strip_prefix(RING_PREFIX)
                .and_then(|s| s.strip_suffix(RING_SUFFIX))
                .and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            entries.push((step, path));
        }
        entries.sort_unstable_by_key(|&(step, _)| step);
        let mut ring = CheckpointRing { dir, capacity: capacity.max(1), entries };
        ring.prune();
        Ok(ring)
    }

    /// The ring directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Steps of the rotated entries currently held, ascending.
    pub fn steps(&self) -> Vec<usize> {
        self.entries.iter().map(|&(step, _)| step).collect()
    }

    /// Path a checkpoint for `step` is (or would be) stored at.
    pub fn entry_path(&self, step: usize) -> PathBuf {
        self.dir.join(format!("{RING_PREFIX}{step:08}{RING_SUFFIX}"))
    }

    /// Path of the rotation-exempt best checkpoint.
    pub fn best_path(&self) -> PathBuf {
        self.dir.join(BEST_NAME)
    }

    /// Atomically writes `ck` as the ring entry for `step`, rotating out
    /// the oldest entry beyond capacity. Pushing an already-present step
    /// overwrites that entry in place.
    ///
    /// # Errors
    ///
    /// Propagates the write failure; the previous ring contents remain
    /// valid (atomic write) and the index is left unchanged.
    pub fn push(&mut self, step: usize, ck: &Checkpoint) -> Result<PathBuf, GanOpcError> {
        let path = self.entry_path(step);
        ck.save(&path)?;
        if let Some(slot) = self.entries.iter_mut().find(|(s, _)| *s == step) {
            slot.1 = path.clone();
        } else {
            self.entries.push((step, path.clone()));
            self.entries.sort_unstable_by_key(|&(s, _)| s);
        }
        self.prune();
        Ok(path)
    }

    /// Atomically writes `ck` as `best.ckpt` (never rotated out).
    ///
    /// # Errors
    ///
    /// Propagates the write failure; a previous best survives it.
    pub fn save_best(&self, ck: &Checkpoint) -> Result<PathBuf, GanOpcError> {
        let path = self.best_path();
        ck.save(&path)?;
        Ok(path)
    }

    /// Loads the newest ring entry that still decodes, dropping (and
    /// deleting) every newer entry that fails — a corrupt file costs one
    /// generation of history. Returns `None` when no entry is loadable.
    pub fn load_latest_good(&mut self) -> Option<(usize, Checkpoint)> {
        while let Some(&(step, ref path)) = self.entries.last() {
            match Checkpoint::load(path) {
                Ok(ck) => return Some((step, ck)),
                Err(_) => {
                    let _ = std::fs::remove_file(path);
                    self.entries.pop();
                }
            }
        }
        None
    }

    fn prune(&mut self) {
        while self.entries.len() > self.capacity {
            let (_, path) = self.entries.remove(0);
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ganopc-ring-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ck_with_step(step: u64) -> Checkpoint {
        let mut ck = Checkpoint::new();
        ck.put_u64("progress/step", step);
        ck
    }

    #[test]
    fn push_rotates_oldest_beyond_capacity() {
        let dir = ring_dir("rotate");
        let mut ring = CheckpointRing::open(&dir, 3).unwrap();
        for step in [10, 20, 30, 40] {
            ring.push(step, &ck_with_step(step as u64)).unwrap();
        }
        assert_eq!(ring.steps(), vec![20, 30, 40]);
        assert!(!ring.entry_path(10).exists(), "oldest entry not rotated out");
        let (step, ck) = ring.load_latest_good().unwrap();
        assert_eq!(step, 40);
        assert_eq!(ck.get_u64("progress/step").unwrap(), 40);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_reindexes_surviving_entries() {
        let dir = ring_dir("reopen");
        let mut ring = CheckpointRing::open(&dir, 4).unwrap();
        for step in [5, 6, 7] {
            ring.push(step, &ck_with_step(step as u64)).unwrap();
        }
        drop(ring);
        let ring = CheckpointRing::open(&dir, 4).unwrap();
        assert_eq!(ring.steps(), vec![5, 6, 7]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_entry_falls_back_one_generation() {
        let dir = ring_dir("corrupt");
        let mut ring = CheckpointRing::open(&dir, 3).unwrap();
        ring.push(1, &ck_with_step(1)).unwrap();
        ring.push(2, &ck_with_step(2)).unwrap();
        // Corrupt the newest entry on disk (through the atomic writer —
        // the lint keeps raw file writes out of this crate).
        ganopc_geometry::io::write_atomic(ring.entry_path(2), b"garbage").unwrap();
        let (step, ck) = ring.load_latest_good().unwrap();
        assert_eq!(step, 1);
        assert_eq!(ck.get_u64("progress/step").unwrap(), 1);
        assert!(!ring.entry_path(2).exists(), "corrupt entry not dropped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn best_checkpoint_survives_rotation() {
        let dir = ring_dir("best");
        let mut ring = CheckpointRing::open(&dir, 1).unwrap();
        ring.save_best(&ck_with_step(99)).unwrap();
        for step in 1..=5 {
            ring.push(step, &ck_with_step(step as u64)).unwrap();
        }
        assert_eq!(ring.steps(), vec![5]);
        let best = Checkpoint::load(ring.best_path()).unwrap();
        assert_eq!(best.get_u64("progress/step").unwrap(), 99);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
