//! The encoder–decoder mask generator (paper Section 3.1, Fig. 4).

use ganopc_nn::layers::{
    BatchNorm2d, Conv2d, ConvTranspose2d, LeakyRelu, Relu, Sequential, Sigmoid,
};
use ganopc_nn::{NnError, Tensor};
use ganopc_obs as obs;

/// The GAN-OPC generator.
///
/// An auto-encoder-style convolutional network (paper Fig. 4): the encoder
/// performs "hierarchical layout feature abstractions" with stride-2
/// convolutions down to a 4×4 bottleneck; the decoder mirrors it with
/// stride-2 transposed convolutions and ends in a sigmoid so output pixels
/// are mask transmissions in `[0, 1]`.
///
/// Input and output are `[N, 1, size, size]` tensors of pooled target
/// clips / generated masks.
///
/// ```
/// use ganopc_core::Generator;
/// use ganopc_nn::Tensor;
///
/// let mut g = Generator::new(32, 8, 42);
/// let masks = g.forward(&Tensor::zeros(&[2, 1, 32, 32]), false);
/// assert_eq!(masks.shape(), &[2, 1, 32, 32]);
/// assert!(masks.as_slice().iter().all(|&m| (0.0..=1.0).contains(&m)));
/// ```
pub struct Generator {
    net: Sequential,
    size: usize,
    base_channels: usize,
}

impl Generator {
    /// Maximum channel width of the bottleneck.
    const MAX_CHANNELS: usize = 128;

    /// Builds a generator for `size × size` inputs (power of two, ≥ 8) with
    /// `base_channels` features after the first convolution, seeded for
    /// reproducible initialization.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is a power of two ≥ 8 and `base_channels > 0`.
    pub fn new(size: usize, base_channels: usize, seed: u64) -> Self {
        assert!(
            size >= 8 && size.is_power_of_two(),
            "generator size {size} must be a power of two >= 8"
        );
        assert!(base_channels > 0, "base_channels must be positive");
        let stages = (size.trailing_zeros() - 2) as usize; // bottleneck at 4×4
        let mut net = Sequential::new();
        // Encoder.
        let mut ch = 1usize;
        let mut next = base_channels;
        for s in 0..stages {
            net.push(Conv2d::new(ch, next, 4, 2, 1, seed.wrapping_add(s as u64 * 31 + 1)));
            net.push(BatchNorm2d::new(next));
            net.push(LeakyRelu::new(0.2));
            ch = next;
            next = (next * 2).min(Self::MAX_CHANNELS);
        }
        // Decoder.
        for s in 0..stages {
            let out = if s + 1 == stages { 1 } else { (ch / 2).max(base_channels / 2).max(1) };
            net.push(ConvTranspose2d::new(
                ch,
                out,
                4,
                2,
                1,
                seed.wrapping_add(1000 + s as u64 * 17),
            ));
            if s + 1 == stages {
                net.push(Sigmoid::new());
            } else {
                net.push(BatchNorm2d::new(out));
                net.push(Relu::new());
            }
            ch = out;
        }
        Generator { net, size, base_channels }
    }

    /// Input/output spatial size.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Channel width after the first encoder stage.
    #[inline]
    pub fn base_channels(&self) -> usize {
        self.base_channels
    }

    /// Generates masks for a batch of targets `[N, 1, size, size]`.
    ///
    /// # Panics
    ///
    /// Panics when the spatial size disagrees with the generator.
    pub fn forward(&mut self, targets: &Tensor, train: bool) -> Tensor {
        let (_, c, h, w) = targets.dims4();
        assert_eq!((c, h, w), (1, self.size, self.size), "generator input shape mismatch");
        self.net.forward(targets, train)
    }

    /// Allocation-free counterpart of [`Generator::forward`]: writes the
    /// generated masks into `out`, reusing its storage and the network's
    /// persistent activation tape.
    ///
    /// # Panics
    ///
    /// Panics when the spatial size disagrees with the generator.
    // lint: hot-path
    pub fn forward_into(&mut self, targets: &Tensor, out: &mut Tensor, train: bool) {
        let (_, c, h, w) = targets.dims4();
        assert_eq!((c, h, w), (1, self.size, self.size), "generator input shape mismatch");
        self.net.forward_into(targets, out, train);
    }

    /// Batched no-grad inference fast path: generates masks for a batch of
    /// targets in evaluation mode, writing into `out`. After a warmup call
    /// at a given batch shape this performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics when the spatial size disagrees with the generator.
    // lint: hot-path
    pub fn infer_into(&mut self, targets: &Tensor, out: &mut Tensor) {
        let _sp = obs::span(obs::Span::Infer);
        obs::counter_add(obs::Counter::InferBatches, 1);
        self.forward_into(targets, out, false);
    }

    /// Back-propagates a gradient with respect to the generated masks,
    /// accumulating parameter gradients (Algorithm 1 line 9 / Algorithm 2
    /// line 8). Returns the gradient with respect to the input targets.
    pub fn backward(&mut self, grad_masks: &Tensor) -> Tensor {
        self.net.backward(grad_masks)
    }

    /// Backward pass that discards the input gradient — the generator is
    /// the first network in the chain, so ∂L/∂Z_t is never consumed and the
    /// first layer can skip computing it entirely.
    pub fn backward_discard(&mut self, grad_masks: &Tensor) {
        self.net.backward_discard(grad_masks);
    }

    /// Access to the underlying network (optimizers, parameter I/O).
    pub fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.net.zero_grads();
    }

    /// Snapshot of all weights.
    pub fn export_params(&mut self) -> Vec<Tensor> {
        self.net.export_params()
    }

    /// Writes a weight snapshot into `out`, reusing its allocations.
    pub fn export_params_into(&mut self, out: &mut Vec<Tensor>) {
        self.net.export_params_into(out);
    }

    /// Restores a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LoadMismatch`] on layout disagreement.
    pub fn import_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        self.net.import_params(params)
    }

    /// Saves all weights (including batch-norm running statistics) to a
    /// checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save<P: AsRef<std::path::Path>>(&mut self, path: P) -> Result<(), crate::GanOpcError> {
        let snapshot = self.export_params();
        ganopc_nn::checkpoint::save(path, &snapshot)?;
        Ok(())
    }

    /// Loads weights from a checkpoint file produced by [`Generator::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O/format failures and layout mismatches.
    pub fn load<P: AsRef<std::path::Path>>(&mut self, path: P) -> Result<(), crate::GanOpcError> {
        let snapshot = ganopc_nn::checkpoint::load(path)?;
        self.import_params(&snapshot)?;
        Ok(())
    }

    /// Architecture summary (Fig. 3/4 reproduction helper).
    pub fn summary(&mut self) -> String {
        format!("Generator (input {0}x{0}):\n{1}", self.size, self.net.summary())
    }
}

impl std::fmt::Debug for Generator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Generator")
            .field("size", &self.size)
            .field("base_channels", &self.base_channels)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_mask_shaped_and_bounded() {
        let mut g = Generator::new(16, 4, 1);
        let x = ganopc_nn::init::uniform(&[3, 1, 16, 16], 0.0, 1.0, 2);
        let y = g.forward(&x, true);
        assert_eq!(y.shape(), &[3, 1, 16, 16]);
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut g = Generator::new(16, 4, 1);
        let x = ganopc_nn::init::uniform(&[1, 1, 16, 16], 0.0, 1.0, 3);
        let y = g.forward(&x, true);
        let gin = g.backward(&Tensor::filled(y.shape(), 1.0));
        assert_eq!(gin.shape(), x.shape());
        let mut total = 0usize;
        g.net_mut().visit_params(&mut |p| {
            if p.grad.max_abs() > 0.0 {
                total += 1;
            }
        });
        assert!(total > 0, "no parameter received gradient");
    }

    #[test]
    fn deeper_for_larger_inputs() {
        let mut small = Generator::new(16, 8, 0);
        let mut large = Generator::new(64, 8, 0);
        assert!(large.net_mut().len() > small.net_mut().len());
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = Generator::new(16, 4, 9);
        let mut b = Generator::new(16, 4, 9);
        let x = ganopc_nn::init::uniform(&[1, 1, 16, 16], 0.0, 1.0, 5);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn summary_mentions_both_halves() {
        let mut g = Generator::new(16, 4, 0);
        let s = g.summary();
        assert!(s.contains("Conv2d"), "{s}");
        assert!(s.contains("ConvTranspose2d"), "{s}");
        assert!(s.contains("Sigmoid"), "{s}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Generator::new(48, 8, 0);
    }
}
