//! The synthesized training library (paper Section 4).
//!
//! "We synthesize a training layout library with 4000 instances based on the
//! design specifications from existing 32 nm M1 layout topologies" — target
//! clips come from [`ganopc_geometry::synthesis::TrainingLibrary`]; their
//! ground-truth masks `M*` are produced by the ILT engine, exactly as the
//! paper obtains its references.

use crate::GanOpcError;
use ganopc_geometry::synthesis::TrainingLibrary;
use ganopc_geometry::DesignRules;
use ganopc_ilt::{IltConfig, IltEngine};
use ganopc_litho::{Field, LithoModel, OpticalConfig};
use ganopc_nn::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A target/reference-mask training set at network resolution.
#[derive(Debug, Clone)]
pub struct OpcDataset {
    size: usize,
    targets: Vec<Field>,
    masks: Vec<Field>,
}

impl OpcDataset {
    /// Builds a dataset of `count` instances at `size × size` network
    /// resolution (each clip spans 2048 nm, matching the paper's frames).
    ///
    /// Reference masks are produced by running the ILT engine on each
    /// target; `ilt_config` controls how hard that reference optimization
    /// works (tests use [`IltConfig::fast`], experiments use
    /// [`IltConfig::mosaic`]).
    ///
    /// # Errors
    ///
    /// Propagates lithography/ILT failures; returns
    /// [`GanOpcError::Config`] for a zero count.
    pub fn synthesize(
        size: usize,
        count: usize,
        ilt_config: IltConfig,
        seed: u64,
    ) -> Result<Self, GanOpcError> {
        if count == 0 {
            return Err(GanOpcError::Config("dataset count must be positive".into()));
        }
        let mut opt = OpticalConfig::default_32nm(2048.0 / size as f64);
        // Keep dataset construction affordable: the reference quality is set
        // by the ILT iteration budget, not the kernel count.
        opt.num_kernels = opt.num_kernels.min(12);
        let model = LithoModel::new_cached(opt, size, size)?;
        let library = TrainingLibrary::generate(DesignRules::m1_32nm(), 2048, count, seed);
        let mut engine = IltEngine::new(model, ilt_config);
        let mut targets = Vec::with_capacity(count);
        let mut masks = Vec::with_capacity(count);
        for clip in &library {
            let target = clip.rasterize_raster(size, size).binarize(0.5);
            let reference = engine.optimize(&target)?;
            targets.push(target);
            masks.push(reference.mask_relaxed);
        }
        Ok(OpcDataset { size, targets, masks })
    }

    /// Wraps externally produced pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GanOpcError::Config`] when lists are empty, lengths differ,
    /// or shapes disagree with `size`.
    pub fn from_pairs(
        size: usize,
        targets: Vec<Field>,
        masks: Vec<Field>,
    ) -> Result<Self, GanOpcError> {
        if targets.is_empty() || targets.len() != masks.len() {
            return Err(GanOpcError::Config(format!(
                "need equal nonzero counts, got {} targets / {} masks",
                targets.len(),
                masks.len()
            )));
        }
        for f in targets.iter().chain(&masks) {
            if f.shape() != (size, size) {
                return Err(GanOpcError::Config(format!(
                    "field shape {:?} does not match dataset size {size}",
                    f.shape()
                )));
            }
        }
        Ok(OpcDataset { size, targets, masks })
    }

    /// Network resolution.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of instances.
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` when the dataset has no instances (never for valid
    /// datasets).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The target clips.
    #[inline]
    pub fn targets(&self) -> &[Field] {
        &self.targets
    }

    /// The reference masks.
    #[inline]
    pub fn masks(&self) -> &[Field] {
        &self.masks
    }

    /// Assembles instances `indices` into `[B, 1, size, size]` tensors
    /// `(targets, masks)` — one mini-batch (Algorithm 1 line 2).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or an empty index list.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        assert!(!indices.is_empty(), "empty mini-batch");
        let plane = self.size * self.size;
        let mut t = Vec::with_capacity(indices.len() * plane);
        let mut m = Vec::with_capacity(indices.len() * plane);
        for &i in indices {
            t.extend_from_slice(self.targets[i].as_slice());
            m.extend_from_slice(self.masks[i].as_slice());
        }
        let shape = [indices.len(), 1, self.size, self.size];
        (Tensor::from_vec(&shape, t), Tensor::from_vec(&shape, m))
    }

    /// Deterministically shuffled index order for one epoch.
    pub fn epoch_order(&self, seed: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> OpcDataset {
        OpcDataset::synthesize(32, 3, IltConfig::fast(), 11).unwrap()
    }

    #[test]
    fn synthesize_produces_pairs() {
        let ds = tiny();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.size(), 32);
        for (t, m) in ds.targets().iter().zip(ds.masks()) {
            assert_eq!(t.shape(), (32, 32));
            assert_eq!(m.shape(), (32, 32));
            // Targets are binary, masks are relaxed.
            assert!(t.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
            assert!(m.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = OpcDataset::synthesize(32, 2, IltConfig::fast(), 5).unwrap();
        let b = OpcDataset::synthesize(32, 2, IltConfig::fast(), 5).unwrap();
        assert_eq!(a.targets(), b.targets());
        assert_eq!(a.masks(), b.masks());
    }

    #[test]
    fn batch_assembly() {
        let ds = tiny();
        let (t, m) = ds.batch(&[0, 2]);
        assert_eq!(t.shape(), &[2, 1, 32, 32]);
        assert_eq!(m.shape(), &[2, 1, 32, 32]);
        assert_eq!(&t.as_slice()[..1024], ds.targets()[0].as_slice());
        assert_eq!(&m.as_slice()[1024..], ds.masks()[2].as_slice());
    }

    #[test]
    fn epoch_order_is_a_permutation() {
        let ds = tiny();
        let order = ds.epoch_order(1);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        assert_eq!(order, ds.epoch_order(1));
    }

    #[test]
    fn from_pairs_validates() {
        let f = Field::zeros(16, 16);
        assert!(OpcDataset::from_pairs(16, vec![f.clone()], vec![f.clone()]).is_ok());
        assert!(OpcDataset::from_pairs(16, vec![f.clone()], vec![]).is_err());
        assert!(OpcDataset::from_pairs(32, vec![f.clone()], vec![f]).is_err());
    }

    #[test]
    fn zero_count_rejected() {
        assert!(matches!(
            OpcDataset::synthesize(32, 0, IltConfig::fast(), 1),
            Err(GanOpcError::Config(_))
        ));
    }
}
