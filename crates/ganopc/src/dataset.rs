//! The synthesized training library (paper Section 4).
//!
//! "We synthesize a training layout library with 4000 instances based on the
//! design specifications from existing 32 nm M1 layout topologies" — target
//! clips come from [`ganopc_geometry::synthesis::TrainingLibrary`]; their
//! ground-truth masks `M*` are produced by the ILT engine, exactly as the
//! paper obtains its references.

use crate::GanOpcError;
use ganopc_geometry::synthesis::TrainingLibrary;
use ganopc_geometry::DesignRules;
use ganopc_ilt::{IltConfig, IltEngine};
use ganopc_litho::{Field, LithoModel, OpticalConfig};
use ganopc_nn::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A target/reference-mask training set at network resolution.
#[derive(Debug, Clone)]
pub struct OpcDataset {
    size: usize,
    targets: Vec<Field>,
    masks: Vec<Field>,
}

impl OpcDataset {
    /// Builds a dataset of `count` instances at `size × size` network
    /// resolution (each clip spans 2048 nm, matching the paper's frames).
    ///
    /// Reference masks are produced by running the ILT engine on each
    /// target; `ilt_config` controls how hard that reference optimization
    /// works (tests use [`IltConfig::fast`], experiments use
    /// [`IltConfig::mosaic`]).
    ///
    /// # Errors
    ///
    /// Propagates lithography/ILT failures; returns
    /// [`GanOpcError::Config`] for a zero count.
    pub fn synthesize(
        size: usize,
        count: usize,
        ilt_config: IltConfig,
        seed: u64,
    ) -> Result<Self, GanOpcError> {
        if count == 0 {
            return Err(GanOpcError::Config("dataset count must be positive".into()));
        }
        let mut opt = OpticalConfig::default_32nm(crate::flow::FRAME_NM / size as f64);
        // Keep dataset construction affordable: the reference quality is set
        // by the ILT iteration budget, not the kernel count.
        opt.num_kernels = opt.num_kernels.min(12);
        let model = LithoModel::new_cached(opt, size, size)?;
        let library = TrainingLibrary::generate(
            DesignRules::m1_32nm(),
            crate::flow::FRAME_NM as i64,
            count,
            seed,
        );
        let mut engine = IltEngine::new(model, ilt_config);
        let mut targets = Vec::with_capacity(count);
        let mut masks = Vec::with_capacity(count);
        for clip in &library {
            let target = clip.rasterize_raster(size, size).binarize(0.5);
            let reference = engine.optimize(&target)?;
            targets.push(target);
            masks.push(reference.mask_relaxed);
        }
        Ok(OpcDataset { size, targets, masks })
    }

    /// Wraps externally produced pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GanOpcError::Config`] when lists are empty, lengths differ,
    /// or shapes disagree with `size`.
    pub fn from_pairs(
        size: usize,
        targets: Vec<Field>,
        masks: Vec<Field>,
    ) -> Result<Self, GanOpcError> {
        if targets.is_empty() || targets.len() != masks.len() {
            return Err(GanOpcError::Config(format!(
                "need equal nonzero counts, got {} targets / {} masks",
                targets.len(),
                masks.len()
            )));
        }
        for f in targets.iter().chain(&masks) {
            if f.shape() != (size, size) {
                return Err(GanOpcError::Config(format!(
                    "field shape {:?} does not match dataset size {size}",
                    f.shape()
                )));
            }
        }
        Ok(OpcDataset { size, targets, masks })
    }

    /// Network resolution.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of instances.
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` when the dataset has no instances (never for valid
    /// datasets).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The target clips.
    #[inline]
    pub fn targets(&self) -> &[Field] {
        &self.targets
    }

    /// The reference masks.
    #[inline]
    pub fn masks(&self) -> &[Field] {
        &self.masks
    }

    /// Assembles instances `indices` into `[B, 1, size, size]` tensors
    /// `(targets, masks)` — one mini-batch (Algorithm 1 line 2).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or an empty index list.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        assert!(!indices.is_empty(), "empty mini-batch");
        let plane = self.size * self.size;
        let mut t = Vec::with_capacity(indices.len() * plane);
        let mut m = Vec::with_capacity(indices.len() * plane);
        for &i in indices {
            t.extend_from_slice(self.targets[i].as_slice());
            m.extend_from_slice(self.masks[i].as_slice());
        }
        let shape = [indices.len(), 1, self.size, self.size];
        (Tensor::from_vec(&shape, t), Tensor::from_vec(&shape, m))
    }

    /// Deterministically shuffled index order for one epoch.
    pub fn epoch_order(&self, seed: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        order
    }

    /// Starts the deterministic mini-batch stream used by training: epoch
    /// `e` is drawn in [`OpcDataset::epoch_order`]`(seed.wrapping_add(e))`
    /// order (matching [`EpochStream`]'s checkpointed position semantics).
    pub fn epoch_stream(&self, seed: u64) -> EpochStream {
        EpochStream::at_position(self, seed, 0, 0)
    }
}

/// The deterministic shuffle stream every trainer draws mini-batches from.
///
/// The stream is fully described by `(seed, epoch, cursor)`: epoch `e`
/// visits the dataset in `epoch_order(seed.wrapping_add(e))` order and
/// `cursor` counts the indices already consumed within it. That triple is
/// what training checkpoints persist; [`EpochStream::at_position`] rebuilds
/// the stream bit-identically, so a resumed trainer draws exactly the
/// batches an uninterrupted run would have drawn.
#[derive(Debug, Clone)]
pub struct EpochStream {
    seed: u64,
    epoch: u64,
    cursor: usize,
    order: Vec<usize>,
}

impl EpochStream {
    /// Reconstructs a stream at a saved `(seed, epoch, cursor)` position.
    ///
    /// # Panics
    ///
    /// Panics when `cursor` exceeds the dataset length.
    pub fn at_position(dataset: &OpcDataset, seed: u64, epoch: u64, cursor: usize) -> Self {
        assert!(cursor <= dataset.len(), "cursor {cursor} beyond dataset of {}", dataset.len());
        let order = dataset.epoch_order(seed.wrapping_add(epoch));
        EpochStream { seed, epoch, cursor, order }
    }

    /// The current `(epoch, cursor)` position (persist together with the
    /// seed to resume).
    pub fn position(&self) -> (u64, usize) {
        (self.epoch, self.cursor)
    }

    /// The stream's shuffle seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws the next `batch_size` instance indices, reshuffling at epoch
    /// boundaries (Algorithm 1 line 2).
    ///
    /// # Panics
    ///
    /// Panics when `batch_size` is zero or `dataset` does not match the
    /// stream (fewer instances than the saved cursor).
    pub fn next_batch(&mut self, dataset: &OpcDataset, batch_size: usize) -> Vec<usize> {
        assert!(batch_size > 0, "empty mini-batch");
        assert_eq!(self.order.len(), dataset.len(), "stream bound to another dataset");
        let mut indices = Vec::with_capacity(batch_size);
        while indices.len() < batch_size {
            if self.cursor == self.order.len() {
                self.epoch += 1;
                self.order = dataset.epoch_order(self.seed.wrapping_add(self.epoch));
                self.cursor = 0;
            }
            indices.push(self.order[self.cursor]);
            self.cursor += 1;
        }
        indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> OpcDataset {
        OpcDataset::synthesize(32, 3, IltConfig::fast(), 11).unwrap()
    }

    #[test]
    fn synthesize_produces_pairs() {
        let ds = tiny();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.size(), 32);
        for (t, m) in ds.targets().iter().zip(ds.masks()) {
            assert_eq!(t.shape(), (32, 32));
            assert_eq!(m.shape(), (32, 32));
            // Targets are binary, masks are relaxed.
            assert!(t.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
            assert!(m.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = OpcDataset::synthesize(32, 2, IltConfig::fast(), 5).unwrap();
        let b = OpcDataset::synthesize(32, 2, IltConfig::fast(), 5).unwrap();
        assert_eq!(a.targets(), b.targets());
        assert_eq!(a.masks(), b.masks());
    }

    #[test]
    fn batch_assembly() {
        let ds = tiny();
        let (t, m) = ds.batch(&[0, 2]);
        assert_eq!(t.shape(), &[2, 1, 32, 32]);
        assert_eq!(m.shape(), &[2, 1, 32, 32]);
        assert_eq!(&t.as_slice()[..1024], ds.targets()[0].as_slice());
        assert_eq!(&m.as_slice()[1024..], ds.masks()[2].as_slice());
    }

    #[test]
    fn epoch_order_is_a_permutation() {
        let ds = tiny();
        let order = ds.epoch_order(1);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        assert_eq!(order, ds.epoch_order(1));
    }

    #[test]
    fn epoch_stream_matches_manual_loop() {
        let ds = tiny();
        let mut stream = ds.epoch_stream(7);
        // The reference semantics the original training loops implemented.
        let mut order = ds.epoch_order(7);
        let (mut cursor, mut epoch) = (0usize, 0u64);
        for _ in 0..5 {
            let batch = stream.next_batch(&ds, 2);
            let mut expect = Vec::new();
            while expect.len() < 2 {
                if cursor == order.len() {
                    epoch += 1;
                    order = ds.epoch_order(7u64.wrapping_add(epoch));
                    cursor = 0;
                }
                expect.push(order[cursor]);
                cursor += 1;
            }
            assert_eq!(batch, expect);
        }
        assert_eq!(stream.position(), (epoch, cursor));
    }

    #[test]
    fn epoch_stream_resumes_bit_identically() {
        let ds = tiny();
        let mut straight = ds.epoch_stream(3);
        let mut first = ds.epoch_stream(3);
        let mut drawn: Vec<Vec<usize>> = (0..4).map(|_| first.next_batch(&ds, 2)).collect();
        let (epoch, cursor) = first.position();
        let mut resumed = EpochStream::at_position(&ds, 3, epoch, cursor);
        drawn.extend((0..4).map(|_| resumed.next_batch(&ds, 2)));
        let reference: Vec<Vec<usize>> = (0..8).map(|_| straight.next_batch(&ds, 2)).collect();
        assert_eq!(drawn, reference);
    }

    #[test]
    #[should_panic(expected = "beyond dataset")]
    fn epoch_stream_rejects_bad_cursor() {
        let ds = tiny();
        let _ = EpochStream::at_position(&ds, 0, 0, ds.len() + 1);
    }

    #[test]
    fn from_pairs_validates() {
        let f = Field::zeros(16, 16);
        assert!(OpcDataset::from_pairs(16, vec![f.clone()], vec![f.clone()]).is_ok());
        assert!(OpcDataset::from_pairs(16, vec![f.clone()], vec![]).is_err());
        assert!(OpcDataset::from_pairs(32, vec![f.clone()], vec![f]).is_err());
    }

    #[test]
    fn zero_count_rejected() {
        assert!(matches!(
            OpcDataset::synthesize(32, 0, IltConfig::fast(), 1),
            Err(GanOpcError::Config(_))
        ));
    }
}
