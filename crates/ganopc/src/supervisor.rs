//! Self-healing training supervisor: divergence detection + rollback.
//!
//! GAN-OPC's adversarial objective is notoriously unstable — a bad basin
//! or an exploding update can waste the whole run. The supervisor wraps
//! [`GanTrainer`] with three detectors and one recovery policy:
//!
//! * **non-finite loss** — any NaN/∞ in a step's reported losses;
//! * **loss explosion** — the L2 loss jumping past `explosion_factor` ×
//!   its mean over the trailing `divergence_window` steps;
//! * **validation stall** — `stall_patience` consecutive validation
//!   checks without improving the best litho error (0 disables).
//!
//! On a trip, the trainer is rolled back to the newest loadable entry of
//! a bounded [`CheckpointRing`], the learning rates are backed off by the
//! cumulative `lr_backoff` factor, and the run continues — up to
//! `max_retries` times, after which the run fails with the typed
//! [`DivergenceError`]. Because [`GanTrainer::from_checkpoint`] rebuilds
//! optimizers at the *config* learning rates, the cumulative scale is
//! re-applied in full after every rollback; the checkpoint files
//! themselves always carry the original schedule, which is what makes
//! supervisor recovery bit-identical to a clean resume from the same
//! file (at `lr_backoff = 1.0`).
//!
//! Every trip, rollback, retry and tolerated checkpoint failure is
//! counted through `ganopc-obs` (`supervisor_*` counters) and lands in
//! `--metrics-json`.

use crate::ring::CheckpointRing;
use crate::train::StepStats;
use crate::validate::ValidationReport;
use crate::{GanOpcError, GanTrainer, OpcDataset};
use ganopc_obs as obs;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Recovery policy of a [`TrainSupervisor`].
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Rotated checkpoints kept in the ring (`--ckpt-ring`).
    pub ckpt_ring: usize,
    /// Steps between ring checkpoints.
    pub checkpoint_every: usize,
    /// Rollback+retry budget before failing typed (`--max-retries`).
    pub max_retries: u32,
    /// Trailing window (steps) for the explosion test
    /// (`--divergence-window`).
    pub divergence_window: usize,
    /// Trip when the L2 loss exceeds this multiple of the window mean.
    pub explosion_factor: f64,
    /// Learning-rate multiplier applied per retry (1.0 = no backoff).
    pub lr_backoff: f32,
    /// Consecutive non-improving validation checks before a stall trip;
    /// 0 disables the watchdog.
    pub stall_patience: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            ckpt_ring: 3,
            checkpoint_every: 25,
            max_retries: 2,
            divergence_window: 20,
            explosion_factor: 4.0,
            lr_backoff: 0.5,
            stall_patience: 0,
        }
    }
}

impl SupervisorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.ckpt_ring == 0 {
            return Err("ckpt_ring must be at least 1".into());
        }
        if self.checkpoint_every == 0 {
            return Err("checkpoint_every must be positive".into());
        }
        if self.divergence_window < 2 {
            return Err("divergence_window must be at least 2".into());
        }
        if !self.explosion_factor.is_finite() || self.explosion_factor <= 1.0 {
            return Err("explosion_factor must be finite and exceed 1".into());
        }
        if !self.lr_backoff.is_finite() || self.lr_backoff <= 0.0 || self.lr_backoff > 1.0 {
            return Err("lr_backoff must lie in (0, 1]".into());
        }
        Ok(())
    }
}

/// What tripped the divergence monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DivergenceReason {
    /// A reported loss was NaN or ±∞.
    NonFiniteLoss,
    /// The L2 loss exceeded `explosion_factor` × its window mean.
    LossExplosion {
        /// Observed loss / window mean at the trip.
        ratio: f64,
    },
    /// The validation watchdog saw no improvement for too long.
    ValidationStall {
        /// Consecutive non-improving checks at the trip.
        checks: usize,
    },
}

impl fmt::Display for DivergenceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceReason::NonFiniteLoss => write!(f, "non-finite loss"),
            DivergenceReason::LossExplosion { ratio } => {
                write!(f, "loss explosion ({ratio:.2}x the window mean)")
            }
            DivergenceReason::ValidationStall { checks } => {
                write!(f, "validation stalled for {checks} checks")
            }
        }
    }
}

/// A training run that diverged past its recovery budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceError {
    /// Step at which the final (unrecoverable) trip happened.
    pub step: usize,
    /// Recovery attempts consumed before giving up.
    pub retries: u32,
    /// What the final trip detected.
    pub reason: DivergenceReason,
}

impl fmt::Display for DivergenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "training diverged at step {} ({}) after {} recovery attempt(s)",
            self.step, self.reason, self.retries
        )
    }
}

impl Error for DivergenceError {}

/// Sliding-window divergence detector over per-step [`StepStats`].
#[derive(Debug)]
pub struct DivergenceMonitor {
    window: usize,
    explosion_factor: f64,
    history: VecDeque<f64>,
}

impl DivergenceMonitor {
    /// A monitor with the given trailing window and explosion threshold.
    pub fn new(window: usize, explosion_factor: f64) -> Self {
        let window = window.max(2);
        DivergenceMonitor {
            window,
            explosion_factor,
            // ALLOC: bounded detector state, sized once at construction.
            history: VecDeque::with_capacity(window),
        }
    }

    /// Feeds one step's stats; `Some` means the run should roll back.
    /// The explosion test only arms once a full window of healthy steps
    /// has been seen, so warm-up noise cannot trip it.
    pub fn observe(&mut self, stats: &StepStats) -> Option<DivergenceReason> {
        let losses = [stats.adversarial_loss, stats.l2_loss, stats.discriminator_loss];
        if losses.iter().any(|l| !l.is_finite()) {
            return Some(DivergenceReason::NonFiniteLoss);
        }
        if self.history.len() == self.window {
            let mean = self.history.iter().sum::<f64>() / self.window as f64;
            if mean > 0.0 && stats.l2_loss > self.explosion_factor * mean {
                return Some(DivergenceReason::LossExplosion { ratio: stats.l2_loss / mean });
            }
            self.history.pop_front();
        }
        self.history.push_back(stats.l2_loss);
        None
    }

    /// Forgets all history (called after a rollback: the restored
    /// trainer's losses belong to a different timeline).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

/// The self-healing wrapper around [`GanTrainer`]; see the module docs
/// for the detection and recovery semantics.
#[derive(Debug)]
pub struct TrainSupervisor {
    config: SupervisorConfig,
    ring: CheckpointRing,
    monitor: DivergenceMonitor,
    lr_scale: f32,
    retries_used: u32,
}

impl TrainSupervisor {
    /// Creates a supervisor whose checkpoint ring lives in `ring_dir`
    /// (created, swept of stale temporaries, and re-indexed if it holds
    /// entries from a previous process).
    ///
    /// # Errors
    ///
    /// Fails on an invalid `config` or an unusable ring directory.
    pub fn new<P: AsRef<Path>>(ring_dir: P, config: SupervisorConfig) -> Result<Self, GanOpcError> {
        config.validate().map_err(GanOpcError::Config)?;
        let ring = CheckpointRing::open(ring_dir, config.ckpt_ring)?;
        let monitor = DivergenceMonitor::new(config.divergence_window, config.explosion_factor);
        Ok(TrainSupervisor { config, ring, monitor, lr_scale: 1.0, retries_used: 0 })
    }

    /// The checkpoint ring (e.g. to locate `best.ckpt`).
    pub fn ring(&self) -> &CheckpointRing {
        &self.ring
    }

    /// Recovery attempts consumed so far.
    pub fn retries_used(&self) -> u32 {
        self.retries_used
    }

    /// Cumulative learning-rate scale currently applied to the trainer.
    pub fn lr_scale(&self) -> f32 {
        self.lr_scale
    }

    /// Runs `steps` further supervised training steps, rolling back and
    /// retrying on divergence. Returns the per-step stats of the
    /// surviving timeline (rolled-back steps are dropped).
    ///
    /// # Errors
    ///
    /// [`GanOpcError::Divergence`] once the retry budget is exhausted (or
    /// no ring entry is loadable); checkpoint errors from a rollback
    /// restore.
    pub fn run(
        &mut self,
        trainer: &mut GanTrainer,
        dataset: &OpcDataset,
        steps: usize,
    ) -> Result<Vec<StepStats>, GanOpcError> {
        let target = trainer.step() + steps;
        let mut stats: Vec<StepStats> = Vec::with_capacity(steps);
        // Seed the ring with the starting state so even a first-step trip
        // has a rollback point.
        self.checkpoint(trainer);
        while trainer.step() < target {
            let step_stats = trainer.train_for(dataset, 1);
            let Some(&s) = step_stats.first() else {
                break;
            };
            if let Some(reason) = self.monitor.observe(&s) {
                self.handle_trip(trainer, s.step, reason)?;
                let resumed = trainer.step();
                stats.retain(|st| st.step <= resumed);
                continue;
            }
            stats.push(s);
            if s.step % self.config.checkpoint_every == 0 {
                self.checkpoint(trainer);
            }
        }
        Ok(stats)
    }

    /// Like [`TrainSupervisor::run`] with periodic hold-out validation:
    /// every `check_every` steps the generator is scored on `validation`;
    /// improvements are persisted to the ring's rotation-exempt
    /// `best.ckpt`, and `stall_patience` consecutive non-improving checks
    /// trip the watchdog (rollback + LR backoff, same budget as the loss
    /// detectors). Returns the surviving stats and the best report.
    ///
    /// # Errors
    ///
    /// As [`TrainSupervisor::run`], plus validation failures.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_validation(
        &mut self,
        trainer: &mut GanTrainer,
        dataset: &OpcDataset,
        validation: &OpcDataset,
        model: &ganopc_litho::LithoModel,
        check_every: usize,
        steps: usize,
    ) -> Result<(Vec<StepStats>, ValidationReport), GanOpcError> {
        let check_every = check_every.max(1);
        let target = trainer.step() + steps;
        let mut stats: Vec<StepStats> = Vec::with_capacity(steps);
        let mut best: Option<ValidationReport> = None;
        let mut stalled_checks = 0usize;
        self.checkpoint(trainer);
        while trainer.step() < target {
            let step_stats = trainer.train_for(dataset, 1);
            let Some(&s) = step_stats.first() else {
                break;
            };
            if let Some(reason) = self.monitor.observe(&s) {
                self.handle_trip(trainer, s.step, reason)?;
                let resumed = trainer.step();
                stats.retain(|st| st.step <= resumed);
                continue;
            }
            stats.push(s);
            if s.step % self.config.checkpoint_every == 0 {
                self.checkpoint(trainer);
            }
            if s.step % check_every == 0 || trainer.step() == target {
                let report = crate::validate::evaluate_generator(
                    trainer.generator_mut(),
                    model,
                    validation,
                )?;
                let improved = best.map(|b| report.litho_error < b.litho_error).unwrap_or(true);
                if improved {
                    best = Some(report);
                    stalled_checks = 0;
                    if self.ring.save_best(&trainer.to_checkpoint()).is_err() {
                        obs::counter_add(obs::Counter::SupervisorCkptFailures, 1);
                    }
                } else {
                    stalled_checks += 1;
                    if self.config.stall_patience > 0
                        && stalled_checks >= self.config.stall_patience
                    {
                        self.handle_trip(
                            trainer,
                            s.step,
                            DivergenceReason::ValidationStall { checks: stalled_checks },
                        )?;
                        stalled_checks = 0;
                        let resumed = trainer.step();
                        stats.retain(|st| st.step <= resumed);
                    }
                }
            }
        }
        let report = match best {
            Some(r) => r,
            // Zero-length budget: score the current weights so the caller
            // always gets a report.
            None => {
                crate::validate::evaluate_generator(trainer.generator_mut(), model, validation)?
            }
        };
        Ok((stats, report))
    }

    /// Best-effort ring save: a failed checkpoint (a full disk, say) must
    /// not kill a healthy run — the failure is counted and the previous
    /// rollback points stay valid.
    fn checkpoint(&mut self, trainer: &mut GanTrainer) {
        let step = trainer.step();
        if self.ring.push(step, &trainer.to_checkpoint()).is_err() {
            obs::counter_add(obs::Counter::SupervisorCkptFailures, 1);
        }
    }

    /// Rollback + LR backoff, or the typed failure once the budget is
    /// spent (or no ring entry loads).
    fn handle_trip(
        &mut self,
        trainer: &mut GanTrainer,
        step: usize,
        reason: DivergenceReason,
    ) -> Result<(), GanOpcError> {
        obs::counter_add(obs::Counter::SupervisorTrips, 1);
        self.monitor.reset();
        if self.retries_used >= self.config.max_retries {
            return Err(GanOpcError::Divergence(DivergenceError {
                step,
                retries: self.retries_used,
                reason,
            }));
        }
        let Some((_, ck)) = self.ring.load_latest_good() else {
            return Err(GanOpcError::Divergence(DivergenceError {
                step,
                retries: self.retries_used,
                reason,
            }));
        };
        *trainer = GanTrainer::from_checkpoint(ck)?;
        obs::counter_add(obs::Counter::SupervisorRollbacks, 1);
        self.retries_used += 1;
        obs::counter_add(obs::Counter::SupervisorRetries, 1);
        // Cumulative backoff: from_checkpoint rebuilt the optimizers at
        // the config rates, so the whole scale is re-applied, not just
        // this retry's factor.
        self.lr_scale *= self.config.lr_backoff;
        trainer.scale_learning_rates(self.lr_scale);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Discriminator, Generator, TrainConfig};
    use ganopc_ilt::IltConfig;

    fn synth_stats(step: usize, l2: f64) -> StepStats {
        StepStats {
            step,
            adversarial_loss: 0.5,
            l2_loss: l2,
            discriminator_loss: 0.7,
            d_real: 0.6,
            d_fake: 0.4,
        }
    }

    #[test]
    fn monitor_trips_on_non_finite_loss() {
        let mut m = DivergenceMonitor::new(4, 4.0);
        assert_eq!(m.observe(&synth_stats(1, 1.0)), None);
        let mut bad = synth_stats(2, 1.0);
        bad.adversarial_loss = f64::NAN;
        assert_eq!(m.observe(&bad), Some(DivergenceReason::NonFiniteLoss));
        let mut bad = synth_stats(3, f64::INFINITY);
        bad.l2_loss = f64::INFINITY;
        assert_eq!(m.observe(&bad), Some(DivergenceReason::NonFiniteLoss));
    }

    #[test]
    fn monitor_trips_on_explosion_only_after_warmup() {
        let mut m = DivergenceMonitor::new(3, 4.0);
        // A huge value during warm-up must not trip (no baseline yet).
        assert_eq!(m.observe(&synth_stats(1, 100.0)), None);
        m.reset();
        for step in 1..=3 {
            assert_eq!(m.observe(&synth_stats(step, 1.0)), None);
        }
        assert_eq!(m.observe(&synth_stats(4, 1.2)), None, "mild drift tolerated");
        match m.observe(&synth_stats(5, 10.0)) {
            Some(DivergenceReason::LossExplosion { ratio }) => assert!(ratio > 4.0),
            other => panic!("expected explosion trip, got {other:?}"),
        }
    }

    fn tiny_setup(seed: u64) -> (GanTrainer, OpcDataset) {
        let ds = OpcDataset::synthesize(32, 3, IltConfig::fast(), 3).unwrap();
        let g = Generator::new(32, 4, seed);
        let d = Discriminator::new(32, 4, seed ^ 1);
        (GanTrainer::new(g, d, TrainConfig::fast()), ds)
    }

    fn ring_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ganopc-supervisor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn healthy_supervised_run_is_bit_identical_to_plain_training() {
        let dir = ring_dir("identity");
        let (mut supervised, ds) = tiny_setup(11);
        let (mut plain, _) = tiny_setup(11);
        let cfg = SupervisorConfig { checkpoint_every: 2, ..SupervisorConfig::default() };
        let mut sup = TrainSupervisor::new(&dir, cfg).unwrap();
        let stats = sup.run(&mut supervised, &ds, 6).unwrap();
        let plain_stats = plain.train_for(&ds, 6);
        assert_eq!(stats, plain_stats, "supervision changed the training trajectory");
        assert_eq!(sup.retries_used(), 0);
        assert_eq!(
            supervised.to_checkpoint().to_bytes(),
            plain.to_checkpoint().to_bytes(),
            "supervised state differs from plain training"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_budget_fails_typed() {
        let dir = ring_dir("budget");
        let (mut trainer, ds) = tiny_setup(13);
        // A hair-trigger explosion threshold: adversarial training loss
        // noise exceeds 0.1% of the window mean almost immediately.
        let cfg = SupervisorConfig {
            divergence_window: 2,
            explosion_factor: 1.001,
            max_retries: 0,
            ..SupervisorConfig::default()
        };
        let mut sup = TrainSupervisor::new(&dir, cfg).unwrap();
        match sup.run(&mut trainer, &ds, 40) {
            Err(GanOpcError::Divergence(e)) => {
                assert_eq!(e.retries, 0);
                assert!(matches!(e.reason, DivergenceReason::LossExplosion { .. }));
            }
            other => panic!("expected a typed divergence failure, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_validation_rejects_bad_fields() {
        assert!(SupervisorConfig::default().validate().is_ok());
        let bad = SupervisorConfig { ckpt_ring: 0, ..SupervisorConfig::default() };
        assert!(bad.validate().is_err());
        let bad = SupervisorConfig { lr_backoff: 0.0, ..SupervisorConfig::default() };
        assert!(bad.validate().is_err());
        let bad = SupervisorConfig { explosion_factor: 1.0, ..SupervisorConfig::default() };
        assert!(bad.validate().is_err());
    }
}
