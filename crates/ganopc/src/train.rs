//! Algorithm 1 — GAN-OPC adversarial training.
//!
//! Per mini-batch (paper Algorithm 1):
//!
//! ```text
//! M  ← G(Z_t; W_g)
//! l_g ← −log D(Z_t, M) + α‖M* − M‖²          (line 7)
//! l_d ← log D(Z_t, M) − log D(Z_t, M*)        (line 8, minimized)
//! ΔW_g ← ∂l_g/∂W_g ;  ΔW_d ← ∂l_d/∂W_d       (line 9)
//! W ← W − (λ/m)·ΔW                            (line 11)
//! ```
//!
//! `l_d` is minimized as the standard binary cross-entropy pair
//! `BCE(D(Z_t, M*), 1) + BCE(D(Z_t, M), 0)` (identical stationary points,
//! better-conditioned gradients); the generator term `−log D(Z_t, M)` is
//! `BCE(D(Z_t, M), 1)` exactly as in Eq. (7).

use crate::dataset::EpochStream;
use crate::validate::ValidationReport;
use crate::{Discriminator, GanOpcError, Generator, OpcDataset};
use ganopc_fault as fault;
use ganopc_nn::checkpoint::Checkpoint;
use ganopc_nn::loss::{bce_scalar_label_into, sum_squared_error_acc_into};
use ganopc_nn::optim::Sgd;
use ganopc_nn::Tensor;
use ganopc_obs as obs;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Hyper-parameters of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Total training steps (mini-batches).
    pub iterations: usize,
    /// Mini-batch size `m`.
    pub batch_size: usize,
    /// Generator learning rate λ_g.
    pub lr_generator: f32,
    /// Discriminator learning rate λ_d.
    pub lr_discriminator: f32,
    /// SGD momentum for both networks.
    pub momentum: f32,
    /// Weight α of the `‖M* − M‖²` term in the generator loss (line 7).
    /// Applied per pixel (the squared error is averaged over the batch and
    /// scaled by α).
    pub alpha: f32,
    /// Shuffling/initialization seed.
    pub seed: u64,
    /// Optional global gradient-norm clip applied to both networks before
    /// each optimizer step (GAN stabilization; `None` disables).
    pub clip_grad_norm: Option<f32>,
}

impl TrainConfig {
    /// A configuration sized for the scaled reproduction experiments.
    pub fn paper_scaled() -> Self {
        TrainConfig {
            iterations: 400,
            batch_size: 4,
            lr_generator: 0.02,
            lr_discriminator: 0.01,
            momentum: 0.5,
            alpha: 1.0,
            seed: 2018,
            clip_grad_norm: Some(10.0),
        }
    }

    /// A tiny configuration for unit tests.
    pub fn fast() -> Self {
        TrainConfig {
            iterations: 6,
            batch_size: 2,
            lr_generator: 0.02,
            lr_discriminator: 0.01,
            momentum: 0.0,
            alpha: 1.0,
            seed: 7,
            clip_grad_norm: Some(10.0),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch size must be positive".into());
        }
        if self.lr_generator <= 0.0 || self.lr_discriminator <= 0.0 {
            return Err("learning rates must be positive".into());
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err("momentum must lie in [0, 1)".into());
        }
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return Err("alpha must be nonnegative".into());
        }
        if let Some(c) = self.clip_grad_norm {
            if c.is_nan() || c <= 0.0 {
                return Err("clip_grad_norm must be positive".into());
            }
        }
        Ok(())
    }
}

impl TrainConfig {
    fn put_into(&self, ck: &mut Checkpoint) {
        ck.put_u64("config/iterations", self.iterations as u64);
        ck.put_u64("config/batch_size", self.batch_size as u64);
        ck.put_f64("config/lr_generator", self.lr_generator as f64);
        ck.put_f64("config/lr_discriminator", self.lr_discriminator as f64);
        ck.put_f64("config/momentum", self.momentum as f64);
        ck.put_f64("config/alpha", self.alpha as f64);
        ck.put_u64("config/seed", self.seed);
        if let Some(clip) = self.clip_grad_norm {
            ck.put_f64("config/clip_grad_norm", clip as f64);
        }
    }

    fn read_from(ck: &Checkpoint) -> Result<Self, GanOpcError> {
        let config = TrainConfig {
            iterations: ck.get_u64("config/iterations")? as usize,
            batch_size: ck.get_u64("config/batch_size")? as usize,
            lr_generator: ck.get_f64("config/lr_generator")? as f32,
            lr_discriminator: ck.get_f64("config/lr_discriminator")? as f32,
            momentum: ck.get_f64("config/momentum")? as f32,
            alpha: ck.get_f64("config/alpha")? as f32,
            seed: ck.get_u64("config/seed")?,
            clip_grad_norm: if ck.contains("config/clip_grad_norm") {
                Some(ck.get_f64("config/clip_grad_norm")? as f32)
            } else {
                None
            },
        };
        config.validate().map_err(GanOpcError::Config)?;
        Ok(config)
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::paper_scaled()
    }
}

/// Per-step training statistics (the Fig. 7 curves are built from
/// `l2_loss`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// Training step index.
    pub step: usize,
    /// Generator adversarial loss `−log D(Z_t, M)`.
    pub adversarial_loss: f64,
    /// Mean per-pixel squared error between `M` and `M*` — the y-axis of
    /// Fig. 7.
    pub l2_loss: f64,
    /// Discriminator loss.
    pub discriminator_loss: f64,
    /// Mean probability the discriminator assigns to real pairs.
    pub d_real: f64,
    /// Mean probability the discriminator assigns to generated pairs.
    pub d_fake: f64,
}

/// The full state captured at the best validation checkpoint: restoring
/// only the generator weights (the historical behaviour) leaves both
/// optimizers' momentum — and the discriminator — aimed at the *discarded*
/// final-step weights, so any continued training immediately takes steps
/// with stale velocity. Weights and optimizer state travel together.
struct BestSnapshot {
    report: ValidationReport,
    generator: Vec<Tensor>,
    discriminator: Vec<Tensor>,
    opt_g: Vec<Tensor>,
    opt_d: Vec<Tensor>,
}

/// Persistent per-step work buffers: generated masks, discriminator
/// probabilities and the two gradient tensors every [`GanTrainer::train_step`]
/// needs. Sized on the first step and reused, so steady-state training
/// performs no heap allocation in the step itself.
struct TrainScratch {
    masks: Tensor,
    probs: Tensor,
    grad_p: Tensor,
    grad_masks: Tensor,
}

impl TrainScratch {
    fn new() -> Self {
        TrainScratch {
            masks: Tensor::zeros(&[1]),
            probs: Tensor::zeros(&[1]),
            grad_p: Tensor::zeros(&[1]),
            grad_masks: Tensor::zeros(&[1]),
        }
    }
}

/// The Algorithm 1 trainer: owns both networks and their optimizers.
///
/// The trainer is fully resumable: [`GanTrainer::save_checkpoint`] persists
/// every piece of state a training run accumulates — both networks
/// (weights *and* batch-norm statistics), both optimizers' velocity, the
/// step counter, the shuffle-stream position, and the best-validation
/// snapshot — and [`GanTrainer::resume`] reconstructs a trainer that
/// continues bit-identically to an uninterrupted run.
pub struct GanTrainer {
    generator: Generator,
    discriminator: Discriminator,
    opt_g: Sgd,
    opt_d: Sgd,
    config: TrainConfig,
    step: usize,
    /// Shuffle-stream position: epoch index and intra-epoch cursor.
    epoch: u64,
    cursor: usize,
    best: Option<BestSnapshot>,
    scratch: TrainScratch,
}

/// Format tag stored under `meta/kind` in trainer checkpoints.
const TRAINER_KIND: &[u8] = b"gan-opc/trainer";

impl GanTrainer {
    /// Creates a trainer from freshly initialized networks.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`TrainConfig::validate`] or the networks
    /// disagree on spatial size.
    pub fn new(generator: Generator, discriminator: Discriminator, config: TrainConfig) -> Self {
        // PANIC: documented above — misconfigured training is a programming
        // error at construction, not a runtime condition to recover from.
        config.validate().expect("invalid training configuration");
        assert_eq!(
            generator.size(),
            discriminator.size(),
            "generator and discriminator must share the clip size"
        );
        let opt_g = Sgd::new(config.lr_generator, config.momentum);
        let opt_d = Sgd::new(config.lr_discriminator, config.momentum);
        GanTrainer {
            generator,
            discriminator,
            opt_g,
            opt_d,
            config,
            step: 0,
            epoch: 0,
            cursor: 0,
            best: None,
            scratch: TrainScratch::new(),
        }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Steps completed so far (across saves/resumes).
    pub fn step(&self) -> usize {
        self.step
    }

    /// The best validation report seen so far, if validation ran.
    pub fn best_report(&self) -> Option<&ValidationReport> {
        self.best.as_ref().map(|b| &b.report)
    }

    /// Borrow of the generator (e.g. to export weights mid-training).
    pub fn generator_mut(&mut self) -> &mut Generator {
        &mut self.generator
    }

    /// Borrow of the discriminator.
    pub fn discriminator_mut(&mut self) -> &mut Discriminator {
        &mut self.discriminator
    }

    /// Consumes the trainer, returning the trained networks.
    pub fn into_networks(self) -> (Generator, Discriminator) {
        (self.generator, self.discriminator)
    }

    /// Runs one Algorithm 1 step on a mini-batch of `(Z_t, M*)`.
    ///
    /// Every intermediate (masks, probabilities, gradients) lives in the
    /// trainer's persistent scratch, the 1/m batch normalization is fused
    /// into the loss-gradient computation, and both networks run their
    /// backward passes on the discard path — so after the first step at a
    /// given batch shape this performs no heap allocation. The step runs
    /// two discriminator forwards (fake, real) rather than the naive
    /// three: the discriminator's fake-term backward replays the cached
    /// activations of the adversarial forward, which stay valid because
    /// the generator update in between touches only generator parameters.
    // lint: hot-path
    pub fn train_step(&mut self, targets: &Tensor, ref_masks: &Tensor) -> StepStats {
        // Phase spans (G-forward / D-pass / backward / optimizer) attribute
        // every code segment of the step; phases that run twice (both
        // network updates) simply record two samples per step. Lithography
        // does not appear here — GAN training is litho-free by design; the
        // litho spans cover pretraining and validation scoring instead.
        let _step_span = obs::span(obs::Span::TrainStep);
        obs::counter_add(obs::Counter::TrainSteps, 1);
        self.step += 1;
        let batch = targets.shape()[0] as f32;
        let TrainScratch { masks, probs, grad_p, grad_masks } = &mut self.scratch;

        // ---- Generator update: l_g = −log D(Z_t, M) + α‖M* − M‖² ----
        let g_span = obs::span(obs::Span::TrainGForward);
        self.generator.forward_into(targets, masks, true);
        drop(g_span);
        let d_span = obs::span(obs::Span::TrainDPass);
        self.discriminator.forward_pair_into(targets, masks, probs, true);
        let d_fake = mean_f64(probs);
        // 1/m is folded straight into the BCE gradient; the loss value is
        // reported unscaled.
        let adv_loss = bce_scalar_label_into(probs, 1.0, 1.0 / batch, grad_p);
        drop(d_span);
        // Route the adversarial gradient through D into the mask channel.
        let bwd_span = obs::span(obs::Span::TrainBackward);
        self.discriminator.zero_grads();
        self.discriminator.backward_pair_into(grad_p, grad_masks);
        // D's half of the fake term reuses this same forward: `probs` still
        // holds D(Z_t, M) (the generator update below only touches G
        // parameters), so the label-0 gradient is computed here and replayed
        // through the cached activations in the discriminator phase instead
        // of paying a third discriminator forward.
        let loss_fake = bce_scalar_label_into(probs, 0.0, 1.0 / batch, grad_p);
        // L2 pull toward the reference mask (Eq. (9)); α/pixels keeps the
        // weight resolution independent and 1/m matches the fused batch
        // scale above. The scaled gradient accumulates onto the adversarial
        // mask gradient in one pass.
        let pixels = (masks.len() as f32).max(1.0);
        let sse = sum_squared_error_acc_into(
            masks,
            ref_masks,
            self.config.alpha / pixels / batch,
            grad_masks,
        );
        let l2_loss = sse / pixels as f64;
        self.generator.zero_grads();
        // The generator is first in the chain: ∂l/∂Z_t is never consumed.
        self.generator.backward_discard(grad_masks);
        drop(bwd_span);
        let opt_span = obs::span(obs::Span::TrainOptimizer);
        if let Some(clip) = self.config.clip_grad_norm {
            self.generator.net_mut().clip_gradients(clip);
        }
        self.opt_g.step(self.generator.net_mut());
        drop(opt_span);

        // ---- Discriminator update: BCE(real,1) + BCE(fake,0) ----
        // The adversarial pass polluted D's gradients; clear them, then
        // replay the fake backward off the still-valid cached activations
        // (the generator is detached — only parameter gradients matter, so
        // the input gradient is discarded). The real forward afterwards
        // overwrites those caches, so order matters here.
        let bwd_span = obs::span(obs::Span::TrainBackward);
        self.discriminator.zero_grads();
        self.discriminator.backward_pair_discard(grad_p);
        drop(bwd_span);
        let d_span = obs::span(obs::Span::TrainDPass);
        self.discriminator.forward_pair_into(targets, ref_masks, probs, true);
        let d_real = mean_f64(probs);
        let loss_real = bce_scalar_label_into(probs, 1.0, 1.0 / batch, grad_p);
        drop(d_span);
        let bwd_span = obs::span(obs::Span::TrainBackward);
        self.discriminator.backward_pair_discard(grad_p);
        drop(bwd_span);
        let opt_span = obs::span(obs::Span::TrainOptimizer);
        if let Some(clip) = self.config.clip_grad_norm {
            self.discriminator.net_mut().clip_gradients(clip);
        }
        self.opt_d.step(self.discriminator.net_mut());
        self.discriminator.zero_grads();
        drop(opt_span);

        let mut stats = StepStats {
            step: self.step,
            adversarial_loss: adv_loss,
            l2_loss,
            discriminator_loss: loss_real + loss_fake,
            d_real,
            d_fake,
        };
        // Fault sink: armed builds may poison the *reported* losses with
        // NaN/∞ at a chosen step to exercise the divergence monitor. Only
        // the report is touched — network/optimizer state stays finite
        // (the debug-build finite guards in `nn` would otherwise fire),
        // mirroring a blow-up detected at loss readout.
        if let Some(poison) = fault::numeric_fault(fault::Domain::Train, self.step as u64) {
            obs::counter_add(obs::Counter::FaultsInjected, 1);
            stats.adversarial_loss = poison.as_f64();
            stats.l2_loss = poison.as_f64();
        }
        stats
    }

    /// Scales both optimizers' learning rates by `factor` (supervisor LR
    /// backoff). The *config* rates are deliberately untouched:
    /// checkpoints persist the original schedule, so a rollback via
    /// [`GanTrainer::from_checkpoint`] reconstructs the un-backed-off
    /// optimizers and the supervisor re-applies its cumulative factor.
    pub fn scale_learning_rates(&mut self, factor: f32) {
        self.opt_g.set_learning_rate(self.opt_g.learning_rate() * factor);
        self.opt_d.set_learning_rate(self.opt_d.learning_rate() * factor);
    }

    /// Current `(generator, discriminator)` optimizer learning rates.
    pub fn learning_rates(&self) -> (f32, f32) {
        (self.opt_g.learning_rate(), self.opt_d.learning_rate())
    }

    /// Trains with periodic hold-out validation, keeping the generator
    /// weights from the best validation checkpoint (early-stopping style).
    ///
    /// Every `check_every` steps the generator is scored on `validation`
    /// with [`crate::validate::evaluate_generator`]; after the full budget
    /// the weights of the best checkpoint are restored. Returns the
    /// per-step statistics and the best validation report.
    ///
    /// # Errors
    ///
    /// Propagates validation failures (resolution mismatches).
    pub fn train_with_validation(
        &mut self,
        dataset: &OpcDataset,
        validation: &OpcDataset,
        model: &ganopc_litho::LithoModel,
        check_every: usize,
    ) -> Result<(Vec<StepStats>, ValidationReport), GanOpcError> {
        let check_every = check_every.max(1);
        let remaining = self.config.iterations.saturating_sub(self.step);
        let mut stats = Vec::with_capacity(remaining);
        let mut stream =
            EpochStream::at_position(dataset, self.config.seed, self.epoch, self.cursor);
        for _ in 0..remaining {
            let indices = stream.next_batch(dataset, self.config.batch_size);
            let (targets, masks) = dataset.batch(&indices);
            stats.push(self.train_step(&targets, &masks));
            (self.epoch, self.cursor) = stream.position();
            if self.step.is_multiple_of(check_every) || self.step == self.config.iterations {
                self.validation_checkpoint(model, validation)?;
            }
        }
        if self.best.is_none() {
            // Resumed past the end (or a zero-length budget): score the
            // current weights so there is always a best checkpoint.
            self.validation_checkpoint(model, validation)?;
        }
        // Restore the best checkpoint as one unit: generator *and*
        // discriminator weights *and* both optimizers' velocity, so
        // continued training does not take steps with momentum aimed at
        // the discarded final-step weights.
        // PANIC: the is_none() branch above just recorded a checkpoint.
        let best = self.best.as_ref().expect("validation checkpoint recorded above");
        let report = best.report;
        self.generator.import_params(&best.generator)?;
        self.discriminator.import_params(&best.discriminator)?;
        self.opt_g.import_state(best.opt_g.clone());
        self.opt_d.import_state(best.opt_d.clone());
        Ok((stats, report))
    }

    /// Scores the generator on the validation set and snapshots the full
    /// training state if this is the best checkpoint so far.
    fn validation_checkpoint(
        &mut self,
        model: &ganopc_litho::LithoModel,
        validation: &OpcDataset,
    ) -> Result<(), GanOpcError> {
        let _sp = obs::span(obs::Span::TrainValidation);
        let report = crate::validate::evaluate_generator(&mut self.generator, model, validation)?;
        let better =
            self.best.as_ref().map(|b| report.litho_error < b.report.litho_error).unwrap_or(true);
        if better {
            // Overwrite the previous snapshot's buffers in place instead of
            // cloning four full parameter/optimizer sets per improvement.
            match &mut self.best {
                Some(b) => {
                    b.report = report;
                    self.generator.export_params_into(&mut b.generator);
                    self.discriminator.export_params_into(&mut b.discriminator);
                    self.opt_g.export_state_into(&mut b.opt_g);
                    self.opt_d.export_state_into(&mut b.opt_d);
                }
                None => {
                    self.best = Some(BestSnapshot {
                        report,
                        generator: self.generator.export_params(),
                        discriminator: self.discriminator.export_params(),
                        opt_g: self.opt_g.export_state(),
                        opt_d: self.opt_d.export_state(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Trains until `config.iterations` total steps have run (a fresh
    /// trainer runs all of them; a resumed one only the remainder),
    /// returning the per-step statistics (the Fig. 7 curve).
    pub fn train(&mut self, dataset: &OpcDataset) -> Vec<StepStats> {
        let remaining = self.config.iterations.saturating_sub(self.step);
        self.train_for(dataset, remaining)
    }

    /// Runs exactly `steps` further training steps on the dataset's
    /// deterministic shuffle stream.
    ///
    /// Interrupting a run after any step, checkpointing, resuming, and
    /// calling `train_for` with the remainder reproduces an uninterrupted
    /// run bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics when the dataset is smaller than the saved shuffle cursor
    /// (i.e. it is not the dataset this trainer was training on).
    pub fn train_for(&mut self, dataset: &OpcDataset, steps: usize) -> Vec<StepStats> {
        let mut stream =
            EpochStream::at_position(dataset, self.config.seed, self.epoch, self.cursor);
        let mut stats = Vec::with_capacity(steps);
        for _ in 0..steps {
            let indices = stream.next_batch(dataset, self.config.batch_size);
            let (targets, masks) = dataset.batch(&indices);
            stats.push(self.train_step(&targets, &masks));
            (self.epoch, self.cursor) = stream.position();
        }
        stats
    }

    /// Serializes the complete training state into a v2 [`Checkpoint`].
    pub fn to_checkpoint(&mut self) -> Checkpoint {
        let mut ck = Checkpoint::new();
        ck.put_bytes("meta/kind", TRAINER_KIND.to_vec());
        self.config.put_into(&mut ck);
        ck.put_u64("arch/size", self.generator.size() as u64);
        ck.put_u64("arch/g_base", self.generator.base_channels() as u64);
        ck.put_u64("arch/d_base", self.discriminator.base_channels() as u64);
        ck.put_u64("arch/d_pair", self.discriminator.takes_pairs() as u64);
        ck.put_tensors("g/params", &self.generator.export_params());
        ck.put_tensors("d/params", &self.discriminator.export_params());
        ck.put_tensors("opt_g/velocity", &self.opt_g.export_state());
        ck.put_tensors("opt_d/velocity", &self.opt_d.export_state());
        ck.put_u64("progress/step", self.step as u64);
        ck.put_u64("progress/epoch", self.epoch);
        ck.put_u64("progress/cursor", self.cursor as u64);
        if let Some(best) = &self.best {
            best.report.put_into(&mut ck, "best/report");
            ck.put_tensors("best/g_params", &best.generator);
            ck.put_tensors("best/d_params", &best.discriminator);
            ck.put_tensors("best/opt_g", &best.opt_g);
            ck.put_tensors("best/opt_d", &best.opt_d);
        }
        ck
    }

    /// Reconstructs a trainer from a checkpoint produced by
    /// [`GanTrainer::to_checkpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`GanOpcError::Checkpoint`] for missing/mistyped sections
    /// and [`GanOpcError::Config`] for inconsistent architecture or
    /// optimizer state.
    pub fn from_checkpoint(mut ck: Checkpoint) -> Result<Self, GanOpcError> {
        match ck.get_bytes("meta/kind") {
            Ok(kind) if kind == TRAINER_KIND => {}
            Ok(kind) => {
                return Err(GanOpcError::Config(format!(
                    "checkpoint holds '{}', not a gan trainer state",
                    String::from_utf8_lossy(kind)
                )))
            }
            Err(e) => return Err(e.into()),
        }
        let config = TrainConfig::read_from(&ck)?;
        let size = ck.get_u64("arch/size")? as usize;
        let g_base = ck.get_u64("arch/g_base")? as usize;
        let d_base = ck.get_u64("arch/d_base")? as usize;
        let d_pair = ck.get_u64("arch/d_pair")? != 0;
        // Bound the scalars before they reach network constructors: an
        // untrusted checkpoint must not be able to panic or demand
        // terabytes via a giant "resolution".
        if !(8..=8192).contains(&size)
            || !size.is_power_of_two()
            || !(1..=1024).contains(&g_base)
            || !(1..=1024).contains(&d_base)
        {
            return Err(GanOpcError::Config(format!(
                "implausible checkpoint architecture: size {size}, bases {g_base}/{d_base}"
            )));
        }
        // Seeds only affect the initialization that is immediately
        // overwritten by the imported weights.
        let mut generator = Generator::new(size, g_base, 0);
        let mut discriminator = if d_pair {
            Discriminator::new(size, d_base, 0)
        } else {
            Discriminator::mask_only(size, d_base, 0)
        };
        generator.import_params(&ck.take_tensors("g/params")?)?;
        discriminator.import_params(&ck.take_tensors("d/params")?)?;
        let mut opt_g = Sgd::new(config.lr_generator, config.momentum);
        let mut opt_d = Sgd::new(config.lr_discriminator, config.momentum);
        let vel_g = ck.take_tensors("opt_g/velocity")?;
        let vel_d = ck.take_tensors("opt_d/velocity")?;
        check_velocity(generator.net_mut(), &vel_g, "generator")?;
        check_velocity(discriminator.net_mut(), &vel_d, "discriminator")?;
        opt_g.import_state(vel_g);
        opt_d.import_state(vel_d);
        let step = ck.get_u64("progress/step")? as usize;
        let epoch = ck.get_u64("progress/epoch")?;
        let cursor = ck.get_u64("progress/cursor")? as usize;
        let best = if ck.contains("best/g_params") {
            let report = ValidationReport::read_from(&ck, "best/report")?;
            let g_params = ck.take_tensors("best/g_params")?;
            let d_params = ck.take_tensors("best/d_params")?;
            let opt_g_best = ck.take_tensors("best/opt_g")?;
            let opt_d_best = ck.take_tensors("best/opt_d")?;
            Some(BestSnapshot {
                report,
                generator: g_params,
                discriminator: d_params,
                opt_g: opt_g_best,
                opt_d: opt_d_best,
            })
        } else {
            None
        };
        Ok(GanTrainer {
            generator,
            discriminator,
            opt_g,
            opt_d,
            config,
            step,
            epoch,
            cursor,
            best,
            scratch: TrainScratch::new(),
        })
    }

    /// Atomically writes the complete training state to `path`: a crash
    /// mid-save leaves the previous checkpoint (or no file) at `path`,
    /// never a truncated one.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_checkpoint<P: AsRef<Path>>(&mut self, path: P) -> Result<(), GanOpcError> {
        self.to_checkpoint().save(path)?;
        Ok(())
    }

    /// Reconstructs a trainer from a checkpoint file written by
    /// [`GanTrainer::save_checkpoint`]; [`GanTrainer::train`] then
    /// continues exactly where the saved run stopped.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format failures; corrupt or truncated files
    /// surface as [`GanOpcError::Checkpoint`].
    pub fn resume<P: AsRef<Path>>(path: P) -> Result<Self, GanOpcError> {
        GanTrainer::from_checkpoint(Checkpoint::load(path)?)
    }
}

/// Mean of a probability tensor in f64 (for [`StepStats`]).
fn mean_f64(t: &Tensor) -> f64 {
    t.as_slice().iter().map(|&v| v as f64).sum::<f64>() / t.len().max(1) as f64
}

/// Validates an optimizer-velocity snapshot against the network it will
/// drive: either empty (optimizer never stepped) or one tensor per
/// parameter with matching shapes.
pub(crate) fn check_velocity(
    net: &mut ganopc_nn::layers::Sequential,
    velocity: &[Tensor],
    what: &str,
) -> Result<(), GanOpcError> {
    if velocity.is_empty() {
        return Ok(());
    }
    let mut shapes: Vec<Vec<usize>> = Vec::new();
    net.visit_params(&mut |p| shapes.push(p.value.shape().to_vec()));
    let matches = velocity.len() == shapes.len()
        && velocity.iter().zip(&shapes).all(|(v, s)| v.shape() == &s[..]);
    if !matches {
        return Err(GanOpcError::Config(format!(
            "{what} optimizer velocity does not match the network layout"
        )));
    }
    Ok(())
}

impl std::fmt::Debug for GanTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GanTrainer")
            .field("step", &self.step)
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganopc_ilt::IltConfig;

    fn tiny_setup() -> (GanTrainer, OpcDataset) {
        let ds = OpcDataset::synthesize(32, 3, IltConfig::fast(), 3).unwrap();
        let g = Generator::new(32, 4, 1);
        let d = Discriminator::new(32, 4, 2);
        (GanTrainer::new(g, d, TrainConfig::fast()), ds)
    }

    #[test]
    fn training_runs_and_reports_stats() {
        let (mut trainer, ds) = tiny_setup();
        let stats = trainer.train(&ds);
        assert_eq!(stats.len(), TrainConfig::fast().iterations);
        for s in &stats {
            assert!(s.l2_loss.is_finite() && s.l2_loss >= 0.0);
            assert!(s.adversarial_loss.is_finite());
            assert!(s.discriminator_loss.is_finite());
            assert!((0.0..=1.0).contains(&s.d_real));
            assert!((0.0..=1.0).contains(&s.d_fake));
        }
        assert_eq!(stats.last().unwrap().step, stats.len());
    }

    #[test]
    fn l2_term_pulls_masks_toward_references() {
        // With a strong α and several steps, the generator's output should
        // move measurably toward the reference masks.
        let ds = OpcDataset::synthesize(32, 2, IltConfig::fast(), 9).unwrap();
        let g = Generator::new(32, 4, 5);
        let d = Discriminator::new(32, 4, 6);
        let mut cfg = TrainConfig::fast();
        cfg.iterations = 30;
        cfg.alpha = 4.0;
        let mut trainer = GanTrainer::new(g, d, cfg);
        let stats = trainer.train(&ds);
        let early: f64 = stats[..5].iter().map(|s| s.l2_loss).sum::<f64>() / 5.0;
        let late: f64 = stats[stats.len() - 5..].iter().map(|s| s.l2_loss).sum::<f64>() / 5.0;
        assert!(late < early, "L2 did not improve: {early} -> {late}");
    }

    #[test]
    fn discriminator_learns_to_separate() {
        let (mut trainer, ds) = tiny_setup();
        let mut cfg = TrainConfig::fast();
        cfg.iterations = 25;
        trainer.config = cfg.clone();
        let stats = trainer.train(&ds);
        let last = stats.last().unwrap();
        // After some steps, D should rank real pairs above generated ones.
        assert!(
            last.d_real >= last.d_fake - 0.05,
            "d_real {} << d_fake {}",
            last.d_real,
            last.d_fake
        );
    }

    #[test]
    fn train_step_accepts_explicit_batches() {
        let (mut trainer, ds) = tiny_setup();
        let (t, m) = ds.batch(&[0, 1]);
        let s1 = trainer.train_step(&t, &m);
        let s2 = trainer.train_step(&t, &m);
        assert_eq!(s1.step, 1);
        assert_eq!(s2.step, 2);
    }

    #[test]
    fn train_with_validation_restores_best_checkpoint() {
        use ganopc_litho::OpticalConfig;
        let ds = OpcDataset::synthesize(32, 4, ganopc_ilt::IltConfig::fast(), 55).unwrap();
        let (train, val) = crate::validate::split_dataset(&ds, 0.25, 3).unwrap();
        let mut opt = OpticalConfig::default_32nm(64.0);
        opt.pupil_grid = 11;
        opt.num_kernels = 6;
        let model = ganopc_litho::LithoModel::new(opt, 32, 32).unwrap();
        let mut cfg = TrainConfig::fast();
        cfg.iterations = 8;
        let mut trainer =
            GanTrainer::new(Generator::new(32, 4, 1), Discriminator::new(32, 4, 2), cfg);
        let (stats, best) = trainer.train_with_validation(&train, &val, &model, 2).unwrap();
        assert_eq!(stats.len(), 8);
        // The restored generator reproduces the reported best score.
        let report =
            crate::validate::evaluate_generator(trainer.generator_mut(), &model, &val).unwrap();
        assert!((report.litho_error - best.litho_error).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "share the clip size")]
    fn size_mismatch_rejected() {
        let g = Generator::new(32, 4, 0);
        let d = Discriminator::new(16, 4, 0);
        let _ = GanTrainer::new(g, d, TrainConfig::fast());
    }

    #[test]
    fn config_validation() {
        assert!(TrainConfig::paper_scaled().validate().is_ok());
        let mut bad = TrainConfig::fast();
        bad.batch_size = 0;
        assert!(bad.validate().is_err());
    }
}
