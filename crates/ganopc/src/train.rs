//! Algorithm 1 — GAN-OPC adversarial training.
//!
//! Per mini-batch (paper Algorithm 1):
//!
//! ```text
//! M  ← G(Z_t; W_g)
//! l_g ← −log D(Z_t, M) + α‖M* − M‖²          (line 7)
//! l_d ← log D(Z_t, M) − log D(Z_t, M*)        (line 8, minimized)
//! ΔW_g ← ∂l_g/∂W_g ;  ΔW_d ← ∂l_d/∂W_d       (line 9)
//! W ← W − (λ/m)·ΔW                            (line 11)
//! ```
//!
//! `l_d` is minimized as the standard binary cross-entropy pair
//! `BCE(D(Z_t, M*), 1) + BCE(D(Z_t, M), 0)` (identical stationary points,
//! better-conditioned gradients); the generator term `−log D(Z_t, M)` is
//! `BCE(D(Z_t, M), 1)` exactly as in Eq. (7).

use crate::{Discriminator, Generator, OpcDataset};
use ganopc_nn::loss::{bce_scalar_label, sum_squared_error};
use ganopc_nn::optim::Sgd;
use ganopc_nn::Tensor;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Total training steps (mini-batches).
    pub iterations: usize,
    /// Mini-batch size `m`.
    pub batch_size: usize,
    /// Generator learning rate λ_g.
    pub lr_generator: f32,
    /// Discriminator learning rate λ_d.
    pub lr_discriminator: f32,
    /// SGD momentum for both networks.
    pub momentum: f32,
    /// Weight α of the `‖M* − M‖²` term in the generator loss (line 7).
    /// Applied per pixel (the squared error is averaged over the batch and
    /// scaled by α).
    pub alpha: f32,
    /// Shuffling/initialization seed.
    pub seed: u64,
    /// Optional global gradient-norm clip applied to both networks before
    /// each optimizer step (GAN stabilization; `None` disables).
    pub clip_grad_norm: Option<f32>,
}

impl TrainConfig {
    /// A configuration sized for the scaled reproduction experiments.
    pub fn paper_scaled() -> Self {
        TrainConfig {
            iterations: 400,
            batch_size: 4,
            lr_generator: 0.02,
            lr_discriminator: 0.01,
            momentum: 0.5,
            alpha: 1.0,
            seed: 2018,
            clip_grad_norm: Some(10.0),
        }
    }

    /// A tiny configuration for unit tests.
    pub fn fast() -> Self {
        TrainConfig {
            iterations: 6,
            batch_size: 2,
            lr_generator: 0.02,
            lr_discriminator: 0.01,
            momentum: 0.0,
            alpha: 1.0,
            seed: 7,
            clip_grad_norm: Some(10.0),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch size must be positive".into());
        }
        if self.lr_generator <= 0.0 || self.lr_discriminator <= 0.0 {
            return Err("learning rates must be positive".into());
        }
        if self.alpha < 0.0 {
            return Err("alpha must be nonnegative".into());
        }
        if let Some(c) = self.clip_grad_norm {
            if c.is_nan() || c <= 0.0 {
                return Err("clip_grad_norm must be positive".into());
            }
        }
        Ok(())
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::paper_scaled()
    }
}

/// Per-step training statistics (the Fig. 7 curves are built from
/// `l2_loss`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// Training step index.
    pub step: usize,
    /// Generator adversarial loss `−log D(Z_t, M)`.
    pub adversarial_loss: f64,
    /// Mean per-pixel squared error between `M` and `M*` — the y-axis of
    /// Fig. 7.
    pub l2_loss: f64,
    /// Discriminator loss.
    pub discriminator_loss: f64,
    /// Mean probability the discriminator assigns to real pairs.
    pub d_real: f64,
    /// Mean probability the discriminator assigns to generated pairs.
    pub d_fake: f64,
}

/// The Algorithm 1 trainer: owns both networks and their optimizers.
pub struct GanTrainer {
    generator: Generator,
    discriminator: Discriminator,
    opt_g: Sgd,
    opt_d: Sgd,
    config: TrainConfig,
    step: usize,
}

impl GanTrainer {
    /// Creates a trainer from freshly initialized networks.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`TrainConfig::validate`] or the networks
    /// disagree on spatial size.
    pub fn new(generator: Generator, discriminator: Discriminator, config: TrainConfig) -> Self {
        config.validate().expect("invalid training configuration");
        assert_eq!(
            generator.size(),
            discriminator.size(),
            "generator and discriminator must share the clip size"
        );
        let opt_g = Sgd::new(config.lr_generator, config.momentum);
        let opt_d = Sgd::new(config.lr_discriminator, config.momentum);
        GanTrainer { generator, discriminator, opt_g, opt_d, config, step: 0 }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Borrow of the generator (e.g. to export weights mid-training).
    pub fn generator_mut(&mut self) -> &mut Generator {
        &mut self.generator
    }

    /// Borrow of the discriminator.
    pub fn discriminator_mut(&mut self) -> &mut Discriminator {
        &mut self.discriminator
    }

    /// Consumes the trainer, returning the trained networks.
    pub fn into_networks(self) -> (Generator, Discriminator) {
        (self.generator, self.discriminator)
    }

    /// Runs one Algorithm 1 step on a mini-batch of `(Z_t, M*)`.
    pub fn train_step(&mut self, targets: &Tensor, ref_masks: &Tensor) -> StepStats {
        self.step += 1;
        let batch = targets.shape()[0] as f32;

        // ---- Generator update: l_g = −log D(Z_t, M) + α‖M* − M‖² ----
        let masks = self.generator.forward(targets, true);
        let p_fake_for_g = self.discriminator.forward_pair(targets, &masks, true);
        let (adv_loss, grad_p) = bce_scalar_label(&p_fake_for_g, 1.0);
        // Route the adversarial gradient through D into the mask channel.
        self.discriminator.zero_grads();
        let (_, grad_mask_adv) = self.discriminator.backward_pair(&grad_p);
        // L2 pull toward the reference mask (Eq. (9)); normalize per batch
        // and pixel so α is resolution independent.
        let (sse, grad_mask_l2) = sum_squared_error(&masks, ref_masks);
        let pixels = (masks.len() as f32).max(1.0);
        let l2_loss = sse / pixels as f64;
        let mut grad_masks = grad_mask_adv;
        grad_masks.add_scaled_assign(&grad_mask_l2, self.config.alpha / pixels);
        self.generator.zero_grads();
        self.generator.backward(&grad_masks.scale(1.0 / batch));
        if let Some(clip) = self.config.clip_grad_norm {
            self.generator.net_mut().clip_gradients(clip);
        }
        self.opt_g.step(self.generator.net_mut());
        // The generator pass polluted D's gradients; clear before D's turn.
        self.discriminator.zero_grads();

        // ---- Discriminator update: BCE(real,1) + BCE(fake,0) ----
        let p_real = self.discriminator.forward_pair(targets, ref_masks, true);
        let (loss_real, grad_real) = bce_scalar_label(&p_real, 1.0);
        self.discriminator.backward_pair(&grad_real.scale(1.0 / batch));
        // Detach the generator: re-use `masks` as data (no G backward).
        let p_fake = self.discriminator.forward_pair(targets, &masks, true);
        let (loss_fake, grad_fake) = bce_scalar_label(&p_fake, 0.0);
        self.discriminator.backward_pair(&grad_fake.scale(1.0 / batch));
        if let Some(clip) = self.config.clip_grad_norm {
            self.discriminator.net_mut().clip_gradients(clip);
        }
        self.opt_d.step(self.discriminator.net_mut());
        self.discriminator.zero_grads();

        StepStats {
            step: self.step,
            adversarial_loss: adv_loss,
            l2_loss,
            discriminator_loss: loss_real + loss_fake,
            d_real: p_real.as_slice().iter().map(|&v| v as f64).sum::<f64>() / p_real.len() as f64,
            d_fake: p_fake.as_slice().iter().map(|&v| v as f64).sum::<f64>() / p_fake.len() as f64,
        }
    }

    /// Trains with periodic hold-out validation, keeping the generator
    /// weights from the best validation checkpoint (early-stopping style).
    ///
    /// Every `check_every` steps the generator is scored on `validation`
    /// with [`crate::validate::evaluate_generator`]; after the full budget
    /// the weights of the best checkpoint are restored. Returns the
    /// per-step statistics and the best validation report.
    ///
    /// # Errors
    ///
    /// Propagates validation failures (resolution mismatches).
    pub fn train_with_validation(
        &mut self,
        dataset: &OpcDataset,
        validation: &OpcDataset,
        model: &ganopc_litho::LithoModel,
        check_every: usize,
    ) -> Result<(Vec<StepStats>, crate::validate::ValidationReport), crate::GanOpcError> {
        let check_every = check_every.max(1);
        let mut stats = Vec::with_capacity(self.config.iterations);
        let mut best: Option<(crate::validate::ValidationReport, Vec<Tensor>)> = None;
        let mut order = dataset.epoch_order(self.config.seed);
        let mut cursor = 0usize;
        let mut epoch = 0u64;
        for step in 0..self.config.iterations {
            let mut indices = Vec::with_capacity(self.config.batch_size);
            while indices.len() < self.config.batch_size {
                if cursor == order.len() {
                    epoch += 1;
                    order = dataset.epoch_order(self.config.seed.wrapping_add(epoch));
                    cursor = 0;
                }
                indices.push(order[cursor]);
                cursor += 1;
            }
            let (targets, masks) = dataset.batch(&indices);
            stats.push(self.train_step(&targets, &masks));
            if (step + 1) % check_every == 0 || step + 1 == self.config.iterations {
                let report =
                    crate::validate::evaluate_generator(&mut self.generator, model, validation)?;
                let better =
                    best.as_ref().map(|(b, _)| report.litho_error < b.litho_error).unwrap_or(true);
                if better {
                    best = Some((report, self.generator.export_params()));
                }
            }
        }
        let (report, snapshot) = best.expect("at least one validation checkpoint");
        self.generator.import_params(&snapshot)?;
        Ok((stats, report))
    }

    /// Trains for `config.iterations` steps over the dataset, returning the
    /// per-step statistics (the Fig. 7 curve).
    pub fn train(&mut self, dataset: &OpcDataset) -> Vec<StepStats> {
        let mut stats = Vec::with_capacity(self.config.iterations);
        let mut order = dataset.epoch_order(self.config.seed);
        let mut cursor = 0usize;
        let mut epoch = 0u64;
        for _ in 0..self.config.iterations {
            // Draw the next mini-batch, reshuffling at epoch boundaries.
            let mut indices = Vec::with_capacity(self.config.batch_size);
            while indices.len() < self.config.batch_size {
                if cursor == order.len() {
                    epoch += 1;
                    order = dataset.epoch_order(self.config.seed.wrapping_add(epoch));
                    cursor = 0;
                }
                indices.push(order[cursor]);
                cursor += 1;
            }
            let (targets, masks) = dataset.batch(&indices);
            stats.push(self.train_step(&targets, &masks));
        }
        stats
    }
}

impl std::fmt::Debug for GanTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GanTrainer")
            .field("step", &self.step)
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganopc_ilt::IltConfig;

    fn tiny_setup() -> (GanTrainer, OpcDataset) {
        let ds = OpcDataset::synthesize(32, 3, IltConfig::fast(), 3).unwrap();
        let g = Generator::new(32, 4, 1);
        let d = Discriminator::new(32, 4, 2);
        (GanTrainer::new(g, d, TrainConfig::fast()), ds)
    }

    #[test]
    fn training_runs_and_reports_stats() {
        let (mut trainer, ds) = tiny_setup();
        let stats = trainer.train(&ds);
        assert_eq!(stats.len(), TrainConfig::fast().iterations);
        for s in &stats {
            assert!(s.l2_loss.is_finite() && s.l2_loss >= 0.0);
            assert!(s.adversarial_loss.is_finite());
            assert!(s.discriminator_loss.is_finite());
            assert!((0.0..=1.0).contains(&s.d_real));
            assert!((0.0..=1.0).contains(&s.d_fake));
        }
        assert_eq!(stats.last().unwrap().step, stats.len());
    }

    #[test]
    fn l2_term_pulls_masks_toward_references() {
        // With a strong α and several steps, the generator's output should
        // move measurably toward the reference masks.
        let ds = OpcDataset::synthesize(32, 2, IltConfig::fast(), 9).unwrap();
        let g = Generator::new(32, 4, 5);
        let d = Discriminator::new(32, 4, 6);
        let mut cfg = TrainConfig::fast();
        cfg.iterations = 30;
        cfg.alpha = 4.0;
        let mut trainer = GanTrainer::new(g, d, cfg);
        let stats = trainer.train(&ds);
        let early: f64 = stats[..5].iter().map(|s| s.l2_loss).sum::<f64>() / 5.0;
        let late: f64 = stats[stats.len() - 5..].iter().map(|s| s.l2_loss).sum::<f64>() / 5.0;
        assert!(late < early, "L2 did not improve: {early} -> {late}");
    }

    #[test]
    fn discriminator_learns_to_separate() {
        let (mut trainer, ds) = tiny_setup();
        let mut cfg = TrainConfig::fast();
        cfg.iterations = 25;
        trainer.config = cfg.clone();
        let stats = trainer.train(&ds);
        let last = stats.last().unwrap();
        // After some steps, D should rank real pairs above generated ones.
        assert!(
            last.d_real >= last.d_fake - 0.05,
            "d_real {} << d_fake {}",
            last.d_real,
            last.d_fake
        );
    }

    #[test]
    fn train_step_accepts_explicit_batches() {
        let (mut trainer, ds) = tiny_setup();
        let (t, m) = ds.batch(&[0, 1]);
        let s1 = trainer.train_step(&t, &m);
        let s2 = trainer.train_step(&t, &m);
        assert_eq!(s1.step, 1);
        assert_eq!(s2.step, 2);
    }

    #[test]
    fn train_with_validation_restores_best_checkpoint() {
        use ganopc_litho::OpticalConfig;
        let ds = OpcDataset::synthesize(32, 4, ganopc_ilt::IltConfig::fast(), 55).unwrap();
        let (train, val) = crate::validate::split_dataset(&ds, 0.25, 3).unwrap();
        let mut opt = OpticalConfig::default_32nm(64.0);
        opt.pupil_grid = 11;
        opt.num_kernels = 6;
        let model = ganopc_litho::LithoModel::new(opt, 32, 32).unwrap();
        let mut cfg = TrainConfig::fast();
        cfg.iterations = 8;
        let mut trainer =
            GanTrainer::new(Generator::new(32, 4, 1), Discriminator::new(32, 4, 2), cfg);
        let (stats, best) = trainer.train_with_validation(&train, &val, &model, 2).unwrap();
        assert_eq!(stats.len(), 8);
        // The restored generator reproduces the reported best score.
        let report =
            crate::validate::evaluate_generator(trainer.generator_mut(), &model, &val).unwrap();
        assert!((report.litho_error - best.litho_error).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "share the clip size")]
    fn size_mismatch_rejected() {
        let g = Generator::new(32, 4, 0);
        let d = Discriminator::new(16, 4, 0);
        let _ = GanTrainer::new(g, d, TrainConfig::fast());
    }

    #[test]
    fn config_validation() {
        assert!(TrainConfig::paper_scaled().validate().is_ok());
        let mut bad = TrainConfig::fast();
        bad.batch_size = 0;
        assert!(bad.validate().is_err());
    }
}
