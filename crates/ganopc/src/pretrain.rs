//! Algorithm 2 — ILT-guided generator pre-training.
//!
//! Instead of regressing the generator toward ground-truth masks, the
//! pre-training phase wires the lithography simulator *into* the
//! backpropagation graph: for each generated mask `M = G(Z_t)` the wafer
//! error `E = ‖Z − Z_t‖²` (Eq. (11)) is evaluated and its gradient
//! `∂E/∂M` (Eq. (14)) is back-propagated through the generator
//! (`∂E/∂M · ∂M/∂W_g`, Algorithm 2 line 8). This gives the generator
//! "step-by-step guidance" toward lithography-aware masks before
//! adversarial training starts, which the paper shows stabilizes GAN
//! convergence (Fig. 7).

use crate::{tensor_to_field, GanOpcError, Generator, OpcDataset};
use ganopc_litho::LithoModel;
use ganopc_nn::optim::Sgd;
use ganopc_nn::{pool, Tensor};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Pre-training steps (mini-batches).
    pub iterations: usize,
    /// Mini-batch size `m`.
    pub batch_size: usize,
    /// Learning rate λ.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl PretrainConfig {
    /// Scaled-reproduction default.
    pub fn paper_scaled() -> Self {
        PretrainConfig { iterations: 150, batch_size: 4, lr: 0.01, momentum: 0.5, seed: 4242 }
    }

    /// Tiny test configuration.
    pub fn fast() -> Self {
        PretrainConfig { iterations: 4, batch_size: 2, lr: 0.01, momentum: 0.0, seed: 13 }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch size must be positive".into());
        }
        if self.lr <= 0.0 {
            return Err("learning rate must be positive".into());
        }
        Ok(())
    }
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig::paper_scaled()
    }
}

/// Per-step pre-training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PretrainStats {
    /// Step index.
    pub step: usize,
    /// Mean lithography error `E` over the mini-batch (Eq. (11)).
    pub litho_error: f64,
}

/// Runs Algorithm 2: pre-trains `generator` on the targets of `dataset`
/// by descending the lithography error through the litho model.
///
/// The litho `model` must share the dataset resolution. Returns per-step
/// statistics.
///
/// # Errors
///
/// Returns [`GanOpcError::Config`] on resolution mismatches and propagates
/// lithography failures.
pub fn pretrain_generator(
    generator: &mut Generator,
    model: &LithoModel,
    dataset: &OpcDataset,
    config: &PretrainConfig,
) -> Result<Vec<PretrainStats>, GanOpcError> {
    config.validate().map_err(GanOpcError::Config)?;
    if model.shape() != (dataset.size(), dataset.size()) {
        return Err(GanOpcError::Config(format!(
            "litho frame {:?} does not match dataset size {}",
            model.shape(),
            dataset.size()
        )));
    }
    if generator.size() != dataset.size() {
        return Err(GanOpcError::Config(format!(
            "generator size {} does not match dataset size {}",
            generator.size(),
            dataset.size()
        )));
    }
    let mut opt = Sgd::new(config.lr, config.momentum);
    let mut stats = Vec::with_capacity(config.iterations);
    let mut order = dataset.epoch_order(config.seed);
    let mut cursor = 0usize;
    let mut epoch = 0u64;
    for step in 0..config.iterations {
        let mut indices = Vec::with_capacity(config.batch_size);
        while indices.len() < config.batch_size {
            if cursor == order.len() {
                epoch += 1;
                order = dataset.epoch_order(config.seed.wrapping_add(epoch));
                cursor = 0;
            }
            indices.push(order[cursor]);
            cursor += 1;
        }
        let (targets, _) = dataset.batch(&indices);
        // Line 5: M ← G(Z_t).
        let masks = generator.forward(&targets, true);
        // Lines 6–8: litho-simulate each mask, collect ∂E/∂M. Samples are
        // independent, so they fan out over the shared worker pool; each job
        // writes its own slice of the batch gradient, and the batch error is
        // reduced in sample order below so the result is identical for any
        // `GANOPC_THREADS` setting.
        let batch = indices.len();
        let mut grad = Tensor::zeros(masks.shape());
        let plane = dataset.size() * dataset.size();
        let jobs: Vec<(usize, usize, &mut [f32])> = indices
            .iter()
            .enumerate()
            .zip(grad.as_mut_slice().chunks_mut(plane))
            .map(|((bi, &di), gslice)| (bi, di, gslice))
            .collect();
        let masks_ref = &masks;
        let errors = pool::run(jobs, |(bi, di, gslice)| -> Result<f64, GanOpcError> {
            let mask_field = tensor_to_field(masks_ref, bi);
            // The allocation-free entry point writes ∂E/∂M straight into
            // this sample's slice of the batch gradient; the aerial and
            // wafer images it would otherwise build are never needed here.
            Ok(model.gradient_into(&mask_field, &dataset.targets()[di], 1.0, gslice)?)
        });
        let mut err_total = 0.0f64;
        for err in errors {
            err_total += err?;
        }
        // Line 10: W_g ← W_g − (λ/m)·ΔW_g.
        generator.zero_grads();
        generator.backward(&grad.scale(1.0 / batch as f32));
        opt.step(generator.net_mut());
        stats.push(PretrainStats { step: step + 1, litho_error: err_total / batch as f64 });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganopc_ilt::IltConfig;
    use ganopc_litho::OpticalConfig;

    fn tiny_model() -> LithoModel {
        let mut cfg = OpticalConfig::default_32nm(2048.0 / 32.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 6;
        LithoModel::new(cfg, 32, 32).unwrap()
    }

    #[test]
    fn pretraining_reduces_litho_error() {
        let ds = OpcDataset::synthesize(32, 2, IltConfig::fast(), 21).unwrap();
        let model = tiny_model();
        let mut g = Generator::new(32, 4, 33);
        let mut cfg = PretrainConfig::fast();
        cfg.iterations = 20;
        cfg.lr = 0.05;
        let stats = pretrain_generator(&mut g, &model, &ds, &cfg).unwrap();
        assert_eq!(stats.len(), 20);
        let early: f64 = stats[..4].iter().map(|s| s.litho_error).sum::<f64>() / 4.0;
        let late: f64 = stats[16..].iter().map(|s| s.litho_error).sum::<f64>() / 4.0;
        assert!(late < early, "litho error did not decrease: {early} -> {late}");
    }

    #[test]
    fn resolution_mismatch_rejected() {
        let ds = OpcDataset::synthesize(32, 1, IltConfig::fast(), 1).unwrap();
        let model = tiny_model();
        let mut g = Generator::new(16, 4, 0);
        assert!(matches!(
            pretrain_generator(&mut g, &model, &ds, &PretrainConfig::fast()),
            Err(GanOpcError::Config(_))
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let ds = OpcDataset::synthesize(32, 1, IltConfig::fast(), 1).unwrap();
        let model = tiny_model();
        let mut g = Generator::new(32, 4, 0);
        let mut cfg = PretrainConfig::fast();
        cfg.lr = 0.0;
        assert!(matches!(
            pretrain_generator(&mut g, &model, &ds, &cfg),
            Err(GanOpcError::Config(_))
        ));
    }

    #[test]
    fn stats_are_monotone_in_step_index() {
        let ds = OpcDataset::synthesize(32, 1, IltConfig::fast(), 2).unwrap();
        let model = tiny_model();
        let mut g = Generator::new(32, 4, 1);
        let stats = pretrain_generator(&mut g, &model, &ds, &PretrainConfig::fast()).unwrap();
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.step, i + 1);
            assert!(s.litho_error.is_finite());
        }
    }
}
