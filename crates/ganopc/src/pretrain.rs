//! Algorithm 2 — ILT-guided generator pre-training.
//!
//! Instead of regressing the generator toward ground-truth masks, the
//! pre-training phase wires the lithography simulator *into* the
//! backpropagation graph: for each generated mask `M = G(Z_t)` the wafer
//! error `E = ‖Z − Z_t‖²` (Eq. (11)) is evaluated and its gradient
//! `∂E/∂M` (Eq. (14)) is back-propagated through the generator
//! (`∂E/∂M · ∂M/∂W_g`, Algorithm 2 line 8). This gives the generator
//! "step-by-step guidance" toward lithography-aware masks before
//! adversarial training starts, which the paper shows stabilizes GAN
//! convergence (Fig. 7).

use crate::dataset::EpochStream;
use crate::{tensor_to_field, GanOpcError, Generator, OpcDataset};
use ganopc_fault as fault;
use ganopc_litho::LithoModel;
use ganopc_nn::checkpoint::Checkpoint;
use ganopc_nn::optim::Sgd;
use ganopc_nn::{pool, Tensor};
use ganopc_obs as obs;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Hyper-parameters of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Pre-training steps (mini-batches).
    pub iterations: usize,
    /// Mini-batch size `m`.
    pub batch_size: usize,
    /// Learning rate λ.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl PretrainConfig {
    /// Scaled-reproduction default.
    pub fn paper_scaled() -> Self {
        PretrainConfig { iterations: 150, batch_size: 4, lr: 0.01, momentum: 0.5, seed: 4242 }
    }

    /// Tiny test configuration.
    pub fn fast() -> Self {
        PretrainConfig { iterations: 4, batch_size: 2, lr: 0.01, momentum: 0.0, seed: 13 }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch size must be positive".into());
        }
        if self.lr <= 0.0 {
            return Err("learning rate must be positive".into());
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err("momentum must lie in [0, 1)".into());
        }
        Ok(())
    }

    fn put_into(&self, ck: &mut Checkpoint) {
        ck.put_u64("config/iterations", self.iterations as u64);
        ck.put_u64("config/batch_size", self.batch_size as u64);
        ck.put_f64("config/lr", self.lr as f64);
        ck.put_f64("config/momentum", self.momentum as f64);
        ck.put_u64("config/seed", self.seed);
    }

    fn read_from(ck: &Checkpoint) -> Result<Self, GanOpcError> {
        let config = PretrainConfig {
            iterations: ck.get_u64("config/iterations")? as usize,
            batch_size: ck.get_u64("config/batch_size")? as usize,
            lr: ck.get_f64("config/lr")? as f32,
            momentum: ck.get_f64("config/momentum")? as f32,
            seed: ck.get_u64("config/seed")?,
        };
        config.validate().map_err(GanOpcError::Config)?;
        Ok(config)
    }
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig::paper_scaled()
    }
}

/// Per-step pre-training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PretrainStats {
    /// Step index.
    pub step: usize,
    /// Mean lithography error `E` over the mini-batch (Eq. (11)).
    pub litho_error: f64,
}

/// Runs Algorithm 2: pre-trains `generator` on the targets of `dataset`
/// by descending the lithography error through the litho model.
///
/// The litho `model` must share the dataset resolution. Returns per-step
/// statistics.
///
/// # Errors
///
/// Returns [`GanOpcError::Config`] on resolution mismatches and propagates
/// lithography failures.
pub fn pretrain_generator(
    generator: &mut Generator,
    model: &LithoModel,
    dataset: &OpcDataset,
    config: &PretrainConfig,
) -> Result<Vec<PretrainStats>, GanOpcError> {
    config.validate().map_err(GanOpcError::Config)?;
    check_shapes(generator, model, dataset)?;
    let mut opt = Sgd::new(config.lr, config.momentum);
    let mut stream = dataset.epoch_stream(config.seed);
    let mut step = 0usize;
    run_steps(
        generator,
        &mut opt,
        model,
        dataset,
        config,
        &mut stream,
        &mut step,
        config.iterations,
    )
}

fn check_shapes(
    generator: &Generator,
    model: &LithoModel,
    dataset: &OpcDataset,
) -> Result<(), GanOpcError> {
    if model.shape() != (dataset.size(), dataset.size()) {
        return Err(GanOpcError::Config(format!(
            "litho frame {:?} does not match dataset size {}",
            model.shape(),
            dataset.size()
        )));
    }
    if generator.size() != dataset.size() {
        return Err(GanOpcError::Config(format!(
            "generator size {} does not match dataset size {}",
            generator.size(),
            dataset.size()
        )));
    }
    Ok(())
}

/// The Algorithm 2 inner loop, shared by the one-shot entry point and the
/// resumable [`Pretrainer`]: advances `step` and `stream` in place so the
/// caller's position always reflects the batches actually consumed.
#[allow(clippy::too_many_arguments)]
fn run_steps(
    generator: &mut Generator,
    opt: &mut Sgd,
    model: &LithoModel,
    dataset: &OpcDataset,
    config: &PretrainConfig,
    stream: &mut EpochStream,
    step: &mut usize,
    steps: usize,
) -> Result<Vec<PretrainStats>, GanOpcError> {
    let mut stats = Vec::with_capacity(steps);
    // Persistent step buffers: the generated masks, the batch gradient and
    // the per-sample error slots are sized once and reused for every
    // mini-batch, so the steady-state loop performs no heap allocation.
    let mut masks = Tensor::zeros(&[1]);
    let mut grad = Tensor::zeros(&[1]);
    let mut errors: Vec<Result<f64, GanOpcError>> = Vec::new();
    for _ in 0..steps {
        let _step_span = obs::span(obs::Span::PretrainStep);
        obs::counter_add(obs::Counter::PretrainSteps, 1);
        let indices = stream.next_batch(dataset, config.batch_size);
        let (targets, _) = dataset.batch(&indices);
        // Line 5: M ← G(Z_t).
        generator.forward_into(&targets, &mut masks, true);
        // Lines 6–8: litho-simulate each mask, collect ∂E/∂M. Samples are
        // independent, so they fan out over the shared worker crew; each
        // chunk writes its samples' slices of the batch gradient and error
        // buffer, and the batch error is reduced in sample order below so
        // the result is identical for any `GANOPC_THREADS` setting.
        let batch = indices.len();
        grad.resize(masks.shape());
        let plane = dataset.size() * dataset.size();
        errors.clear();
        errors.resize_with(batch, || Ok(0.0));
        let gview = pool::DisjointMut::new(&mut grad.as_mut_slice()[..batch * plane]);
        let eview = pool::DisjointMut::new(&mut errors[..batch]);
        let masks_ref = &masks;
        let indices_ref = &indices;
        // This fan-out is the litho phase of pretraining: one adjoint
        // gradient simulation per sample, across the worker crew.
        let litho_span = obs::span(obs::Span::PretrainLitho);
        pool::run_chunks(batch, |samples| {
            for bi in samples {
                let di = indices_ref[bi];
                let mask_field = tensor_to_field(masks_ref, bi);
                // SAFETY: run_chunks sample ranges partition 0..batch, so
                // each `bi` (and hence each gradient plane and error slot)
                // is visited by exactly one chunk.
                let gslice = unsafe { gview.slice_mut(bi * plane..(bi + 1) * plane) };
                // The allocation-free entry point zeroes this sample's slice
                // of the batch gradient and writes ∂E/∂M straight into it;
                // the aerial and wafer images it would otherwise build are
                // never needed here.
                let err = model
                    .gradient_into(&mask_field, &dataset.targets()[di], 1.0, gslice)
                    .map_err(GanOpcError::from);
                // SAFETY: as above — sample ranges are disjoint.
                *unsafe { eview.index_mut(bi) } = err;
            }
        });
        drop(litho_span);
        let mut err_total = 0.0f64;
        for err in &mut errors {
            err_total += std::mem::replace(err, Ok(0.0))?;
        }
        // Line 10: W_g ← W_g − (λ/m)·ΔW_g, with the 1/m scale applied in
        // place and the unused input gradient skipped entirely.
        generator.zero_grads();
        grad.scale_assign(1.0 / batch as f32);
        generator.backward_discard(&grad);
        opt.step(generator.net_mut());
        *step += 1;
        let mut litho_error = err_total / batch as f64;
        // Fault sink: armed builds may poison this step's reported litho
        // error with NaN/∞ (constant None when `fault-inject` is off).
        if let Some(poison) = fault::numeric_fault(fault::Domain::Pretrain, *step as u64) {
            obs::counter_add(obs::Counter::FaultsInjected, 1);
            litho_error = poison.as_f64();
        }
        // Guard rail: ILT-guided pretraining descends on the litho error
        // directly, so a non-finite batch error means the gradients it
        // just applied are suspect — abort typed instead of training on.
        if !litho_error.is_finite() {
            obs::counter_add(obs::Counter::IltGuardTrips, 1);
            return Err(GanOpcError::Divergence(crate::supervisor::DivergenceError {
                step: *step,
                retries: 0,
                reason: crate::supervisor::DivergenceReason::NonFiniteLoss,
            }));
        }
        stats.push(PretrainStats { step: *step, litho_error });
    }
    Ok(stats)
}

/// Format tag stored under `meta/kind` in pre-trainer checkpoints.
const PRETRAINER_KIND: &[u8] = b"gan-opc/pretrainer";

/// A crash-safe, resumable Algorithm 2 run.
///
/// Owns the generator and its optimizer so that
/// [`Pretrainer::save_checkpoint`] can persist everything a pre-training
/// run accumulates — weights, batch-norm statistics, SGD velocity, step
/// counter, and shuffle-stream position — and [`Pretrainer::resume`]
/// continues bit-identically to an uninterrupted run.
pub struct Pretrainer {
    generator: Generator,
    opt: Sgd,
    config: PretrainConfig,
    step: usize,
    epoch: u64,
    cursor: usize,
}

impl Pretrainer {
    /// Wraps a generator for resumable pre-training.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`PretrainConfig::validate`].
    pub fn new(generator: Generator, config: PretrainConfig) -> Self {
        // PANIC: documented above — misconfiguration is a programming error
        // at construction, not a runtime condition to recover from.
        config.validate().expect("invalid pre-training configuration");
        let opt = Sgd::new(config.lr, config.momentum);
        Pretrainer { generator, opt, config, step: 0, epoch: 0, cursor: 0 }
    }

    /// Steps completed so far (across save/resume cycles).
    pub fn step(&self) -> usize {
        self.step
    }

    /// The configuration being run.
    pub fn config(&self) -> &PretrainConfig {
        &self.config
    }

    /// The generator being pre-trained.
    pub fn generator(&self) -> &Generator {
        &self.generator
    }

    /// Mutable access to the generator (e.g. for evaluation between runs).
    pub fn generator_mut(&mut self) -> &mut Generator {
        &mut self.generator
    }

    /// Consumes the pre-trainer, returning the generator for the
    /// adversarial phase.
    pub fn into_generator(self) -> Generator {
        self.generator
    }

    /// Trains until `config.iterations` total steps have run (a fresh
    /// pre-trainer runs all of them; a resumed one only the remainder).
    ///
    /// # Errors
    ///
    /// Returns [`GanOpcError::Config`] on resolution mismatches and
    /// propagates lithography failures.
    pub fn train(
        &mut self,
        model: &LithoModel,
        dataset: &OpcDataset,
    ) -> Result<Vec<PretrainStats>, GanOpcError> {
        let remaining = self.config.iterations.saturating_sub(self.step);
        self.train_for(model, dataset, remaining)
    }

    /// Runs exactly `steps` further pre-training steps.
    ///
    /// # Errors
    ///
    /// Returns [`GanOpcError::Config`] on resolution mismatches and
    /// propagates lithography failures.
    pub fn train_for(
        &mut self,
        model: &LithoModel,
        dataset: &OpcDataset,
        steps: usize,
    ) -> Result<Vec<PretrainStats>, GanOpcError> {
        check_shapes(&self.generator, model, dataset)?;
        let mut stream =
            EpochStream::at_position(dataset, self.config.seed, self.epoch, self.cursor);
        let result = run_steps(
            &mut self.generator,
            &mut self.opt,
            model,
            dataset,
            &self.config,
            &mut stream,
            &mut self.step,
            steps,
        );
        (self.epoch, self.cursor) = stream.position();
        result
    }

    /// Serializes the complete pre-training state into a v2 [`Checkpoint`].
    pub fn to_checkpoint(&mut self) -> Checkpoint {
        let mut ck = Checkpoint::new();
        ck.put_bytes("meta/kind", PRETRAINER_KIND.to_vec());
        self.config.put_into(&mut ck);
        ck.put_u64("arch/size", self.generator.size() as u64);
        ck.put_u64("arch/g_base", self.generator.base_channels() as u64);
        ck.put_tensors("g/params", &self.generator.export_params());
        ck.put_tensors("opt/velocity", &self.opt.export_state());
        ck.put_u64("progress/step", self.step as u64);
        ck.put_u64("progress/epoch", self.epoch);
        ck.put_u64("progress/cursor", self.cursor as u64);
        ck
    }

    /// Reconstructs a pre-trainer from a checkpoint produced by
    /// [`Pretrainer::to_checkpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`GanOpcError::Checkpoint`] for missing/mistyped sections
    /// and [`GanOpcError::Config`] for inconsistent architecture or
    /// optimizer state.
    pub fn from_checkpoint(mut ck: Checkpoint) -> Result<Self, GanOpcError> {
        match ck.get_bytes("meta/kind") {
            Ok(kind) if kind == PRETRAINER_KIND => {}
            Ok(kind) => {
                return Err(GanOpcError::Config(format!(
                    "checkpoint holds '{}', not a pre-trainer state",
                    String::from_utf8_lossy(kind)
                )))
            }
            Err(e) => return Err(e.into()),
        }
        let config = PretrainConfig::read_from(&ck)?;
        let size = ck.get_u64("arch/size")? as usize;
        let g_base = ck.get_u64("arch/g_base")? as usize;
        if !(8..=8192).contains(&size) || !size.is_power_of_two() || !(1..=1024).contains(&g_base) {
            return Err(GanOpcError::Config(format!(
                "implausible checkpoint architecture: size {size}, base {g_base}"
            )));
        }
        let mut generator = Generator::new(size, g_base, 0);
        generator.import_params(&ck.take_tensors("g/params")?)?;
        let mut opt = Sgd::new(config.lr, config.momentum);
        let velocity = ck.take_tensors("opt/velocity")?;
        crate::train::check_velocity(generator.net_mut(), &velocity, "pre-training")?;
        opt.import_state(velocity);
        let step = ck.get_u64("progress/step")? as usize;
        let epoch = ck.get_u64("progress/epoch")?;
        let cursor = ck.get_u64("progress/cursor")? as usize;
        Ok(Pretrainer { generator, opt, config, step, epoch, cursor })
    }

    /// Atomically writes the complete pre-training state to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_checkpoint<P: AsRef<Path>>(&mut self, path: P) -> Result<(), GanOpcError> {
        self.to_checkpoint().save(path)?;
        Ok(())
    }

    /// Reconstructs a pre-trainer from a checkpoint file written by
    /// [`Pretrainer::save_checkpoint`]; [`Pretrainer::train`] then
    /// continues exactly where the saved run stopped.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format failures; corrupt or truncated files
    /// surface as [`GanOpcError::Checkpoint`].
    pub fn resume<P: AsRef<Path>>(path: P) -> Result<Self, GanOpcError> {
        Pretrainer::from_checkpoint(Checkpoint::load(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganopc_ilt::IltConfig;
    use ganopc_litho::OpticalConfig;

    fn tiny_model() -> LithoModel {
        let mut cfg = OpticalConfig::default_32nm(2048.0 / 32.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 6;
        LithoModel::new(cfg, 32, 32).unwrap()
    }

    #[test]
    fn pretraining_reduces_litho_error() {
        let ds = OpcDataset::synthesize(32, 2, IltConfig::fast(), 21).unwrap();
        let model = tiny_model();
        let mut g = Generator::new(32, 4, 33);
        let mut cfg = PretrainConfig::fast();
        cfg.iterations = 20;
        cfg.lr = 0.05;
        let stats = pretrain_generator(&mut g, &model, &ds, &cfg).unwrap();
        assert_eq!(stats.len(), 20);
        let early: f64 = stats[..4].iter().map(|s| s.litho_error).sum::<f64>() / 4.0;
        let late: f64 = stats[16..].iter().map(|s| s.litho_error).sum::<f64>() / 4.0;
        assert!(late < early, "litho error did not decrease: {early} -> {late}");
    }

    #[test]
    fn resolution_mismatch_rejected() {
        let ds = OpcDataset::synthesize(32, 1, IltConfig::fast(), 1).unwrap();
        let model = tiny_model();
        let mut g = Generator::new(16, 4, 0);
        assert!(matches!(
            pretrain_generator(&mut g, &model, &ds, &PretrainConfig::fast()),
            Err(GanOpcError::Config(_))
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let ds = OpcDataset::synthesize(32, 1, IltConfig::fast(), 1).unwrap();
        let model = tiny_model();
        let mut g = Generator::new(32, 4, 0);
        let mut cfg = PretrainConfig::fast();
        cfg.lr = 0.0;
        assert!(matches!(
            pretrain_generator(&mut g, &model, &ds, &cfg),
            Err(GanOpcError::Config(_))
        ));
    }

    #[test]
    fn stats_are_monotone_in_step_index() {
        let ds = OpcDataset::synthesize(32, 1, IltConfig::fast(), 2).unwrap();
        let model = tiny_model();
        let mut g = Generator::new(32, 4, 1);
        let stats = pretrain_generator(&mut g, &model, &ds, &PretrainConfig::fast()).unwrap();
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.step, i + 1);
            assert!(s.litho_error.is_finite());
        }
    }
}
