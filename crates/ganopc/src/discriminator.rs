//! The pair discriminator (paper Section 3.2, Fig. 4).

use ganopc_nn::layers::{BatchNorm2d, Conv2d, Flatten, LeakyRelu, Linear, Sequential, Sigmoid};
use ganopc_nn::{NnError, Tensor};

/// The GAN-OPC discriminator.
///
/// Section 3.2 shows a mask-only discriminator cannot force a one-one
/// target→mask mapping: the generator can satisfy it by producing *any*
/// reference mask. This discriminator therefore classifies stacked
/// `(Z_t, M)` **pairs** — a 2-channel image — as paper Eq. (7)–(8) require:
/// only pairs `(Z_{t,i}, M*_i)` count as real data.
///
/// Architecture: stride-2 convolutions with leaky ReLU down to 4×4, then a
/// dense sigmoid head emitting the probability the pair is real.
///
/// ```
/// use ganopc_core::Discriminator;
/// use ganopc_nn::Tensor;
///
/// let mut d = Discriminator::new(32, 8, 7);
/// let t = Tensor::zeros(&[2, 1, 32, 32]);
/// let m = Tensor::zeros(&[2, 1, 32, 32]);
/// let p = d.forward_pair(&t, &m, false);
/// assert_eq!(p.shape(), &[2, 1]);
/// assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
/// ```
pub struct Discriminator {
    net: Sequential,
    size: usize,
    base_channels: usize,
    /// Whether the network takes pairs (2 channels) or bare masks
    /// (1 channel — the conventional-GAN ablation of Section 3.2).
    pair_input: bool,
    /// Persistent 2-channel input buffer for the `_into` pair paths.
    scratch_pair: Tensor,
    /// Persistent 2-channel input-gradient buffer for the `_into` paths.
    scratch_grad_pair: Tensor,
}

impl Discriminator {
    const MAX_CHANNELS: usize = 128;

    /// Builds a pair discriminator for `size × size` clips.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is a power of two ≥ 8 and `base_channels > 0`.
    pub fn new(size: usize, base_channels: usize, seed: u64) -> Self {
        Self::with_input_channels(size, base_channels, seed, true)
    }

    /// Builds a *mask-only* discriminator (1 input channel) — the ablation
    /// baseline showing why pairs are necessary (Section 3.2, Eq. (6)).
    pub fn mask_only(size: usize, base_channels: usize, seed: u64) -> Self {
        Self::with_input_channels(size, base_channels, seed, false)
    }

    fn with_input_channels(size: usize, base_channels: usize, seed: u64, pair: bool) -> Self {
        assert!(
            size >= 8 && size.is_power_of_two(),
            "discriminator size {size} must be a power of two >= 8"
        );
        assert!(base_channels > 0, "base_channels must be positive");
        let stages = (size.trailing_zeros() - 2) as usize; // down to 4×4
        let mut net = Sequential::new();
        let mut ch = if pair { 2 } else { 1 };
        let mut next = base_channels;
        for s in 0..stages {
            net.push(Conv2d::new(ch, next, 4, 2, 1, seed.wrapping_add(s as u64 * 13 + 3)));
            if s > 0 {
                net.push(BatchNorm2d::new(next));
            }
            net.push(LeakyRelu::new(0.2));
            ch = next;
            next = (next * 2).min(Self::MAX_CHANNELS);
        }
        net.push(Flatten::new());
        net.push(Linear::new(ch * 16, 1, seed.wrapping_add(777)));
        net.push(Sigmoid::new());
        Discriminator {
            net,
            size,
            base_channels,
            pair_input: pair,
            scratch_pair: Tensor::zeros(&[1]),
            scratch_grad_pair: Tensor::zeros(&[1]),
        }
    }

    /// Input spatial size.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Channel width after the first stage.
    #[inline]
    pub fn base_channels(&self) -> usize {
        self.base_channels
    }

    /// Returns `true` for pair discriminators, `false` for the mask-only
    /// ablation.
    #[inline]
    pub fn takes_pairs(&self) -> bool {
        self.pair_input
    }

    /// Classifies `(target, mask)` pairs; both inputs `[N, 1, size, size]`.
    /// Returns probabilities `[N, 1]`.
    ///
    /// # Panics
    ///
    /// Panics for mask-only discriminators (use
    /// [`Discriminator::forward_mask`]) or on shape mismatch.
    pub fn forward_pair(&mut self, targets: &Tensor, masks: &Tensor, train: bool) -> Tensor {
        assert!(self.pair_input, "mask-only discriminator cannot take pairs");
        let x = Tensor::concat_channels(&[targets, masks]);
        self.net.forward(&x, train)
    }

    /// Allocation-free counterpart of [`Discriminator::forward_pair`]:
    /// stacks the pair into a persistent scratch buffer and writes the
    /// probabilities `[N, 1]` into `out`.
    ///
    /// # Panics
    ///
    /// Panics for mask-only discriminators or on shape mismatch.
    pub fn forward_pair_into(
        &mut self,
        targets: &Tensor,
        masks: &Tensor,
        out: &mut Tensor,
        train: bool,
    ) {
        assert!(self.pair_input, "mask-only discriminator cannot take pairs");
        self.scratch_pair.concat_channels_into(&[targets, masks]);
        self.net.forward_into(&self.scratch_pair, out, train);
    }

    /// Classifies bare masks (mask-only ablation).
    ///
    /// # Panics
    ///
    /// Panics for pair discriminators.
    pub fn forward_mask(&mut self, masks: &Tensor, train: bool) -> Tensor {
        assert!(!self.pair_input, "pair discriminator requires pairs");
        self.net.forward(masks, train)
    }

    /// Back-propagates a gradient with respect to the probabilities and
    /// returns the gradients with respect to `(targets, masks)`.
    ///
    /// # Panics
    ///
    /// Panics for mask-only discriminators.
    pub fn backward_pair(&mut self, grad_prob: &Tensor) -> (Tensor, Tensor) {
        assert!(self.pair_input, "mask-only discriminator cannot split pair gradients");
        let grad_input = self.net.backward(grad_prob);
        let parts = grad_input.split_channels(&[1, 1]);
        let mut it = parts.into_iter();
        // PANIC: split_channels(&[1, 1]) always yields exactly two parts.
        (it.next().expect("target grad"), it.next().expect("mask grad"))
    }

    /// Allocation-free backward through the pair discriminator that keeps
    /// only the mask-channel gradient (the generator update consumes
    /// ∂L/∂M; ∂L/∂Z_t is never used), written into `grad_mask`.
    ///
    /// # Panics
    ///
    /// Panics for mask-only discriminators.
    pub fn backward_pair_into(&mut self, grad_prob: &Tensor, grad_mask: &mut Tensor) {
        assert!(self.pair_input, "mask-only discriminator cannot split pair gradients");
        self.net.backward_into(grad_prob, Some(&mut self.scratch_grad_pair));
        self.scratch_grad_pair.extract_channels_into(1, 1, grad_mask);
    }

    /// Backward through the pair discriminator discarding the input
    /// gradient entirely — the discriminator-update path, where only the
    /// parameter gradients matter.
    ///
    /// # Panics
    ///
    /// Panics for mask-only discriminators.
    pub fn backward_pair_discard(&mut self, grad_prob: &Tensor) {
        assert!(self.pair_input, "mask-only discriminator cannot split pair gradients");
        self.net.backward_discard(grad_prob);
    }

    /// Back-propagates for the mask-only ablation, returning the mask
    /// gradient.
    pub fn backward_mask(&mut self, grad_prob: &Tensor) -> Tensor {
        assert!(!self.pair_input, "pair discriminator requires backward_pair");
        self.net.backward(grad_prob)
    }

    /// Access to the underlying network.
    pub fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.net.zero_grads();
    }

    /// Snapshot of all weights.
    pub fn export_params(&mut self) -> Vec<Tensor> {
        self.net.export_params()
    }

    /// Writes a weight snapshot into `out`, reusing its allocations.
    pub fn export_params_into(&mut self, out: &mut Vec<Tensor>) {
        self.net.export_params_into(out);
    }

    /// Restores a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LoadMismatch`] on layout disagreement.
    pub fn import_params(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        self.net.import_params(params)
    }

    /// Architecture summary.
    pub fn summary(&mut self) -> String {
        let kind = if self.pair_input { "pair" } else { "mask-only" };
        format!("Discriminator ({kind}, input {0}x{0}):\n{1}", self.size, self.net.summary())
    }
}

impl std::fmt::Debug for Discriminator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Discriminator")
            .field("size", &self.size)
            .field("pair_input", &self.pair_input)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganopc_nn::init;

    #[test]
    fn pair_probabilities_bounded() {
        let mut d = Discriminator::new(16, 4, 3);
        let t = init::uniform(&[2, 1, 16, 16], 0.0, 1.0, 1);
        let m = init::uniform(&[2, 1, 16, 16], 0.0, 1.0, 2);
        let p = d.forward_pair(&t, &m, true);
        assert_eq!(p.shape(), &[2, 1]);
        assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn backward_splits_target_and_mask_gradients() {
        let mut d = Discriminator::new(16, 4, 3);
        let t = init::uniform(&[1, 1, 16, 16], 0.0, 1.0, 1);
        let m = init::uniform(&[1, 1, 16, 16], 0.0, 1.0, 2);
        let p = d.forward_pair(&t, &m, true);
        let (gt, gm) = d.backward_pair(&Tensor::filled(p.shape(), 1.0));
        assert_eq!(gt.shape(), t.shape());
        assert_eq!(gm.shape(), m.shape());
        assert!(gm.max_abs() > 0.0, "mask gradient vanished");
    }

    #[test]
    fn discriminator_is_sensitive_to_the_mask_channel() {
        // Changing only the mask must change the output — the property the
        // pair construction exists for.
        let mut d = Discriminator::new(16, 4, 3);
        let t = init::uniform(&[1, 1, 16, 16], 0.0, 1.0, 1);
        let m1 = Tensor::zeros(&[1, 1, 16, 16]);
        let m2 = Tensor::filled(&[1, 1, 16, 16], 1.0);
        let p1 = d.forward_pair(&t, &m1, false);
        let p2 = d.forward_pair(&t, &m2, false);
        assert_ne!(p1.as_slice()[0], p2.as_slice()[0]);
    }

    #[test]
    fn mask_only_variant() {
        let mut d = Discriminator::mask_only(16, 4, 5);
        assert!(!d.takes_pairs());
        let m = init::uniform(&[2, 1, 16, 16], 0.0, 1.0, 2);
        let p = d.forward_mask(&m, true);
        assert_eq!(p.shape(), &[2, 1]);
        let gm = d.backward_mask(&Tensor::filled(p.shape(), 1.0));
        assert_eq!(gm.shape(), m.shape());
    }

    #[test]
    #[should_panic(expected = "cannot take pairs")]
    fn mask_only_rejects_pairs() {
        let mut d = Discriminator::mask_only(16, 4, 5);
        let t = Tensor::zeros(&[1, 1, 16, 16]);
        let _ = d.forward_pair(&t, &t, false);
    }

    #[test]
    fn into_paths_match_allocating_paths() {
        let t = init::uniform(&[2, 1, 16, 16], 0.0, 1.0, 1);
        let m = init::uniform(&[2, 1, 16, 16], 0.0, 1.0, 2);
        let gp = Tensor::from_vec(&[2, 1], vec![0.4, -0.7]);

        let mut d_old = Discriminator::new(16, 4, 3);
        let p_old = d_old.forward_pair(&t, &m, true);
        let (_, gm_old) = d_old.backward_pair(&gp);

        let mut d_new = Discriminator::new(16, 4, 3);
        let mut p_new = Tensor::zeros(&[1]);
        d_new.forward_pair_into(&t, &m, &mut p_new, true);
        let mut gm_new = Tensor::zeros(&[1]);
        d_new.backward_pair_into(&gp, &mut gm_new);

        assert_eq!(p_new, p_old);
        assert_eq!(gm_new, gm_old);

        // The discard path accumulates the same parameter gradients.
        let mut d_disc = Discriminator::new(16, 4, 3);
        let mut p = Tensor::zeros(&[1]);
        d_disc.forward_pair_into(&t, &m, &mut p, true);
        d_disc.backward_pair_discard(&gp);
        let mut grads_old = Vec::new();
        d_old.net_mut().visit_params(&mut |p| grads_old.push(p.grad.clone()));
        let mut grads_disc = Vec::new();
        d_disc.net_mut().visit_params(&mut |p| grads_disc.push(p.grad.clone()));
        assert_eq!(grads_disc, grads_old);
    }

    #[test]
    fn summary_reports_kind() {
        let mut d = Discriminator::new(16, 4, 0);
        assert!(d.summary().contains("pair"));
        let mut m = Discriminator::mask_only(16, 4, 0);
        assert!(m.summary().contains("mask-only"));
    }
}
