//! The GAN-OPC inference flow (paper Fig. 6): generator forward pass →
//! linear upscale → ILT refinement.

use crate::{field_to_tensor_into, tensor_to_field, GanOpcError, Generator};
use ganopc_ilt::{IltConfig, IltEngine};
use ganopc_litho::metrics::{DefectConfig, MaskMetrics};
use ganopc_litho::{Field, LithoModel, OpticalConfig};
use ganopc_nn::Tensor;
use ganopc_obs as obs;

/// Physical span of one clip frame, nm (the paper's 2048 nm × 2048 nm
/// layout frames) — the single place the flow's nm↔pixel scale is set.
pub const FRAME_NM: f64 = 2048.0;

/// Configuration of the end-to-end flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Network resolution (the paper pools 2048→256; we default lower so
    /// CPU experiments terminate).
    pub net_size: usize,
    /// Lithography evaluation resolution (a multiple of `net_size`).
    pub litho_size: usize,
    /// Channel width of the generator.
    pub base_channels: usize,
    /// Generator weight seed (ignored when weights are imported).
    pub seed: u64,
    /// ILT refinement settings (Fig. 6 right half).
    pub refinement: IltConfig,
    /// SOCS kernel count for the evaluation model.
    pub num_kernels: usize,
    /// Legal-correction halo around the target, nm: generator mask pixels
    /// farther than this from any target geometry are cleared before
    /// refinement. Production OPC constrains its correction region the same
    /// way; here it also guards the flow against generator artifacts in
    /// empty areas (which saturate the ILT sigmoid and refine very slowly).
    /// `None` disables the constraint.
    pub mask_halo_nm: Option<f64>,
}

impl FlowConfig {
    /// The scaled-reproduction default: 64-px network, 256-px lithography,
    /// mirroring the paper's 8× pooling ratio at a quarter of its absolute
    /// resolution.
    pub fn paper_scaled() -> Self {
        FlowConfig {
            net_size: 64,
            litho_size: 256,
            base_channels: 16,
            seed: 2018,
            refinement: IltConfig::refinement(),
            num_kernels: 24,
            mask_halo_nm: Some(150.0),
        }
    }

    /// Tiny configuration for tests and doc examples.
    pub fn fast() -> Self {
        FlowConfig {
            net_size: 32,
            litho_size: 64,
            base_channels: 4,
            seed: 7,
            refinement: IltConfig::fast(),
            num_kernels: 8,
            mask_halo_nm: Some(150.0),
        }
    }

    /// Pooling factor between the lithography frame and the network input.
    pub fn pool_factor(&self) -> usize {
        self.litho_size / self.net_size
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.net_size.is_power_of_two() || self.net_size < 8 {
            return Err(format!("net_size {} must be a power of two >= 8", self.net_size));
        }
        if !self.litho_size.is_power_of_two() || self.litho_size < self.net_size {
            return Err(format!(
                "litho_size {} must be a power of two >= net_size {}",
                self.litho_size, self.net_size
            ));
        }
        if !self.litho_size.is_multiple_of(self.net_size) {
            return Err("litho_size must be a multiple of net_size".into());
        }
        if let Some(h) = self.mask_halo_nm {
            if h.is_nan() || h <= 0.0 {
                return Err("mask_halo_nm must be positive".into());
            }
        }
        self.refinement.validate()
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig::paper_scaled()
    }
}

/// Result of one flow invocation on a target clip.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Final (refined, binary) mask at lithography resolution.
    pub mask: Field,
    /// The raw generator output at lithography resolution (pre-refinement).
    pub generator_mask: Field,
    /// Binary wafer image of the final mask at nominal dose.
    pub wafer: Field,
    /// Squared L2 error of the final wafer vs target, nm².
    pub l2_nm2: f64,
    /// Full printability metrics of the final mask.
    pub metrics: MaskMetrics,
    /// Generator forward-pass time, seconds (the paper reports ≈ 0.2 s).
    pub generator_runtime_s: f64,
    /// ILT refinement time, seconds.
    pub refinement_runtime_s: f64,
    /// End-to-end runtime, seconds (the "RT" column of Table 2).
    pub total_runtime_s: f64,
    /// Refinement iterations used.
    pub refinement_iterations: usize,
}

/// The GAN-OPC flow of Fig. 6: `target → G → upsample → ILT refine`.
///
/// Owns a generator and an ILT engine built on a lithography model at
/// evaluation resolution.
pub struct GanOpcFlow {
    config: FlowConfig,
    generator: Generator,
    engine: IltEngine,
    // Persistent network I/O buffers: serving a mask reuses these across
    // calls, so the generator stage performs no steady-state allocation.
    net_input: Tensor,
    net_mask: Tensor,
}

impl GanOpcFlow {
    /// Builds the flow with a freshly initialized (untrained) generator —
    /// load trained weights with [`GanOpcFlow::generator_mut`] +
    /// [`Generator::import_params`].
    ///
    /// # Errors
    ///
    /// Returns [`GanOpcError::Config`] for inconsistent sizes and propagates
    /// lithography model construction failures.
    pub fn new(config: FlowConfig) -> Result<Self, GanOpcError> {
        config.validate().map_err(GanOpcError::Config)?;
        let mut opt = OpticalConfig::default_32nm(FRAME_NM / config.litho_size as f64);
        opt.num_kernels = config.num_kernels;
        let model = LithoModel::new_cached(opt, config.litho_size, config.litho_size)?;
        let generator = Generator::new(config.net_size, config.base_channels, config.seed);
        let engine = IltEngine::new(model, config.refinement.clone());
        Ok(GanOpcFlow {
            config,
            generator,
            engine,
            net_input: Tensor::zeros(&[1]),
            net_mask: Tensor::zeros(&[1]),
        })
    }

    /// Builds the flow around an already-trained generator.
    ///
    /// # Errors
    ///
    /// Returns [`GanOpcError::Config`] when the generator size disagrees
    /// with `config.net_size`.
    pub fn with_generator(config: FlowConfig, generator: Generator) -> Result<Self, GanOpcError> {
        if generator.size() != config.net_size {
            return Err(GanOpcError::Config(format!(
                "generator size {} != flow net_size {}",
                generator.size(),
                config.net_size
            )));
        }
        let mut flow = GanOpcFlow::new(config)?;
        flow.generator = generator;
        Ok(flow)
    }

    /// The flow configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Mutable access to the generator (weight loading).
    pub fn generator_mut(&mut self) -> &mut Generator {
        &mut self.generator
    }

    /// The lithography model used for evaluation.
    pub fn model(&self) -> &LithoModel {
        self.engine.model()
    }

    /// Runs the flow on a target clip at lithography resolution.
    ///
    /// Steps (Fig. 6): average-pool the target to network resolution, run
    /// the generator, bilinearly upsample the quasi-optimal mask back to
    /// lithography resolution ("simple linear interpolation", Section 4),
    /// then refine with ILT initialized from that mask.
    ///
    /// # Errors
    ///
    /// Returns [`GanOpcError::Config`] when `target` is not
    /// `litho_size × litho_size`.
    pub fn optimize(&mut self, target: &Field) -> Result<FlowResult, GanOpcError> {
        let s = self.config.litho_size;
        if target.shape() != (s, s) {
            return Err(GanOpcError::Config(format!(
                "target shape {:?} != litho frame {s}x{s}",
                target.shape()
            )));
        }
        // The three runtime fields all come from obs spans, so the end-to-end
        // flow feeds the same histograms as every other subsystem and the
        // result struct needs no ad-hoc timers.
        let total_span = obs::span(obs::Span::FlowTotal);

        // Generator stage.
        let gen_span = obs::span(obs::Span::FlowGenerator);
        let factor = self.config.pool_factor();
        let pooled = if factor == 1 { target.clone() } else { target.avg_pool(factor) };
        field_to_tensor_into(&pooled, &mut self.net_input);
        self.generator.infer_into(&self.net_input, &mut self.net_mask);
        let mask_small_field = tensor_to_field(&self.net_mask, 0);
        let mut generator_mask =
            if factor == 1 { mask_small_field } else { mask_small_field.upsample_bilinear(factor) };
        if let Some(halo_nm) = self.config.mask_halo_nm {
            // Clear generator output outside the legal correction region.
            // The scale comes from the litho model itself, so the halo stays
            // correct if the model is ever built on a different frame.
            let px_nm = self.engine.model().pixel_nm();
            let radius = (halo_nm / px_nm).ceil() as usize;
            let legal = target.dilate_box(radius, 0.5);
            for (m, &l) in generator_mask.as_mut_slice().iter_mut().zip(legal.as_slice()) {
                *m *= l;
            }
        }
        // Feature-guarantee floor: every drawn feature must be present in
        // the refinement seed, else the resist sigmoid is saturated dark
        // there (Z ≈ 0 ⇒ Z(1−Z) ≈ 0 in Eq. (14)) and ILT cannot regrow a
        // feature the generator dropped.
        for (m, &t) in generator_mask.as_mut_slice().iter_mut().zip(target.as_slice()) {
            *m = m.max(0.6 * t);
        }
        let generator_runtime_s = gen_span.finish().as_secs_f64();

        // Guard rail: a non-finite generator output would feed NaN into
        // the refinement sigmoid and poison every iteration after it —
        // catch it here, where the responsible stage is still known.
        if generator_mask.as_slice().iter().any(|v| !v.is_finite()) {
            obs::counter_add(obs::Counter::IltGuardTrips, 1);
            return Err(GanOpcError::Config(
                "generator produced a non-finite mask; refusing to start ILT refinement".into(),
            ));
        }

        // ILT refinement stage.
        let refine_span = obs::span(obs::Span::FlowRefinement);
        let refined = self.engine.optimize_from(target, &generator_mask)?;
        let refinement_runtime_s = refine_span.finish().as_secs_f64();

        let metrics = MaskMetrics::evaluate(
            self.engine.model(),
            &refined.mask,
            target,
            &DefectConfig::default(),
        );
        Ok(FlowResult {
            l2_nm2: refined.binary_l2_nm2,
            mask: refined.mask,
            generator_mask,
            wafer: refined.wafer,
            metrics,
            generator_runtime_s,
            refinement_runtime_s,
            total_runtime_s: total_span.finish().as_secs_f64(),
            refinement_iterations: refined.iterations,
        })
    }
}

impl std::fmt::Debug for GanOpcFlow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GanOpcFlow").field("config", &self.config).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross_target(s: usize) -> Field {
        let mut t = Field::zeros(s, s);
        let (a, b) = (s / 2 - 2, s / 2 + 2);
        for y in s / 4..3 * s / 4 {
            for x in a..b {
                t.set(y, x, 1.0);
            }
        }
        for y in a..b {
            for x in s / 4..3 * s / 4 {
                t.set(y, x, 1.0);
            }
        }
        t
    }

    #[test]
    fn flow_produces_valid_result() {
        let mut cfg = FlowConfig::fast();
        cfg.refinement.max_iterations = 8;
        let mut flow = GanOpcFlow::new(cfg).unwrap();
        let target = cross_target(64);
        let result = flow.optimize(&target).unwrap();
        assert_eq!(result.mask.shape(), (64, 64));
        assert_eq!(result.generator_mask.shape(), (64, 64));
        assert!(result.mask.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(result.l2_nm2.is_finite() && result.l2_nm2 >= 0.0);
        assert!(result.generator_runtime_s >= 0.0);
        assert!(result.total_runtime_s >= result.refinement_runtime_s);
        assert!(result.refinement_iterations > 0);
        assert_eq!(result.metrics.l2_nm2, result.l2_nm2);
    }

    #[test]
    fn flow_rejects_wrong_target_size() {
        let mut flow = GanOpcFlow::new(FlowConfig::fast()).unwrap();
        assert!(matches!(flow.optimize(&Field::zeros(32, 32)), Err(GanOpcError::Config(_))));
    }

    #[test]
    fn config_validation() {
        assert!(FlowConfig::paper_scaled().validate().is_ok());
        assert!(FlowConfig::fast().validate().is_ok());
        let mut bad = FlowConfig::fast();
        bad.net_size = 48;
        assert!(bad.validate().is_err());
        let mut bad2 = FlowConfig::fast();
        bad2.litho_size = 16;
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn with_generator_checks_size() {
        let g = Generator::new(16, 4, 0);
        assert!(matches!(
            GanOpcFlow::with_generator(FlowConfig::fast(), g),
            Err(GanOpcError::Config(_))
        ));
    }

    #[test]
    fn pool_factor_computed() {
        assert_eq!(FlowConfig::fast().pool_factor(), 2);
        assert_eq!(FlowConfig::paper_scaled().pool_factor(), 4);
    }
}
