//! Hold-out validation of trained generators.
//!
//! The paper evaluates generalization on the ICCAD benchmark clips; this
//! module provides the machinery to do the same during development:
//! deterministic train/validation splits of an [`OpcDataset`] and a
//! generator evaluation report measuring both the mask regression error
//! (vs ILT references) and the true lithography error of the generated
//! masks.

use crate::{field_to_tensor_into, tensor_to_field, GanOpcError, Generator, OpcDataset};
use ganopc_litho::LithoModel;
use serde::{Deserialize, Serialize};

/// Deterministically splits a dataset into train/validation parts.
///
/// The split permutes instances by seed and assigns the first
/// `1 − holdout` fraction to training.
///
/// # Errors
///
/// Returns [`GanOpcError::Config`] unless `0 < holdout < 1` leaves at least
/// one instance on each side.
pub fn split_dataset(
    dataset: &OpcDataset,
    holdout: f64,
    seed: u64,
) -> Result<(OpcDataset, OpcDataset), GanOpcError> {
    if !(0.0..1.0).contains(&holdout) || holdout == 0.0 {
        return Err(GanOpcError::Config(format!("holdout {holdout} outside (0, 1)")));
    }
    let n = dataset.len();
    let n_val = ((n as f64 * holdout).round() as usize).clamp(1, n.saturating_sub(1));
    if n_val == 0 || n_val >= n {
        return Err(GanOpcError::Config(format!(
            "cannot split {n} instances with holdout {holdout}"
        )));
    }
    let order = dataset.epoch_order(seed);
    let pick = |indices: &[usize]| -> (Vec<_>, Vec<_>) {
        indices.iter().map(|&i| (dataset.targets()[i].clone(), dataset.masks()[i].clone())).unzip()
    };
    let (train_t, train_m) = pick(&order[..n - n_val]);
    let (val_t, val_m) = pick(&order[n - n_val..]);
    Ok((
        OpcDataset::from_pairs(dataset.size(), train_t, train_m)?,
        OpcDataset::from_pairs(dataset.size(), val_t, val_m)?,
    ))
}

/// Evaluation report for a generator over a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Instances evaluated.
    pub count: usize,
    /// Mean per-pixel squared error between generated and reference masks
    /// (the Fig. 7 quantity).
    pub mask_l2: f64,
    /// Mean lithography error `E = ‖Z − Z_t‖²` of the generated masks
    /// (Eq. (11)) — the quantity that actually matters downstream.
    pub litho_error: f64,
}

impl ValidationReport {
    /// Stores the report in a checkpoint under `{prefix}/…` sections.
    pub fn put_into(&self, ck: &mut ganopc_nn::checkpoint::Checkpoint, prefix: &str) {
        ck.put_u64(&format!("{prefix}/count"), self.count as u64);
        ck.put_f64(&format!("{prefix}/mask_l2"), self.mask_l2);
        ck.put_f64(&format!("{prefix}/litho_error"), self.litho_error);
    }

    /// Reads a report stored by [`ValidationReport::put_into`].
    ///
    /// # Errors
    ///
    /// Returns [`GanOpcError::Checkpoint`] for missing or mistyped sections.
    pub fn read_from(
        ck: &ganopc_nn::checkpoint::Checkpoint,
        prefix: &str,
    ) -> Result<Self, GanOpcError> {
        Ok(ValidationReport {
            count: ck.get_u64(&format!("{prefix}/count"))? as usize,
            mask_l2: ck.get_f64(&format!("{prefix}/mask_l2"))?,
            litho_error: ck.get_f64(&format!("{prefix}/litho_error"))?,
        })
    }
}

/// Evaluates a generator on every instance of a dataset (inference mode).
///
/// # Errors
///
/// Returns [`GanOpcError::Config`] on resolution mismatches and propagates
/// lithography failures.
pub fn evaluate_generator(
    generator: &mut Generator,
    model: &LithoModel,
    dataset: &OpcDataset,
) -> Result<ValidationReport, GanOpcError> {
    if generator.size() != dataset.size() {
        return Err(GanOpcError::Config(format!(
            "generator size {} != dataset size {}",
            generator.size(),
            dataset.size()
        )));
    }
    if model.shape() != (dataset.size(), dataset.size()) {
        return Err(GanOpcError::Config(format!(
            "litho frame {:?} != dataset size {}",
            model.shape(),
            dataset.size()
        )));
    }
    let mut mask_l2 = 0.0f64;
    let mut litho_error = 0.0f64;
    // Network I/O buffers hoisted out of the loop: `infer_into` reuses them,
    // so evaluation allocates per instance only for litho-side fields.
    let mut input = ganopc_nn::Tensor::zeros(&[1]);
    let mut generated = ganopc_nn::Tensor::zeros(&[1]);
    for (target, reference) in dataset.targets().iter().zip(dataset.masks()) {
        field_to_tensor_into(target, &mut input);
        generator.infer_into(&input, &mut generated);
        let mask = tensor_to_field(&generated, 0);
        mask_l2 += mask.squared_l2_distance(reference) / mask.len() as f64;
        let aerial = model.aerial_image(&mask);
        let z = model.relax(&aerial);
        litho_error += z.squared_l2_distance(target);
    }
    let n = dataset.len() as f64;
    Ok(ValidationReport {
        count: dataset.len(),
        mask_l2: mask_l2 / n,
        litho_error: litho_error / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganopc_ilt::IltConfig;
    use ganopc_litho::OpticalConfig;

    fn dataset() -> OpcDataset {
        OpcDataset::synthesize(32, 6, IltConfig::fast(), 77).unwrap()
    }

    fn model() -> LithoModel {
        let mut cfg = OpticalConfig::default_32nm(64.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 6;
        LithoModel::new(cfg, 32, 32).unwrap()
    }

    #[test]
    fn split_covers_every_instance_exactly_once() {
        let ds = dataset();
        let (train, val) = split_dataset(&ds, 0.34, 1).unwrap();
        assert_eq!(train.len() + val.len(), ds.len());
        assert_eq!(val.len(), 2);
        // No target appears in both halves.
        for t in val.targets() {
            assert!(!train.targets().contains(t), "leak across the split");
        }
        // Deterministic.
        let (train2, _) = split_dataset(&ds, 0.34, 1).unwrap();
        assert_eq!(train.targets(), train2.targets());
    }

    #[test]
    fn split_rejects_degenerate_fractions() {
        let ds = dataset();
        assert!(split_dataset(&ds, 0.0, 1).is_err());
        assert!(split_dataset(&ds, 1.0, 1).is_err());
        assert!(split_dataset(&ds, -0.5, 1).is_err());
    }

    #[test]
    fn evaluation_reports_finite_metrics() {
        let ds = dataset();
        let m = model();
        let mut g = Generator::new(32, 4, 3);
        let report = evaluate_generator(&mut g, &m, &ds).unwrap();
        assert_eq!(report.count, ds.len());
        assert!(report.mask_l2.is_finite() && report.mask_l2 >= 0.0);
        assert!(report.litho_error.is_finite() && report.litho_error >= 0.0);
    }

    #[test]
    fn pretraining_improves_validation_litho_error() {
        use crate::pretrain::{pretrain_generator, PretrainConfig};
        let ds = dataset();
        let (train, val) = split_dataset(&ds, 0.34, 9).unwrap();
        let m = model();
        let mut g = Generator::new(32, 4, 3);
        let before = evaluate_generator(&mut g, &m, &val).unwrap();
        let mut cfg = PretrainConfig::fast();
        cfg.iterations = 15;
        cfg.lr = 0.05;
        pretrain_generator(&mut g, &m, &train, &cfg).unwrap();
        let after = evaluate_generator(&mut g, &m, &val).unwrap();
        assert!(
            after.litho_error < before.litho_error,
            "pretraining did not generalize: {} -> {}",
            before.litho_error,
            after.litho_error
        );
    }

    #[test]
    fn evaluation_rejects_mismatched_sizes() {
        let ds = dataset();
        let m = model();
        let mut g = Generator::new(16, 4, 0);
        assert!(matches!(evaluate_generator(&mut g, &m, &ds), Err(GanOpcError::Config(_))));
    }
}
