//! GAN-OPC: lithography-guided generative adversarial mask optimization.
//!
//! This is the core crate of the reproduction — the paper's contribution
//! (Sections 3.1–3.4), built on the workspace substrates:
//!
//! * [`Generator`] — the encoder–decoder (auto-encoder style) network of
//!   Fig. 4 mapping a target clip to a quasi-optimal mask;
//! * [`Discriminator`] — the pair classifier of Section 3.2: it judges
//!   *(target, mask)* pairs, not masks alone, which is what makes the GAN
//!   learn a one-one target→mask mapping;
//! * [`GanTrainer`] — Algorithm 1: alternating minimization of the
//!   generator objective `−log D(Z_t, G(Z_t)) + α‖M* − G(Z_t)‖²` and the
//!   discriminator objective (Eq. (7)–(10));
//! * [`pretrain`] — Algorithm 2: ILT-guided pre-training, back-propagating
//!   the lithography error gradient (Eq. (14)) straight into the generator;
//! * [`dataset`] — the synthesized training library of Section 4: target
//!   clips from [`ganopc_geometry::synthesis`] with reference masks produced
//!   by the [`ganopc_ilt`] engine;
//! * [`GanOpcFlow`] — the inference flow of Fig. 6: generator forward pass,
//!   bilinear upscale, then a short ILT refinement.
//!
//! # Example
//!
//! ```no_run
//! use ganopc_core::{FlowConfig, GanOpcFlow};
//! use ganopc_litho::Field;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut flow = GanOpcFlow::new(FlowConfig::fast())?;
//! let target = Field::zeros(64, 64); // a real target clip in practice
//! let result = flow.optimize(&target)?;
//! println!("L2 = {} nm², runtime = {:.2}s", result.l2_nm2, result.total_runtime_s);
//! # Ok(())
//! # }
//! ```

pub mod dataset;
mod discriminator;
mod flow;
mod generator;
pub mod pretrain;
pub mod ring;
pub mod supervisor;
pub mod train;
pub mod validate;

pub use dataset::{EpochStream, OpcDataset};
pub use discriminator::Discriminator;
pub use flow::{FlowConfig, FlowResult, GanOpcFlow, FRAME_NM};
pub use generator::Generator;
pub use pretrain::{PretrainConfig, Pretrainer};
pub use ring::CheckpointRing;
pub use supervisor::{
    DivergenceError, DivergenceMonitor, DivergenceReason, SupervisorConfig, TrainSupervisor,
};
pub use train::{GanTrainer, StepStats, TrainConfig};
pub use validate::{evaluate_generator, split_dataset, ValidationReport};

use std::error::Error;
use std::fmt;

/// Errors from GAN-OPC training and inference.
#[derive(Debug)]
pub enum GanOpcError {
    /// Propagated lithography failure.
    Litho(ganopc_litho::LithoError),
    /// Propagated ILT failure.
    Ilt(ganopc_ilt::IltError),
    /// Propagated network failure.
    Nn(ganopc_nn::NnError),
    /// Checkpoint (de)serialization failure.
    Checkpoint(ganopc_nn::checkpoint::CheckpointError),
    /// Inconsistent configuration (sizes, pool factors, empty dataset...).
    Config(String),
    /// A supervised training run diverged past its recovery budget.
    Divergence(supervisor::DivergenceError),
}

impl fmt::Display for GanOpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GanOpcError::Litho(e) => write!(f, "lithography failure: {e}"),
            GanOpcError::Ilt(e) => write!(f, "ilt failure: {e}"),
            GanOpcError::Nn(e) => write!(f, "network failure: {e}"),
            GanOpcError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            GanOpcError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            GanOpcError::Divergence(e) => write!(f, "divergence failure: {e}"),
        }
    }
}

impl Error for GanOpcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GanOpcError::Litho(e) => Some(e),
            GanOpcError::Ilt(e) => Some(e),
            GanOpcError::Nn(e) => Some(e),
            GanOpcError::Checkpoint(e) => Some(e),
            GanOpcError::Config(_) => None,
            GanOpcError::Divergence(e) => Some(e),
        }
    }
}

impl From<ganopc_litho::LithoError> for GanOpcError {
    fn from(e: ganopc_litho::LithoError) -> Self {
        GanOpcError::Litho(e)
    }
}

impl From<ganopc_ilt::IltError> for GanOpcError {
    fn from(e: ganopc_ilt::IltError) -> Self {
        GanOpcError::Ilt(e)
    }
}

impl From<ganopc_nn::NnError> for GanOpcError {
    fn from(e: ganopc_nn::NnError) -> Self {
        GanOpcError::Nn(e)
    }
}

impl From<ganopc_nn::checkpoint::CheckpointError> for GanOpcError {
    fn from(e: ganopc_nn::checkpoint::CheckpointError) -> Self {
        GanOpcError::Checkpoint(e)
    }
}

impl From<supervisor::DivergenceError> for GanOpcError {
    fn from(e: supervisor::DivergenceError) -> Self {
        GanOpcError::Divergence(e)
    }
}

/// Converts a litho [`ganopc_litho::Field`] into a `[1, 1, H, W]` network
/// tensor.
pub fn field_to_tensor(field: &ganopc_litho::Field) -> ganopc_nn::Tensor {
    let (h, w) = field.shape();
    ganopc_nn::Tensor::from_vec(&[1, 1, h, w], field.as_slice().to_vec())
}

/// Buffer-reusing variant of [`field_to_tensor`]: writes the field into
/// `out` (resized to `[1, 1, H, W]` in place) without allocating once `out`
/// has the right capacity.
pub fn field_to_tensor_into(field: &ganopc_litho::Field, out: &mut ganopc_nn::Tensor) {
    let (h, w) = field.shape();
    out.resize(&[1, 1, h, w]);
    out.as_mut_slice().copy_from_slice(field.as_slice());
}

/// Converts batch item `n`, channel 0 of an `[N, 1, H, W]` tensor back into
/// a litho field.
///
/// # Panics
///
/// Panics if the tensor is not `[N, 1, H, W]` or `n` is out of range.
pub fn tensor_to_field(tensor: &ganopc_nn::Tensor, n: usize) -> ganopc_litho::Field {
    let (nn, c, h, w) = tensor.dims4();
    assert_eq!(c, 1, "expected a single-channel tensor");
    assert!(n < nn, "batch index {n} out of range {nn}");
    let plane = h * w;
    ganopc_litho::Field::from_vec(h, w, tensor.as_slice()[n * plane..(n + 1) * plane].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganopc_litho::Field;

    #[test]
    fn field_tensor_roundtrip() {
        let mut f = Field::zeros(4, 4);
        f.set(1, 2, 0.7);
        let t = field_to_tensor(&f);
        assert_eq!(t.shape(), &[1, 1, 4, 4]);
        let back = tensor_to_field(&t, 0);
        assert_eq!(back, f);
    }

    #[test]
    #[should_panic(expected = "single-channel")]
    fn tensor_to_field_rejects_multichannel() {
        let t = ganopc_nn::Tensor::zeros(&[1, 2, 4, 4]);
        let _ = tensor_to_field(&t, 0);
    }
}
