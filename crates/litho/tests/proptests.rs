//! Property-based tests for the lithography model.

use ganopc_litho::{Field, LithoModel, OpticalConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared small model — TCC decomposition is too costly per test case.
fn model() -> &'static LithoModel {
    static MODEL: OnceLock<LithoModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut cfg = OpticalConfig::default_32nm(64.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 6;
        LithoModel::new(cfg, 32, 32).expect("model")
    })
}

fn mask() -> impl Strategy<Value = Field> {
    prop::collection::vec(0.0f32..1.0, 32 * 32).prop_map(|v| Field::from_vec(32, 32, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Aerial intensity is nonnegative and bounded by a small multiple of
    /// the open-field intensity (≈1).
    #[test]
    fn aerial_intensity_physical(m in mask()) {
        let aerial = model().aerial_image(&m);
        prop_assert!(aerial.min() >= -1e-6);
        prop_assert!(aerial.max() < 3.0, "implausible intensity {}", aerial.max());
    }

    /// Quadratic homogeneity: I(αM) = α² I(M) for the bilinear Hopkins
    /// model (Eq. (2) is quadratic in the mask).
    #[test]
    fn aerial_quadratic_in_mask(m in mask(), alpha in 0.1f32..1.0) {
        let base = model().aerial_image(&m);
        let scaled = model().aerial_image(&m.map(|v| alpha * v));
        for (s, b) in scaled.as_slice().iter().zip(base.as_slice()) {
            let expect = alpha * alpha * b;
            prop_assert!((s - expect).abs() < 1e-3 + 1e-2 * expect.abs());
        }
    }

    /// Cyclic translation equivariance: shifting the mask shifts the image.
    #[test]
    fn aerial_translation_equivariant(m in mask(), dy in 0usize..32, dx in 0usize..32) {
        let base = model().aerial_image(&m);
        let mut shifted_mask = Field::zeros(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                shifted_mask.set((y + dy) % 32, (x + dx) % 32, m.get(y, x));
            }
        }
        let shifted = model().aerial_image(&shifted_mask);
        for y in 0..32 {
            for x in 0..32 {
                let a = base.get(y, x);
                let b = shifted.get((y + dy) % 32, (x + dx) % 32);
                prop_assert!((a - b).abs() < 1e-3, "at ({y},{x}): {a} vs {b}");
            }
        }
    }

    /// Printed area is monotone in dose.
    #[test]
    fn print_monotone_in_dose(m in mask()) {
        let mut last = -1.0f32;
        for dose in [0.8f32, 0.9, 1.0, 1.1, 1.2] {
            let area = model().print(&m, dose).sum();
            prop_assert!(area >= last);
            last = area;
        }
    }

    /// The relaxed wafer lies in (0, 1) and brackets the binary wafer.
    #[test]
    fn relaxation_brackets_binary(m in mask()) {
        let aerial = model().aerial_image(&m);
        let relaxed = model().relax(&aerial);
        prop_assert!(relaxed.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let binary = model().print_nominal(&m);
        for (r, b) in relaxed.as_slice().iter().zip(binary.as_slice()) {
            // Relaxed value is >= 0.5 exactly where the binary wafer is on.
            prop_assert_eq!(*r >= 0.5, *b >= 0.5);
        }
    }

    /// The lithography error of Eq. (11) is zero only against itself.
    #[test]
    fn gradient_error_consistency(m in mask()) {
        let result = model().gradient(&m, &model().print_nominal(&m)).unwrap();
        prop_assert!(result.error >= 0.0);
        prop_assert!(result.grad.as_slice().iter().all(|g| g.is_finite()));
    }
}
