//! Dense symmetric eigendecomposition (cyclic Jacobi).
//!
//! The TCC operator assembled in [`crate::tcc`] is a real symmetric
//! positive-semidefinite matrix of modest size (a few hundred rows — one per
//! in-pupil frequency sample). A cyclic Jacobi sweep is simple, numerically
//! robust and plenty fast at that scale, so we use it instead of pulling in
//! a linear-algebra dependency.

/// A dense, row-major, real symmetric matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// An `n × n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be nonzero");
        SymMatrix { n, data: vec![0.0; n * n] }
    }

    /// Dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sets both `(i, j)` and `(j, i)` to keep the matrix symmetric.
    #[inline]
    pub fn set_sym(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Largest absolute off-diagonal element.
    pub fn off_diagonal_norm(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.n {
            for j in i + 1..self.n {
                m = m.max(self.get(i, j).abs());
            }
        }
        m
    }
}

/// One eigenpair of a symmetric matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenPair {
    /// Eigenvalue.
    pub value: f64,
    /// Unit-norm eigenvector.
    pub vector: Vec<f64>,
}

/// Eigendecomposes a symmetric matrix with the cyclic Jacobi method,
/// returning all eigenpairs sorted by *descending* eigenvalue.
///
/// Convergence: sweeps run until the largest off-diagonal magnitude falls
/// below `tol · max|diag|` or `max_sweeps` is reached (30 sweeps are far more
/// than the ~10 a few-hundred-row PSD matrix needs).
///
/// ```
/// use ganopc_litho::jacobi::{eigendecompose, SymMatrix};
/// let mut m = SymMatrix::zeros(2);
/// m.set_sym(0, 0, 2.0);
/// m.set_sym(1, 1, 2.0);
/// m.set_sym(0, 1, 1.0);
/// let eig = eigendecompose(&m, 1e-12, 30);
/// assert!((eig[0].value - 3.0).abs() < 1e-9);
/// assert!((eig[1].value - 1.0).abs() < 1e-9);
/// ```
pub fn eigendecompose(matrix: &SymMatrix, tol: f64, max_sweeps: usize) -> Vec<EigenPair> {
    let n = matrix.dim();
    let mut a = matrix.clone();
    // Eigenvector accumulator, starts as identity.
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let diag_scale = (0..n).map(|i| a.get(i, i).abs()).fold(f64::MIN_POSITIVE, f64::max);

    for _sweep in 0..max_sweeps {
        if a.off_diagonal_norm() <= tol * diag_scale {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a.get(p, q);
                if apq.abs() <= tol * diag_scale * 1e-2 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                // Jacobi rotation angle.
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Update matrix A <- Jᵀ A J.
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set_sym(k, p, c * akp - s * akq);
                    a.set_sym(k, q, s * akp + c * akq);
                }
                // Fix the 2x2 block that the symmetric row/col update mangles.
                a.set_sym(p, p, app - t * apq);
                a.set_sym(q, q, aqq + t * apq);
                a.set_sym(p, q, 0.0);
                // Accumulate rotations into V.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<EigenPair> = (0..n)
        .map(|j| EigenPair { value: a.get(j, j), vector: (0..n).map(|i| v[i * n + j]).collect() })
        .collect();
    // PANIC: Jacobi rotations of a finite symmetric matrix keep the
    // diagonal finite, so eigenvalues are never NaN.
    pairs.sort_by(|x, y| y.value.partial_cmp(&x.value).expect("non-NaN eigenvalues"));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_from_rows(rows: &[&[f64]]) -> SymMatrix {
        let n = rows.len();
        let mut m = SymMatrix::zeros(n);
        for (i, r) in rows.iter().enumerate() {
            for (j, &x) in r.iter().enumerate() {
                m.set_sym(i, j, x);
            }
        }
        m
    }

    fn matvec(m: &SymMatrix, x: &[f64]) -> Vec<f64> {
        (0..m.dim()).map(|i| (0..m.dim()).map(|j| m.get(i, j) * x[j]).sum()).collect()
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let m = mat_from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let eig = eigendecompose(&m, 1e-14, 10);
        let values: Vec<f64> = eig.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        let m = mat_from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = eigendecompose(&m, 1e-14, 30);
        assert!((eig[0].value - 3.0).abs() < 1e-10);
        assert!((eig[1].value - 1.0).abs() < 1e-10);
        // Eigenvector of 3 is (1,1)/√2 up to sign.
        let v = &eig[0].vector;
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v[0] - v[1]).abs() < 1e-8);
    }

    #[test]
    fn eigen_equation_holds_random_psd() {
        // Build PSD matrix A = BᵀB from a deterministic pseudo-random B.
        let n = 24;
        let mut b = vec![0.0f64; n * n];
        let mut state = 0x1234_5678_u64;
        for x in b.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *x = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
        }
        let mut a = SymMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                let dot: f64 = (0..n).map(|k| b[k * n + i] * b[k * n + j]).sum();
                a.set_sym(i, j, dot);
            }
        }
        let eig = eigendecompose(&a, 1e-13, 50);
        // All eigenvalues nonnegative (PSD), sorted descending.
        for w in eig.windows(2) {
            assert!(w[0].value >= w[1].value - 1e-9);
        }
        for pair in &eig {
            assert!(pair.value > -1e-8, "negative eigenvalue {}", pair.value);
            // A v ≈ λ v
            let av = matvec(&a, &pair.vector);
            for (avi, vi) in av.iter().zip(&pair.vector) {
                assert!((avi - pair.value * vi).abs() < 1e-6, "λ={}", pair.value);
            }
            // Unit norm.
            let norm: f64 = pair.vector.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-8);
        }
        // Trace preserved.
        let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
        let eigsum: f64 = eig.iter().map(|p| p.value).sum();
        assert!((trace - eigsum).abs() < 1e-6 * trace.abs().max(1.0));
    }

    #[test]
    fn eigenvectors_are_orthogonal() {
        let m = mat_from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 1.0]]);
        let eig = eigendecompose(&m, 1e-14, 50);
        for i in 0..3 {
            for j in i + 1..3 {
                let dot: f64 = eig[i].vector.iter().zip(&eig[j].vector).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-8, "vectors {i},{j} not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn off_diagonal_norm_reports_max() {
        let m = mat_from_rows(&[&[1.0, -5.0], &[-5.0, 1.0]]);
        assert_eq!(m.off_diagonal_norm(), 5.0);
    }
}
