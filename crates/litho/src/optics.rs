//! Optical system description.

use serde::{Deserialize, Serialize};

/// Parameters of the partially coherent projection system and of the
/// simulation grid.
///
/// Defaults model a 193 nm immersion scanner with annular illumination —
/// the technology the ICCAD-2013 contest kit (32 nm M1) represents.
///
/// ```
/// use ganopc_litho::OpticalConfig;
/// let cfg = OpticalConfig::default_32nm(16.0);
/// assert_eq!(cfg.wavelength_nm, 193.0);
/// assert!(cfg.kernel_size % 2 == 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpticalConfig {
    /// Exposure wavelength, nm (ArF: 193).
    pub wavelength_nm: f64,
    /// Numerical aperture of the projection lens (immersion: up to 1.35).
    pub numerical_aperture: f64,
    /// Inner radius of the annular source, as a fraction of the pupil.
    pub sigma_inner: f64,
    /// Outer radius of the annular source, as a fraction of the pupil.
    pub sigma_outer: f64,
    /// Simulation pixel pitch, nm/pixel.
    pub pixel_nm: f64,
    /// Spatial support of each SOCS kernel, pixels (odd).
    pub kernel_size: usize,
    /// Number of SOCS kernels kept from the TCC decomposition
    /// (paper: `N_h = 24`).
    pub num_kernels: usize,
    /// Pupil-frequency samples per axis for TCC assembly (odd).
    pub pupil_grid: usize,
    /// Defocus Δz in nm. Nonzero defocus makes the pupil complex (paraxial
    /// quadratic phase) and degrades image contrast — used for focus-aware
    /// process windows.
    pub defocus_nm: f64,
}

impl OpticalConfig {
    /// 193 nm immersion, NA 1.35, annulus σ = 0.6/0.9, 24 kernels — scaled
    /// to a given simulation pixel pitch.
    ///
    /// The kernel support is sized to ≈ ±2.5·λ/NA around the center (the
    /// useful extent of the point-spread function), clamped to at least
    /// 9 pixels, and forced odd.
    pub fn default_32nm(pixel_nm: f64) -> Self {
        assert!(pixel_nm > 0.0, "pixel pitch must be positive");
        let wavelength_nm = 193.0;
        let numerical_aperture = 1.35;
        let psf_extent_nm = 2.5 * wavelength_nm / numerical_aperture;
        let half = (psf_extent_nm / pixel_nm).ceil() as usize;
        let kernel_size = (2 * half + 1).max(9);
        OpticalConfig {
            wavelength_nm,
            numerical_aperture,
            sigma_inner: 0.6,
            sigma_outer: 0.9,
            pixel_nm,
            kernel_size,
            num_kernels: 24,
            pupil_grid: 15,
            defocus_nm: 0.0,
        }
    }

    /// The same system at a defocus offset Δz (nm).
    pub fn with_defocus(mut self, defocus_nm: f64) -> Self {
        self.defocus_nm = defocus_nm;
        self
    }

    /// Pupil cutoff frequency NA/λ, cycles per nm.
    #[inline]
    pub fn cutoff_per_nm(&self) -> f64 {
        self.numerical_aperture / self.wavelength_nm
    }

    /// Rayleigh-style minimum printable half-pitch `0.25·λ/NA`, nm.
    /// (k₁ = 0.25 is the theoretical single-exposure limit.)
    #[inline]
    pub fn resolution_limit_nm(&self) -> f64 {
        0.25 * self.wavelength_nm / self.numerical_aperture
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.wavelength_nm <= 0.0 {
            return Err("wavelength must be positive".into());
        }
        if self.numerical_aperture <= 0.0 {
            return Err("numerical aperture must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.sigma_inner)
            || self.sigma_outer <= self.sigma_inner
            || self.sigma_outer > 1.0
        {
            return Err(format!(
                "annulus [{}, {}] must satisfy 0 <= inner < outer <= 1",
                self.sigma_inner, self.sigma_outer
            ));
        }
        if self.pixel_nm <= 0.0 {
            return Err("pixel pitch must be positive".into());
        }
        if self.kernel_size.is_multiple_of(2) || self.kernel_size < 3 {
            return Err(format!("kernel size {} must be odd and >= 3", self.kernel_size));
        }
        if self.num_kernels == 0 {
            return Err("at least one SOCS kernel required".into());
        }
        if self.pupil_grid.is_multiple_of(2) || self.pupil_grid < 5 {
            return Err(format!("pupil grid {} must be odd and >= 5", self.pupil_grid));
        }
        if !self.defocus_nm.is_finite() || self.defocus_nm.abs() > 500.0 {
            return Err(format!("defocus {} nm outside the paraxial range", self.defocus_nm));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        for px in [1.0, 4.0, 8.0, 16.0, 32.0] {
            let cfg = OpticalConfig::default_32nm(px);
            assert!(cfg.validate().is_ok(), "pixel {px}: {:?}", cfg.validate());
        }
    }

    #[test]
    fn kernel_support_scales_with_pixel_pitch() {
        let fine = OpticalConfig::default_32nm(4.0);
        let coarse = OpticalConfig::default_32nm(16.0);
        assert!(fine.kernel_size > coarse.kernel_size);
        assert_eq!(fine.kernel_size % 2, 1);
        assert_eq!(coarse.kernel_size % 2, 1);
    }

    #[test]
    fn cutoff_and_resolution() {
        let cfg = OpticalConfig::default_32nm(8.0);
        assert!((cfg.cutoff_per_nm() - 1.35 / 193.0).abs() < 1e-12);
        // ~35.7 nm half-pitch limit: prints 80 nm M1 comfortably.
        assert!((cfg.resolution_limit_nm() - 35.74).abs() < 0.1);
    }

    #[test]
    fn validation_catches_bad_annulus() {
        let mut cfg = OpticalConfig::default_32nm(8.0);
        cfg.sigma_inner = 0.9;
        cfg.sigma_outer = 0.6;
        assert!(cfg.validate().is_err());
        cfg.sigma_inner = 0.2;
        cfg.sigma_outer = 1.2;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_even_kernel() {
        let mut cfg = OpticalConfig::default_32nm(8.0);
        cfg.kernel_size = 10;
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "pixel pitch must be positive")]
    fn rejects_nonpositive_pixel() {
        let _ = OpticalConfig::default_32nm(0.0);
    }

    #[test]
    fn defocus_builder_and_validation() {
        let cfg = OpticalConfig::default_32nm(8.0).with_defocus(60.0);
        assert_eq!(cfg.defocus_nm, 60.0);
        assert!(cfg.validate().is_ok());
        let bad = OpticalConfig::default_32nm(8.0).with_defocus(1e4);
        assert!(bad.validate().is_err());
    }
}
