//! On-disk caching of derived SOCS kernel stacks.
//!
//! Deriving a kernel stack means assembling and eigendecomposing the TCC —
//! the dominant cost of [`crate::LithoModel`] construction (seconds at the
//! default pupil grid). The stack depends only on the [`OpticalConfig`], so
//! it is cached to disk keyed by a hash of the configuration; experiment
//! binaries that build many models of the same optics pay the eigensolve
//! once per process *and* once per machine.

use crate::optics::OpticalConfig;
use crate::socs::{SocsKernel, SocsKernels};
use ganopc_fft::Complex;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// Serializable image of a kernel stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StackImage {
    /// Hash key of the generating configuration (collision check).
    config_key: u64,
    kernel_size: usize,
    pixel_nm: f64,
    /// Per kernel: weight + interleaved (re, im) taps.
    kernels: Vec<(f32, Vec<(f32, f32)>)>,
}

/// A stable, quantized fingerprint of an optical configuration.
///
/// Floats are quantized to 1e-9 so that configurations equal up to noise
/// share a cache entry, and the hash is FNV-1a over the quantized fields
/// (stable across platforms and runs, unlike `DefaultHasher`).
pub fn config_key(cfg: &OpticalConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    let q = |f: f64| (f * 1e9).round() as i64 as u64;
    mix(q(cfg.wavelength_nm));
    mix(q(cfg.numerical_aperture));
    mix(q(cfg.sigma_inner));
    mix(q(cfg.sigma_outer));
    mix(q(cfg.pixel_nm));
    mix(cfg.kernel_size as u64);
    mix(cfg.num_kernels as u64);
    mix(cfg.pupil_grid as u64);
    mix(q(cfg.defocus_nm));
    h
}

/// Runtime cache-directory override installed by [`set_cache_dir`]
/// (`None` = unset, fall through to the environment/default directory).
static OVERRIDE: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Directory from `GANOPC_CACHE_DIR` / `<system temp>`, resolved once:
/// `std::env::var_os` allocates an `OsString` and takes the process env
/// lock, and [`default_cache_dir`] sits on every model-construction
/// cache lookup (mirrors `pool::max_threads`).
static ENV_DIR: OnceLock<PathBuf> = OnceLock::new();

/// Default cache directory: `$GANOPC_CACHE_DIR` or
/// `<system temp>/ganopc-kernel-cache`.
///
/// A [`set_cache_dir`] override wins; otherwise the environment variable
/// is read **once** per process and the resolved path is cached.
pub fn default_cache_dir() -> PathBuf {
    if let Ok(guard) = OVERRIDE.lock() {
        if let Some(dir) = guard.as_ref() {
            return dir.clone();
        }
    }
    ENV_DIR
        .get_or_init(|| {
            std::env::var_os("GANOPC_CACHE_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| std::env::temp_dir().join("ganopc-kernel-cache"))
        })
        .clone()
}

/// Overrides [`default_cache_dir`] for the whole process (`None` restores
/// the environment/default directory). This is how tests redirect the
/// cache at runtime, since the environment variable is only consulted
/// once (mirrors `pool::set_max_threads`).
pub fn set_cache_dir(dir: Option<PathBuf>) {
    if let Ok(mut guard) = OVERRIDE.lock() {
        *guard = dir;
    }
}

fn cache_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("socs-{key:016x}.bin"))
}

fn encode(image: &StackImage) -> Vec<u8> {
    // Simple length-prefixed binary layout (matches the checkpoint style):
    // key u64 | ksize u64 | pixel f64 | count u32 | per kernel:
    //   weight f32 | taps u32 | taps × (f32, f32).
    let mut out = Vec::new();
    out.extend_from_slice(b"GANOPCSK");
    out.extend_from_slice(&image.config_key.to_le_bytes());
    out.extend_from_slice(&(image.kernel_size as u64).to_le_bytes());
    out.extend_from_slice(&image.pixel_nm.to_le_bytes());
    out.extend_from_slice(&(image.kernels.len() as u32).to_le_bytes());
    for (w, taps) in &image.kernels {
        out.extend_from_slice(&w.to_le_bytes());
        out.extend_from_slice(&(taps.len() as u32).to_le_bytes());
        for (re, im) in taps {
            out.extend_from_slice(&re.to_le_bytes());
            out.extend_from_slice(&im.to_le_bytes());
        }
    }
    out
}

fn decode(bytes: &[u8]) -> Option<StackImage> {
    let mut cur = 0usize;
    let take = |cur: &mut usize, n: usize| -> Option<&[u8]> {
        let end = cur.checked_add(n)?;
        if end > bytes.len() {
            return None;
        }
        let s = &bytes[*cur..end];
        *cur = end;
        Some(s)
    };
    if take(&mut cur, 8)? != b"GANOPCSK" {
        return None;
    }
    let config_key = u64::from_le_bytes(take(&mut cur, 8)?.try_into().ok()?);
    let kernel_size = u64::from_le_bytes(take(&mut cur, 8)?.try_into().ok()?) as usize;
    let pixel_nm = f64::from_le_bytes(take(&mut cur, 8)?.try_into().ok()?);
    let count = u32::from_le_bytes(take(&mut cur, 4)?.try_into().ok()?) as usize;
    if count == 0 || count > 1024 {
        return None;
    }
    let mut kernels = Vec::with_capacity(count);
    for _ in 0..count {
        let w = f32::from_le_bytes(take(&mut cur, 4)?.try_into().ok()?);
        let ntaps = u32::from_le_bytes(take(&mut cur, 4)?.try_into().ok()?) as usize;
        if ntaps != kernel_size * kernel_size {
            return None;
        }
        let raw = take(&mut cur, 8 * ntaps)?;
        let taps: Vec<(f32, f32)> = raw
            .chunks_exact(8)
            .map(|c| {
                (
                    // PANIC: chunks_exact(8) yields exactly 8 bytes per chunk.
                    f32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
                    // PANIC: chunks_exact(8) yields exactly 8 bytes per chunk.
                    f32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
                )
            })
            .collect();
        kernels.push((w, taps));
    }
    if cur != bytes.len() {
        return None;
    }
    Some(StackImage { config_key, kernel_size, pixel_nm, kernels })
}

fn to_image(cfg: &OpticalConfig, stack: &SocsKernels) -> StackImage {
    StackImage {
        config_key: config_key(cfg),
        kernel_size: stack.kernel_size(),
        pixel_nm: stack.pixel_nm(),
        kernels: stack
            .kernels()
            .iter()
            .map(|k| (k.weight, k.taps.iter().map(|c| (c.re, c.im)).collect()))
            .collect(),
    }
}

fn from_image(image: StackImage) -> SocsKernels {
    let kernels = image
        .kernels
        .into_iter()
        .map(|(weight, taps)| SocsKernel {
            weight,
            taps: taps.into_iter().map(|(re, im)| Complex::new(re, im)).collect(),
        })
        .collect();
    SocsKernels::from_parts(image.kernel_size, image.pixel_nm, kernels)
}

/// Loads the kernel stack for `cfg` from `dir`, deriving and storing it on
/// a miss. Corrupt or mismatched cache entries are silently rederived
/// (and overwritten); cache I/O failures fall back to derivation.
pub fn load_or_derive(cfg: &OpticalConfig, dir: &Path) -> SocsKernels {
    let key = config_key(cfg);
    let path = cache_path(dir, key);
    if let Ok(bytes) = std::fs::read(&path) {
        if let Some(image) = decode(&bytes) {
            if image.config_key == key {
                return from_image(image);
            }
        }
    }
    let stack = SocsKernels::from_config(cfg);
    if std::fs::create_dir_all(dir).is_ok() {
        // Atomic write: a crash mid-store must not leave a truncated blob
        // that every later process re-reads, rejects, and rewrites.
        let _ = ganopc_geometry::io::write_atomic(&path, &encode(&to_image(cfg, &stack)));
    }
    stack
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> OpticalConfig {
        let mut c = OpticalConfig::default_32nm(32.0);
        c.pupil_grid = 11;
        c.num_kernels = 6;
        c
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ganopc-cache-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn stacks_equal(a: &SocsKernels, b: &SocsKernels) -> bool {
        a.kernel_size() == b.kernel_size()
            && a.len() == b.len()
            && a.kernels()
                .iter()
                .zip(b.kernels())
                .all(|(x, y)| x.weight == y.weight && x.taps == y.taps)
    }

    #[test]
    fn cache_dir_override_wins_then_restores() {
        let dir = temp_dir("override");
        set_cache_dir(Some(dir.clone()));
        assert_eq!(default_cache_dir(), dir);
        set_cache_dir(None);
        // Back on the cached env/default resolution, which is stable for
        // the life of the process.
        let first = default_cache_dir();
        assert_ne!(first, dir);
        assert_eq!(first, default_cache_dir());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keys_distinguish_configs() {
        let a = fast_cfg();
        let mut b = fast_cfg();
        b.defocus_nm = 40.0;
        let mut c = fast_cfg();
        c.num_kernels = 8;
        assert_ne!(config_key(&a), config_key(&b));
        assert_ne!(config_key(&a), config_key(&c));
        assert_eq!(config_key(&a), config_key(&fast_cfg()));
    }

    #[test]
    fn roundtrip_through_cache_file() {
        let dir = temp_dir("roundtrip");
        let cfg = fast_cfg();
        let derived = load_or_derive(&cfg, &dir);
        // Second call must hit the file and reproduce the stack exactly.
        assert!(cache_path(&dir, config_key(&cfg)).exists());
        let cached = load_or_derive(&cfg, &dir);
        assert!(stacks_equal(&derived, &cached));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_rederived() {
        let dir = temp_dir("corrupt");
        let cfg = fast_cfg();
        let derived = load_or_derive(&cfg, &dir);
        let path = cache_path(&dir, config_key(&cfg));
        std::fs::write(&path, b"garbage").unwrap();
        let recovered = load_or_derive(&cfg, &dir);
        assert!(stacks_equal(&derived, &recovered));
        // And the file was repaired.
        let cached = load_or_derive(&cfg, &dir);
        assert!(stacks_equal(&derived, &cached));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn encode_decode_is_exact() {
        let cfg = fast_cfg();
        let stack = SocsKernels::from_config(&cfg);
        let image = to_image(&cfg, &stack);
        let decoded = decode(&encode(&image)).expect("decodable");
        assert_eq!(decoded.config_key, image.config_key);
        assert_eq!(decoded.kernels.len(), image.kernels.len());
        assert_eq!(decoded.kernels, image.kernels);
    }

    #[test]
    fn truncated_blobs_rejected() {
        let cfg = fast_cfg();
        let stack = SocsKernels::from_config(&cfg);
        let bytes = encode(&to_image(&cfg, &stack));
        for cut in [4usize, 20, bytes.len() - 3] {
            assert!(decode(&bytes[..cut]).is_none(), "cut {cut} accepted");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode(&padded).is_none());
    }
}
