//! Transmission-cross-coefficient (TCC) assembly and decomposition.
//!
//! Hopkins' formulation of partially coherent imaging [19 in the paper]
//! expresses the aerial image through the 4-D TCC operator
//!
//! ```text
//! TCC(f₁, f₂) = ∫ J(s) · P(s + f₁) · P*(s + f₂) ds
//! ```
//!
//! where `J` is the source intensity distribution and `P` the pupil
//! function. Sampling mask frequencies `f` on a grid restricted to the pupil
//! disk turns `TCC` into a Hermitian PSD matrix whose leading eigenpairs
//! give the SOCS kernels of Eq. (2) — the same construction Cobb's thesis
//! [20 in the paper] uses to derive production OPC kernels.
//!
//! At nominal focus the pupil is real, the TCC is real symmetric and a
//! plain Jacobi sweep suffices. With defocus the pupil carries a quadratic
//! phase, the TCC becomes complex Hermitian, and we eigendecompose it
//! through the standard real embedding `[[A, −B], [B, A]]` of `H = A + iB`.

use crate::jacobi::{eigendecompose, SymMatrix};
use crate::optics::OpticalConfig;

/// A frequency sample inside the pupil disk, in normalized pupil coordinates
/// (cutoff = 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqSample {
    /// Normalized x-frequency.
    pub ux: f64,
    /// Normalized y-frequency.
    pub uy: f64,
}

/// The decomposed TCC: frequency samples plus eigenpairs over them.
#[derive(Debug, Clone)]
pub struct TccDecomposition {
    /// Frequency samples the operator was built on.
    pub samples: Vec<FreqSample>,
    /// Eigenvalues, descending (all ≥ 0 up to rounding).
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors; `eigenvectors[k][j]` is the complex `(re, im)`
    /// coefficient of sample `j` in kernel `k`. Imaginary parts are zero at
    /// nominal focus.
    pub eigenvectors: Vec<Vec<(f64, f64)>>,
}

/// Complex pupil at a normalized frequency: circular aperture with the
/// paraxial defocus phase `exp(iπ·Δz·NA²·|u|²/λ)`.
#[inline]
fn pupil(cfg: &OpticalConfig, ux: f64, uy: f64) -> (f64, f64) {
    let r2 = ux * ux + uy * uy;
    if r2 > 1.0 {
        return (0.0, 0.0);
    }
    if cfg.defocus_nm == 0.0 {
        return (1.0, 0.0);
    }
    let na = cfg.numerical_aperture;
    let phase = std::f64::consts::PI * cfg.defocus_nm * na * na * r2 / cfg.wavelength_nm;
    (phase.cos(), phase.sin())
}

/// Enumerates the normalized frequency grid samples inside the pupil disk.
///
/// The grid has `cfg.pupil_grid` samples per axis spanning `[-1, 1]`.
pub fn pupil_samples(cfg: &OpticalConfig) -> Vec<FreqSample> {
    let n = cfg.pupil_grid;
    let half = (n / 2) as f64;
    let mut samples = Vec::new();
    for iy in 0..n {
        for ix in 0..n {
            let ux = (ix as f64 - half) / half;
            let uy = (iy as f64 - half) / half;
            if ux * ux + uy * uy <= 1.0 + 1e-12 {
                samples.push(FreqSample { ux, uy });
            }
        }
    }
    samples
}

/// Annular source sample points with weights, normalized to unit total.
fn source_samples(cfg: &OpticalConfig) -> Vec<(f64, f64, f64)> {
    // Sample the annulus on a grid fine enough to resolve its ring width.
    let n = (2 * cfg.pupil_grid + 1).max(21);
    let half = (n / 2) as f64;
    let mut pts = Vec::new();
    let (s0, s1) = (cfg.sigma_inner, cfg.sigma_outer);
    for iy in 0..n {
        for ix in 0..n {
            let sx = (ix as f64 - half) / half; // spans [-1, 1]
            let sy = (iy as f64 - half) / half;
            let r = (sx * sx + sy * sy).sqrt();
            if r >= s0 - 1e-12 && r <= s1 + 1e-12 {
                pts.push((sx, sy, 1.0));
            }
        }
    }
    assert!(!pts.is_empty(), "annulus too thin for the source grid");
    let total: f64 = pts.iter().map(|p| p.2).sum();
    for p in &mut pts {
        p.2 /= total;
    }
    pts
}

/// Assembles the Hermitian TCC over the in-pupil frequency samples as real
/// and imaginary parts `H = A + iB` (`A` symmetric, `B` antisymmetric; `B`
/// is zero at nominal focus).
pub fn build_tcc(cfg: &OpticalConfig) -> (Vec<FreqSample>, SymMatrix, Vec<f64>) {
    let samples = pupil_samples(cfg);
    let source = source_samples(cfg);
    let n = samples.len();
    let mut re = SymMatrix::zeros(n);
    // Antisymmetric imaginary part stored dense row-major.
    let mut im = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i..n {
            let (fi, fj) = (samples[i], samples[j]);
            let mut acc_re = 0.0;
            let mut acc_im = 0.0;
            for &(sx, sy, wgt) in &source {
                let (p1r, p1i) = pupil(cfg, sx + fi.ux, sy + fi.uy);
                let (p2r, p2i) = pupil(cfg, sx + fj.ux, sy + fj.uy);
                // J · P(s+f1) · conj(P(s+f2))
                acc_re += wgt * (p1r * p2r + p1i * p2i);
                acc_im += wgt * (p1i * p2r - p1r * p2i);
            }
            re.set_sym(i, j, acc_re);
            im[i * n + j] = acc_im;
            im[j * n + i] = -acc_im;
        }
    }
    (samples, re, im)
}

/// Builds and eigendecomposes the TCC for an optical configuration.
///
/// Returns at most `cfg.num_kernels` leading eigenpairs; eigenvalues below
/// `1e-9` of the largest are dropped (they contribute nothing to the image).
///
/// ```
/// use ganopc_litho::{optics::OpticalConfig, tcc::decompose};
/// let cfg = OpticalConfig::default_32nm(16.0);
/// let dec = decompose(&cfg);
/// assert!(!dec.eigenvalues.is_empty());
/// assert!(dec.eigenvalues.windows(2).all(|w| w[0] >= w[1]));
/// ```
pub fn decompose(cfg: &OpticalConfig) -> TccDecomposition {
    let (samples, re, im) = build_tcc(cfg);
    let n = samples.len();
    let hermitian = im.iter().any(|&v| v.abs() > 1e-14);

    let (values, vectors): (Vec<f64>, Vec<Vec<(f64, f64)>>) = if !hermitian {
        let pairs = eigendecompose(&re, 1e-12, 40);
        let values = pairs.iter().map(|p| p.value).collect();
        let vectors =
            pairs.into_iter().map(|p| p.vector.into_iter().map(|x| (x, 0.0)).collect()).collect();
        (values, vectors)
    } else {
        // Real embedding of H = A + iB:  M = [[A, -B], [B, A]], size 2n.
        // Each eigenvalue of H appears twice in M; the eigenvector halves
        // (x; y) recombine into the complex eigenvector v = x + iy.
        let mut m = SymMatrix::zeros(2 * n);
        for i in 0..n {
            for j in 0..n {
                let a = re.get(i, j);
                let b = im[i * n + j];
                m.set_sym(i, j, a);
                m.set_sym(n + i, n + j, a);
                // -B in the upper-right block; B in the lower-left. M is
                // symmetric because B is antisymmetric.
                if i <= j {
                    m.set_sym(i, n + j, -b);
                    m.set_sym(j, n + i, b);
                }
            }
        }
        let pairs = eigendecompose(&m, 1e-12, 60);
        // Deduplicate the doubled spectrum: walk in descending order and
        // skip every second member of each (numerically) equal pair.
        let mut values = Vec::new();
        let mut vectors: Vec<Vec<(f64, f64)>> = Vec::new();
        let mut skip_next_match: Option<f64> = None;
        for p in pairs {
            if let Some(prev) = skip_next_match {
                if (p.value - prev).abs() <= 1e-9 * prev.abs().max(1.0) {
                    skip_next_match = None;
                    continue;
                }
            }
            skip_next_match = Some(p.value);
            values.push(p.value);
            vectors.push((0..n).map(|i| (p.vector[i], p.vector[n + i])).collect());
        }
        (values, vectors)
    };

    let lead = values.first().copied().unwrap_or(0.0).max(f64::MIN_POSITIVE);
    let mut eigenvalues = Vec::new();
    let mut eigenvectors = Vec::new();
    for (v, vec) in values.into_iter().zip(vectors) {
        if eigenvalues.len() == cfg.num_kernels || v <= 1e-9 * lead {
            break;
        }
        eigenvalues.push(v);
        eigenvectors.push(vec);
    }
    TccDecomposition { samples, eigenvalues, eigenvectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OpticalConfig {
        let mut c = OpticalConfig::default_32nm(16.0);
        c.pupil_grid = 11; // keep tests fast
        c
    }

    #[test]
    fn pupil_samples_inside_disk() {
        let s = pupil_samples(&cfg());
        assert!(!s.is_empty());
        for f in &s {
            assert!(f.ux * f.ux + f.uy * f.uy <= 1.0 + 1e-9);
        }
        // Disk fill factor of the bounding square ≈ π/4.
        let total = 11 * 11;
        let ratio = s.len() as f64 / total as f64;
        assert!(ratio > 0.6 && ratio < 0.95, "fill ratio {ratio}");
    }

    #[test]
    fn tcc_is_psd_and_normalized() {
        let (_samples, m, im) = build_tcc(&cfg());
        // At nominal focus the imaginary part vanishes.
        assert!(im.iter().all(|&v| v.abs() < 1e-14));
        // Diagonal entries are source integrals over shifted pupils → in [0,1].
        for i in 0..m.dim() {
            let d = m.get(i, i);
            assert!((0.0..=1.0 + 1e-9).contains(&d), "diag {d}");
        }
        // DC sample (0,0) sees the whole annulus inside the pupil → ≈ 1.
        let samples = pupil_samples(&cfg());
        let dc = samples
            .iter()
            .position(|f| f.ux.abs() < 1e-12 && f.uy.abs() < 1e-12)
            .expect("dc sample present");
        assert!((m.get(dc, dc) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decomposition_energy_concentrates_in_leading_kernels() {
        let dec = decompose(&cfg());
        assert!(dec.eigenvalues.len() >= 4, "got {}", dec.eigenvalues.len());
        let total: f64 = dec.eigenvalues.iter().sum();
        let top4: f64 = dec.eigenvalues.iter().take(4).sum();
        assert!(top4 / total > 0.3, "leading kernels too weak: {top4}/{total}");
        for v in &dec.eigenvalues {
            assert!(*v >= 0.0, "negative eigenvalue {v}");
        }
    }

    #[test]
    fn eigenvectors_match_sample_count() {
        let dec = decompose(&cfg());
        for v in &dec.eigenvectors {
            assert_eq!(v.len(), dec.samples.len());
        }
        assert_eq!(dec.eigenvalues.len(), dec.eigenvectors.len());
    }

    #[test]
    fn decompose_is_deterministic() {
        let a = decompose(&cfg());
        let b = decompose(&cfg());
        assert_eq!(a.eigenvalues, b.eigenvalues);
        assert_eq!(a.eigenvectors, b.eigenvectors);
    }

    #[test]
    fn nominal_focus_vectors_are_real() {
        let dec = decompose(&cfg());
        for v in &dec.eigenvectors {
            assert!(v.iter().all(|&(_, im)| im == 0.0));
        }
    }

    #[test]
    fn defocus_produces_hermitian_tcc_with_complex_kernels() {
        let c = cfg().with_defocus(80.0);
        let (_s, _re, im) = build_tcc(&c);
        assert!(im.iter().any(|&v| v.abs() > 1e-9), "defocus left TCC real");
        let dec = decompose(&c);
        assert!(!dec.eigenvalues.is_empty());
        // Eigenvalues still nonnegative and descending.
        for w in dec.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        assert!(dec.eigenvalues.iter().all(|&v| v >= -1e-9));
        // At least one kernel coefficient picks up an imaginary part.
        let any_complex = dec.eigenvectors.iter().flatten().any(|&(_, im)| im.abs() > 1e-9);
        assert!(any_complex, "defocused kernels should be complex");
    }

    #[test]
    fn defocus_embedding_satisfies_eigen_equation() {
        // Verify H v = λ v for the complex decomposition.
        let c = cfg().with_defocus(60.0);
        let (samples, re, im) = build_tcc(&c);
        let n = samples.len();
        let dec = decompose(&c);
        for (k, (&lambda, vec)) in dec.eigenvalues.iter().zip(&dec.eigenvectors).enumerate().take(4)
        {
            for i in 0..n {
                let mut hr = 0.0;
                let mut hi = 0.0;
                for j in 0..n {
                    let a = re.get(i, j);
                    let b = im[i * n + j];
                    let (vr, vi) = vec[j];
                    // (a + ib)(vr + ivi)
                    hr += a * vr - b * vi;
                    hi += a * vi + b * vr;
                }
                let (vr, vi) = vec[i];
                assert!(
                    (hr - lambda * vr).abs() < 1e-6,
                    "kernel {k} row {i}: re {hr} vs {}",
                    lambda * vr
                );
                assert!(
                    (hi - lambda * vi).abs() < 1e-6,
                    "kernel {k} row {i}: im {hi} vs {}",
                    lambda * vi
                );
            }
        }
    }

    #[test]
    fn larger_source_grid_changes_little() {
        // Sanity: spectral energy (trace) is stable under source refinement.
        let base = cfg();
        let dec1 = decompose(&base);
        let mut finer = base.clone();
        finer.pupil_grid = 13;
        let dec2 = decompose(&finer);
        let sum1: f64 = dec1.eigenvalues.iter().sum();
        let sum2: f64 = dec2.eigenvalues.iter().sum();
        // Trace scales with the number of in-disk samples; compare per-sample.
        let t1 = sum1 / dec1.samples.len() as f64;
        let t2 = sum2 / dec2.samples.len() as f64;
        assert!((t1 - t2).abs() / t1 < 0.25, "t1={t1} t2={t2}");
    }
}
