//! Hopkins/SOCS partially-coherent lithography simulation and printability
//! metrics — the reproduction's substitute for the ICCAD-2013 `lithosim_v4`
//! kit the GAN-OPC paper evaluates with.
//!
//! # Physics
//!
//! The paper (Section 2) models the aerial image with the sum-of-coherent-
//! systems (SOCS) decomposition of the Hopkins partially coherent imaging
//! equation:
//!
//! ```text
//! I = Σ_{k=1}^{N_h} w_k · |M ⊗ h_k|²          (paper Eq. (2), N_h = 24)
//! Z(x,y) = 1 if I(x,y) ≥ I_th else 0          (paper Eq. (3))
//! ```
//!
//! The contest kit ships its 24 kernels as opaque binary data; we instead
//! *derive* kernels with the same structure from first principles:
//! [`tcc`] builds the transmission-cross-coefficient operator of an
//! annular-source / circular-pupil 193 nm immersion system on a sampled
//! pupil-frequency grid, [`jacobi`] eigendecomposes it, and [`socs`] converts
//! the leading eigenpairs into spatial kernels `h_k` with weights `w_k`.
//! See DESIGN.md §3 for why this substitution preserves the paper's
//! behaviour.
//!
//! # Modules
//!
//! * [`optics`] — [`OpticalConfig`]: wavelength, NA, source shape, grid;
//! * [`jacobi`] — dense symmetric eigendecomposition (f64);
//! * [`tcc`] — TCC assembly and decomposition;
//! * [`socs`] — [`SocsKernels`]: the kernel stack `{(h_k, w_k)}`;
//! * [`model`] — [`LithoModel`]: aerial image, resist, dose sweeps, the
//!   relaxed (sigmoid) forward model of Eq. (12)–(13) and the ILT gradient
//!   of Eq. (14);
//! * [`metrics`] — squared L2, PVB under dose variation, EPE / bridge /
//!   neck detectors (paper Fig. 2 taxonomy).
//!
//! # Example
//!
//! ```
//! use ganopc_litho::{Field, LithoModel};
//!
//! # fn main() -> Result<(), ganopc_litho::LithoError> {
//! let model = LithoModel::iccad2013_like(128)?;
//! // Print a 5-pixel-wide line and check it survives lithography.
//! let mut mask = Field::zeros(128, 128);
//! for y in 32..96 {
//!     for x in 62..67 {
//!         mask.set(y, x, 1.0);
//!     }
//! }
//! let wafer = model.print_nominal(&mask);
//! assert!(wafer.sum() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod jacobi;
pub mod metrics;
pub mod model;
pub mod optics;
pub mod socs;
pub mod tcc;

pub use metrics::MaskMetrics;
pub use model::{GradientResult, LithoModel};
pub use optics::OpticalConfig;
pub use socs::SocsKernels;

/// The image type used for masks, targets, aerial and wafer images —
/// a re-export of [`ganopc_geometry::raster::Raster`].
pub use ganopc_geometry::raster::Raster as Field;

use std::error::Error;
use std::fmt;

/// Errors from lithography model construction or simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum LithoError {
    /// Frame dimensions unusable for FFT (not a power of two) or too small
    /// for the kernel support.
    InvalidFrame(String),
    /// An FFT-level failure (propagated size mismatch).
    Fft(ganopc_fft::FftError),
    /// A field passed to the model does not match its frame.
    ShapeMismatch {
        /// Expected `(height, width)`.
        expected: (usize, usize),
        /// Received `(height, width)`.
        actual: (usize, usize),
    },
    /// Threshold calibration failed to bracket the target CD.
    Calibration(String),
}

impl fmt::Display for LithoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LithoError::InvalidFrame(msg) => write!(f, "invalid litho frame: {msg}"),
            LithoError::Fft(e) => write!(f, "fft failure: {e}"),
            LithoError::ShapeMismatch { expected, actual } => write!(
                f,
                "field shape {}x{} does not match model frame {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            LithoError::Calibration(msg) => write!(f, "threshold calibration failed: {msg}"),
        }
    }
}

impl Error for LithoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LithoError::Fft(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ganopc_fft::FftError> for LithoError {
    fn from(e: ganopc_fft::FftError) -> Self {
        LithoError::Fft(e)
    }
}
