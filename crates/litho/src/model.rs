//! The lithography forward model and its adjoint (ILT) gradient.

use crate::optics::OpticalConfig;
use crate::socs::SocsKernels;
use crate::{Field, LithoError};
use ganopc_fft::spectrum::{self, KernelSpectrum};
use ganopc_fft::{Arena, Complex, RealFft2d};
use ganopc_nn::pool;
use ganopc_obs as obs;

/// Result of one lithography-gradient evaluation (paper Eq. (11)–(14)).
#[derive(Debug, Clone)]
pub struct GradientResult {
    /// `∂E/∂M_b` — gradient of the squared-L2 lithography error with respect
    /// to the (relaxed) mask, including the resist-sigmoid chain factor
    /// `2α·Z(1−Z)` but **not** the mask-sigmoid factor `β·M_b(1−M_b)`
    /// (applied by the caller that owns the mask parametrization).
    pub grad: Field,
    /// The relaxed wafer image `Z = σ(α(I − I_th))` of Eq. (12).
    pub wafer_relaxed: Field,
    /// The aerial image `I` at nominal dose.
    pub aerial: Field,
    /// The lithography error `E = ‖Z − Z_t‖²` of Eq. (11), computed on the
    /// relaxed wafer image.
    pub error: f64,
}

/// Real and imaginary component fields `(p_k, q_k)` of one kernel
/// convolution; `None` where the kernel component was dropped as
/// numerically zero.
type KernelFields = (Option<Vec<f32>>, Option<Vec<f32>>);

thread_local! {
    /// Per-thread slot list for per-kernel convolved fields. The slots are
    /// reused across every aerial/gradient evaluation on this thread (the
    /// field buffers themselves come from the model's arena), so the hot
    /// paths materialize no per-call job or result vectors. Thread-local
    /// because pre-training runs whole gradient evaluations concurrently on
    /// pool workers, each needing its own slot list.
    static FIELD_SLOTS: std::cell::RefCell<Vec<KernelFields>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's kernel-field slot list sized to `n` empty
/// slots.
fn with_field_slots<R>(n: usize, f: impl FnOnce(&mut Vec<KernelFields>) -> R) -> R {
    FIELD_SLOTS.with(|cell| {
        let mut slots = cell.borrow_mut();
        slots.clear();
        if slots.capacity() < n {
            // ALLOC: one-time growth of the persistent per-thread slot list
            // (one entry per SOCS kernel, ~24).
            slots.reserve(n);
        }
        slots.resize_with(n, || (None, None));
        f(&mut slots)
    })
}

/// A planned lithography simulator for one frame size.
///
/// Holds the SOCS kernel stack embedded as frame-sized packed half-spectra,
/// the real-FFT plan, a scratch-buffer [`Arena`] shared by the worker pool,
/// the calibrated resist threshold `I_th` and the sigmoid steepness `α` of
/// Eq. (12). After a warm-up call on each entry point, aerial-image and
/// gradient evaluations perform zero heap allocation for scratch (see
/// [`LithoModel::scratch_allocations`]).
///
/// ```
/// use ganopc_litho::{Field, LithoModel};
/// # fn main() -> Result<(), ganopc_litho::LithoError> {
/// let model = LithoModel::iccad2013_like(64)?;
/// let wafer = model.print_nominal(&Field::zeros(64, 64));
/// assert_eq!(wafer.sum(), 0.0); // dark mask prints nothing
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LithoModel {
    cfg: OpticalConfig,
    height: usize,
    width: usize,
    rfft: RealFft2d,
    /// `(w_k, half-spectra of h_k)` pairs.
    spectra: Vec<(f32, KernelSpectrum)>,
    /// Freelist of frame-sized scratch buffers shared by all pool workers.
    arena: Arena,
    threshold: f32,
    sigmoid_alpha: f32,
    dose_delta: f32,
}

impl LithoModel {
    /// Steepness `α` of the relaxed resist model (Eq. (12)). The paper does
    /// not publish its value; 50 on a unit-normalized intensity scale gives
    /// a resist transition ≈ 4 % of the open-field intensity wide.
    pub const DEFAULT_SIGMOID_ALPHA: f32 = 50.0;
    /// Dose excursion for the process-variability band (paper: ±2 %).
    pub const DEFAULT_DOSE_DELTA: f32 = 0.02;

    /// Builds a model on a square `size × size` frame emulating the
    /// ICCAD-2013 setup: the frame represents a 2048 nm clip, so the pixel
    /// pitch is `2048 / size` nm.
    ///
    /// # Errors
    ///
    /// Propagates [`LithoModel::new`] errors.
    pub fn iccad2013_like(size: usize) -> Result<Self, LithoError> {
        let pixel_nm = 2048.0 / size as f64;
        let cfg = OpticalConfig::default_32nm(pixel_nm);
        LithoModel::new(cfg, size, size)
    }

    /// Cached variant of [`LithoModel::iccad2013_like`] (see
    /// [`LithoModel::new_cached`]).
    ///
    /// # Errors
    ///
    /// Propagates [`LithoModel::new`] errors.
    pub fn iccad2013_like_cached(size: usize) -> Result<Self, LithoError> {
        let pixel_nm = 2048.0 / size as f64;
        let cfg = OpticalConfig::default_32nm(pixel_nm);
        LithoModel::new_cached(cfg, size, size)
    }

    /// Like [`LithoModel::new`] but loads the SOCS kernel stack through the
    /// on-disk cache ([`crate::cache`]), skipping the TCC eigendecomposition
    /// when this configuration has been derived before.
    ///
    /// # Errors
    ///
    /// Same as [`LithoModel::new`].
    pub fn new_cached(cfg: OpticalConfig, height: usize, width: usize) -> Result<Self, LithoError> {
        Self::build(cfg, height, width, true)
    }

    /// Builds a model for an arbitrary configuration and frame.
    ///
    /// Kernel supports larger than the frame are clamped (kept odd). The
    /// resist threshold is calibrated so that an isolated 80 nm line prints
    /// at its drawn width (see `calibrate_threshold`).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::InvalidFrame`] for non-power-of-two frames and
    /// [`LithoError::Calibration`] when threshold calibration cannot bracket
    /// the line edge (degenerate configurations).
    pub fn new(cfg: OpticalConfig, height: usize, width: usize) -> Result<Self, LithoError> {
        Self::build(cfg, height, width, false)
    }

    fn build(
        mut cfg: OpticalConfig,
        height: usize,
        width: usize,
        cached: bool,
    ) -> Result<Self, LithoError> {
        cfg.validate().map_err(LithoError::InvalidFrame)?;
        if !ganopc_fft::is_power_of_two(height) || !ganopc_fft::is_power_of_two(width) {
            return Err(LithoError::InvalidFrame(format!(
                "frame {height}x{width} must have power-of-two sides"
            )));
        }
        let max_k = height.min(width) - 1;
        if cfg.kernel_size > max_k {
            cfg.kernel_size = if max_k.is_multiple_of(2) { max_k - 1 } else { max_k };
        }
        if cfg.kernel_size < 3 {
            return Err(LithoError::InvalidFrame(format!(
                "frame {height}x{width} too small for any kernel support"
            )));
        }
        let stack = if cached {
            crate::cache::load_or_derive(&cfg, &crate::cache::default_cache_dir())
        } else {
            SocsKernels::from_config(&cfg)
        };
        let rfft = RealFft2d::new(height, width)?;
        let spectra = stack
            .kernels()
            .iter()
            .map(|k| {
                KernelSpectrum::new(&k.taps, stack.kernel_size(), height, width)
                    .map(|s| (k.weight, s))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut model = LithoModel {
            cfg,
            height,
            width,
            rfft,
            spectra,
            arena: Arena::new(),
            threshold: 0.3,
            sigmoid_alpha: Self::DEFAULT_SIGMOID_ALPHA,
            dose_delta: Self::DEFAULT_DOSE_DELTA,
        };
        model.threshold = model.calibrate_threshold()?;
        Ok(model)
    }

    /// Chooses `I_th` as the aerial intensity at the drawn edge of an
    /// isolated 80 nm (minimum-CD) vertical line, so minimum features print
    /// on size. Mirrors how constant-threshold resist models are calibrated
    /// against a reference structure.
    fn calibrate_threshold(&self) -> Result<f32, LithoError> {
        let cd_px = (80.0 / self.cfg.pixel_nm).max(1.0);
        let cx = self.width as f64 / 2.0;
        let (x0, x1) = (cx - cd_px / 2.0, cx + cd_px / 2.0);
        let mut mask = Field::zeros(self.height, self.width);
        for y in 0..self.height {
            for x in 0..self.width {
                // Area-weighted coverage of the line over this pixel column.
                let lo = (x as f64).max(x0);
                let hi = ((x + 1) as f64).min(x1);
                let cov = (hi - lo).max(0.0);
                if cov > 0.0 {
                    mask.set(y, x, cov as f32);
                }
            }
        }
        let aerial = self.aerial_image(&mask);
        // Intensity profile along the middle row; sample at the drawn edge.
        let row = self.height / 2;
        let edge = x1 - 0.5; // pixel-center coordinate of the right edge
        let xe0 = edge.floor() as usize;
        let xe1 = (xe0 + 1).min(self.width - 1);
        let t = (edge - xe0 as f64) as f32;
        let i_edge = aerial.get(row, xe0) * (1.0 - t) + aerial.get(row, xe1) * t;
        let peak = aerial.get(row, self.width / 2);
        if !(i_edge.is_finite() && i_edge > 0.0 && i_edge < peak) {
            return Err(LithoError::Calibration(format!(
                "edge intensity {i_edge} outside (0, peak={peak})"
            )));
        }
        Ok(i_edge)
    }

    /// Frame `(height, width)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.height, self.width)
    }

    /// The optical configuration the model was built with.
    #[inline]
    pub fn config(&self) -> &OpticalConfig {
        &self.cfg
    }

    /// The calibrated resist threshold `I_th`.
    #[inline]
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The resist-sigmoid steepness `α` (Eq. (12)).
    #[inline]
    pub fn sigmoid_alpha(&self) -> f32 {
        self.sigmoid_alpha
    }

    /// Overrides the resist-sigmoid steepness.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 0`.
    pub fn set_sigmoid_alpha(&mut self, alpha: f32) {
        assert!(alpha > 0.0, "sigmoid steepness must be positive");
        self.sigmoid_alpha = alpha;
    }

    /// The PVB dose excursion (fraction, default 0.02).
    #[inline]
    pub fn dose_delta(&self) -> f32 {
        self.dose_delta
    }

    /// Simulation pixel pitch, nm.
    #[inline]
    pub fn pixel_nm(&self) -> f64 {
        self.cfg.pixel_nm
    }

    /// Number of SOCS kernels in use.
    #[inline]
    pub fn num_kernels(&self) -> usize {
        self.spectra.len()
    }

    fn check_shape(&self, field: &Field) -> Result<(), LithoError> {
        if field.shape() != (self.height, self.width) {
            return Err(LithoError::ShapeMismatch {
                expected: (self.height, self.width),
                actual: field.shape(),
            });
        }
        Ok(())
    }

    /// Packed half-spectrum of a real mask, reused across kernels. The
    /// returned buffer belongs to the arena; callers put it back when done.
    // lint: hot-path
    fn mask_half(&self, mask: &Field) -> Vec<Complex> {
        let slen = self.rfft.spectrum_len();
        let mut out = self.arena.take_complex(slen);
        let mut scratch = self.arena.take_complex(slen);
        // PANIC: buffers were sized from this plan two lines above.
        self.rfft.forward(mask.as_slice(), &mut out, &mut scratch).expect("planned size");
        self.arena.put_complex(scratch);
        out
    }

    /// One real component of a kernel convolution: `c2r(mask_half ⊙ comp)`.
    /// All working storage comes from (and returns to) the arena except the
    /// returned field, which the caller releases.
    // lint: hot-path
    fn component_field(&self, mask_half: &[Complex], comp: &[Complex]) -> Vec<f32> {
        let slen = self.rfft.spectrum_len();
        let mut prod = self.arena.take_complex(slen);
        let mut scratch = self.arena.take_complex(slen);
        spectrum::mul_into(&mut prod, mask_half, comp);
        let mut out = self.arena.take_real(self.height * self.width);
        // PANIC: buffers were sized from this plan a few lines above.
        self.rfft.inverse(&mut prod, &mut out, &mut scratch).expect("planned size");
        self.arena.put_complex(prod);
        self.arena.put_complex(scratch);
        out
    }

    /// Per-kernel convolved fields `A_k = M ⊗ h_k` from a precomputed mask
    /// half-spectrum, split into real and imaginary parts `(p_k, q_k)` —
    /// `None` where the kernel component vanishes. Kernel indices fan out
    /// over the shared worker pool (capped by `GANOPC_THREADS`) through the
    /// allocation-free [`pool::run_chunks`] path; slot `k` of `fields`
    /// receives kernel `k`'s components, so downstream reductions walk the
    /// slots in kernel order regardless of the worker count.
    // lint: hot-path
    fn convolved_fields_into(&self, mask_half: &[Complex], fields: &mut [KernelFields]) {
        debug_assert_eq!(fields.len(), self.spectra.len());
        let slots = pool::DisjointMut::new(fields);
        pool::run_chunks(self.spectra.len(), |kernels| {
            for ki in kernels {
                let ks = &self.spectra[ki].1;
                let p = ks.re_spectrum().map(|r| self.component_field(mask_half, r));
                let q = ks.im_spectrum().map(|i| self.component_field(mask_half, i));
                // SAFETY: run_chunks kernel ranges partition the slot list,
                // so slot ki is written by exactly this chunk.
                *unsafe { slots.index_mut(ki) } = (p, q);
            }
        });
    }

    /// Accumulates `Σ_k w_k (p_k² + q_k²)` into `intensity`, serially in
    /// kernel order so the result does not depend on the worker count.
    // lint: hot-path
    fn accumulate_intensity(&self, fields: &[KernelFields], intensity: &mut [f32]) {
        for ((w, _), (p, q)) in self.spectra.iter().zip(fields) {
            for comp in [p, q].into_iter().flatten() {
                for (acc, &v) in intensity.iter_mut().zip(comp.iter()) {
                    *acc += w * v * v;
                }
            }
        }
    }

    /// Returns convolved-field buffers to the arena, emptying the slots.
    fn release_fields(&self, fields: &mut [KernelFields]) {
        for (p, q) in fields {
            for comp in [p.take(), q.take()].into_iter().flatten() {
                self.arena.put_real(comp);
            }
        }
    }

    /// Number of scratch-arena freelist misses since the model was built.
    /// Constant across repeated hot-path calls once the arena is warm — the
    /// zero-allocation regression tests assert on this.
    pub fn scratch_allocations(&self) -> usize {
        self.arena.fresh_allocations()
    }

    /// Reserves the worst-case concurrent scratch footprint in the arena.
    ///
    /// How many pool chunks run *simultaneously* (and therefore how many
    /// transient FFT buffers are outstanding at once) depends on scheduling,
    /// so warm-up calls alone cannot guarantee the freelist ever reaches its
    /// high-water mark. Reserving the bound up front makes "warm arena
    /// never misses" deterministic. Steady-state calls find the freelist
    /// already full, so this is two short lock/scan sections per evaluation.
    // lint: hot-path
    fn prime_arena(&self) {
        let kernels = self.spectra.len();
        let lanes = if pool::in_worker() { 1 } else { pool::max_threads().min(kernels.max(1)) };
        // Complex peak: the gradient stage holds 3 spectra per active chunk
        // (w_spec/tmp/scratch); the convolve stage holds the mask spectrum
        // plus 2 per chunk — 3·lanes covers both for lanes ≥ 1.
        self.arena.reserve_complex(3 * lanes, self.rfft.spectrum_len());
        // Real peak: 2 component fields per kernel + intensity/z/g + one
        // per-chunk product buffer.
        self.arena.reserve_real(2 * kernels + 3 + lanes, self.height * self.width);
    }

    /// Aerial image `I = Σ_k w_k |M ⊗ h_k|²` at nominal dose (Eq. (2)).
    ///
    /// # Panics
    ///
    /// Panics if `mask` does not match the model frame (use
    /// [`LithoModel::try_aerial_image`] for a fallible variant).
    pub fn aerial_image(&self, mask: &Field) -> Field {
        // PANIC: documented above — the fallible variant is try_aerial_image.
        self.try_aerial_image(mask).expect("mask shape mismatch")
    }

    /// Fallible variant of [`LithoModel::aerial_image`].
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::ShapeMismatch`] when `mask` has the wrong shape.
    pub fn try_aerial_image(&self, mask: &Field) -> Result<Field, LithoError> {
        // The intensity buffer is the returned Field's storage — the only
        // allocation on this path.
        let mut intensity = vec![0.0f32; self.height * self.width];
        self.aerial_image_into(mask, &mut intensity)?;
        Ok(Field::from_vec(self.height, self.width, intensity))
    }

    /// Writes the aerial image into a caller-owned buffer (overwritten, not
    /// accumulated). With a warm arena this performs zero heap allocation —
    /// the entry point for PVB-metric callers that re-evaluate intensity per
    /// process corner and for [`LithoModel::process_window`].
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::ShapeMismatch`] when `mask` has the wrong shape
    /// and [`LithoError::Fft`] when `intensity` has the wrong length.
    // lint: hot-path
    pub fn aerial_image_into(&self, mask: &Field, intensity: &mut [f32]) -> Result<(), LithoError> {
        let _sp = obs::span(obs::Span::LithoAerial);
        obs::counter_add(obs::Counter::LithoAerialCalls, 1);
        self.check_shape(mask)?;
        let n = self.height * self.width;
        if intensity.len() != n {
            return Err(LithoError::Fft(ganopc_fft::FftError::SizeMismatch {
                expected: n,
                actual: intensity.len(),
            }));
        }
        self.prime_arena();
        let mask_half = self.mask_half(mask);
        with_field_slots(self.spectra.len(), |fields| {
            self.convolved_fields_into(&mask_half, fields);
            self.arena.put_complex(mask_half);
            intensity.fill(0.0);
            self.accumulate_intensity(fields, intensity);
            self.release_fields(fields);
        });
        Ok(())
    }

    /// Binary wafer image at a given dose: `Z = [dose · I ≥ I_th]`
    /// (Eq. (3)).
    pub fn print(&self, mask: &Field, dose: f32) -> Field {
        let aerial = self.aerial_image(mask);
        aerial.map(|i| if dose * i >= self.threshold { 1.0 } else { 0.0 })
    }

    /// Binary wafer image at nominal dose.
    pub fn print_nominal(&self, mask: &Field) -> Field {
        self.print(mask, 1.0)
    }

    /// Prints at `1−δ`, `1`, `1+δ` dose — inputs to the PVB metric. One
    /// aerial simulation and a single fused sweep writing all three dose
    /// prints per element; the intensity lives in the arena, so the only
    /// allocations are the three returned fields' storage.
    pub fn process_window(&self, mask: &Field) -> [Field; 3] {
        let n = self.height * self.width;
        let mut aerial = self.arena.take_real(n);
        // PANIC: documented panic contract shared with aerial_image; the
        // buffer was sized to the frame two lines above.
        self.aerial_image_into(mask, &mut aerial).expect("mask shape mismatch");
        let th = self.threshold;
        let (lo, hi) = (1.0 - self.dose_delta, 1.0 + self.dose_delta);
        // ALLOC: the three print buffers are the returned fields' storage.
        let mut inner = vec![0.0f32; n];
        let mut nominal = vec![0.0f32; n];
        let mut outer = vec![0.0f32; n];
        for (((&i, pi), pn), po) in
            aerial.iter().zip(inner.iter_mut()).zip(nominal.iter_mut()).zip(outer.iter_mut())
        {
            *pi = if lo * i >= th { 1.0 } else { 0.0 };
            *pn = if i >= th { 1.0 } else { 0.0 };
            *po = if hi * i >= th { 1.0 } else { 0.0 };
        }
        self.arena.put_real(aerial);
        [
            Field::from_vec(self.height, self.width, inner),
            Field::from_vec(self.height, self.width, nominal),
            Field::from_vec(self.height, self.width, outer),
        ]
    }

    /// Relaxed wafer image `Z = σ(α(I − I_th))` of Eq. (12) from an aerial
    /// image.
    pub fn relax(&self, aerial: &Field) -> Field {
        let a = self.sigmoid_alpha;
        let th = self.threshold;
        aerial.map(|i| 1.0 / (1.0 + (-a * (i - th)).exp()))
    }

    /// Lithography error and gradient (Eq. (11) + Eq. (14) without the mask
    /// sigmoid chain): given a relaxed mask `M_b ∈ [0,1]` and a binary
    /// target, returns `∂E/∂M_b` where `E = ‖Z − Z_t‖²` on the relaxed wafer
    /// at nominal dose.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::ShapeMismatch`] when shapes disagree with the
    /// frame.
    pub fn gradient(&self, mask: &Field, target: &Field) -> Result<GradientResult, LithoError> {
        self.gradient_at_dose(mask, target, 1.0)
    }

    /// [`LithoModel::gradient`] evaluated at an arbitrary dose (used by
    /// process-window-aware ILT, which averages corners — the strategy of
    /// MOSAIC [7 in the paper]).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::ShapeMismatch`] when shapes disagree with the
    /// frame.
    pub fn gradient_at_dose(
        &self,
        mask: &Field,
        target: &Field,
        dose: f32,
    ) -> Result<GradientResult, LithoError> {
        let n = self.height * self.width;
        let mut grad = vec![0.0f32; n];
        let (error, captured) = self.gradient_core(mask, target, dose, &mut grad, true)?;
        // PANIC: gradient_core always captures when want_fields is true.
        let (intensity, z) = captured.expect("fields requested");
        Ok(GradientResult {
            grad: Field::from_vec(self.height, self.width, grad),
            wafer_relaxed: Field::from_vec(self.height, self.width, z),
            aerial: Field::from_vec(self.height, self.width, intensity),
            error,
        })
    }

    /// Allocation-free variant of [`LithoModel::gradient_at_dose`]: writes
    /// `∂E/∂M_b` into `grad` (overwritten, not accumulated) and returns the
    /// lithography error `E`. With a warm arena this performs zero heap
    /// allocation — the entry point for the ILT iteration loop and the
    /// per-sample pre-training gradients, which discard the aerial and
    /// wafer images anyway.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::ShapeMismatch`] when `mask`/`target` disagree
    /// with the frame and [`LithoError::Fft`] when `grad` has the wrong
    /// length.
    // lint: hot-path
    pub fn gradient_into(
        &self,
        mask: &Field,
        target: &Field,
        dose: f32,
        grad: &mut [f32],
    ) -> Result<f64, LithoError> {
        let n = self.height * self.width;
        if grad.len() != n {
            return Err(LithoError::Fft(ganopc_fft::FftError::SizeMismatch {
                expected: n,
                actual: grad.len(),
            }));
        }
        grad.fill(0.0);
        let (error, _) = self.gradient_core(mask, target, dose, grad, false)?;
        Ok(error)
    }

    /// Shared gradient pipeline. Accumulates `∂E/∂M_b` into `grad` (which
    /// must arrive zeroed) and returns the error; when `want_fields` is set,
    /// also returns `(intensity, z)` as fresh vectors for the caller to wrap
    /// into [`Field`]s, otherwise those intermediates live and die in the
    /// arena.
    // lint: hot-path
    #[allow(clippy::type_complexity)]
    fn gradient_core(
        &self,
        mask: &Field,
        target: &Field,
        dose: f32,
        grad: &mut [f32],
        want_fields: bool,
    ) -> Result<(f64, Option<(Vec<f32>, Vec<f32>)>), LithoError> {
        let _sp = obs::span(obs::Span::LithoGradient);
        obs::counter_add(obs::Counter::LithoGradientCalls, 1);
        self.check_shape(mask)?;
        self.check_shape(target)?;
        assert!(dose > 0.0, "dose must be positive");
        let n = self.height * self.width;
        let slen = self.rfft.spectrum_len();

        self.prime_arena();
        let mask_half = self.mask_half(mask);
        with_field_slots(self.spectra.len(), |fields| {
            self.convolved_fields_into(&mask_half, fields);
            self.arena.put_complex(mask_half);

            // Aerial image and relaxed wafer `Z = σ(α(dose·I − I_th))`, plus the
            // error and the chain factor g = 2α·dose (Z − Z_t) ⊙ Z ⊙ (1 − Z).
            // ALLOC: want_fields is the cold debug/reporting branch — it hands the
            // buffers to the caller, so they cannot come from the arena.
            let mut intensity = if want_fields { vec![0.0f32; n] } else { self.arena.take_real(n) };
            self.accumulate_intensity(fields, &mut intensity);
            // ALLOC: same want_fields escape hatch as `intensity` above.
            let mut z = if want_fields { vec![0.0f32; n] } else { self.arena.take_real(n) };
            let mut g = self.arena.take_real(n);
            let alpha = self.sigmoid_alpha;
            let th = self.threshold;
            let chain = 2.0 * alpha * dose;
            let mut error = 0.0f64;
            for (((zi, gi), &ii), &ti) in
                z.iter_mut().zip(g.iter_mut()).zip(intensity.iter()).zip(target.as_slice())
            {
                let zv = 1.0 / (1.0 + (-alpha * (dose * ii - th)).exp());
                *zi = zv;
                let d = zv - ti;
                error += (d as f64) * (d as f64);
                *gi = chain * d * zv * (1.0 - zv);
            }

            // grad = Σ_k w_k · 2 Re[ IFFT( FFT(g ⊙ A_k) ⊙ conj(H_k) ) ]. With
            // A_k = p + i·q and H_k = R + i·I (half-spectra of the kernel's real
            // components), the real part collapses to a single Hermitian inverse:
            // grad_k = 2 w_k · c2r( P ⊙ conj(R) + Q ⊙ conj(I) ), P = r2c(g⊙p),
            // Q = r2c(g⊙q) — one c2r per kernel instead of a full complex
            // round-trip. Kernel indices fan out over the pool through the
            // allocation-free run_chunks path; each job consumes its slot's
            // convolved fields and leaves the kernel's gradient contribution in
            // the slot, reduced below in kernel order so the gradient bits do
            // not depend on how many workers ran.
            let g_ref = &g;
            let slots = pool::DisjointMut::new(&mut fields[..]);
            pool::run_chunks(self.spectra.len(), |kernels| {
                for ki in kernels {
                    // SAFETY: run_chunks kernel ranges partition the slot list,
                    // so slot ki is owned by exactly this chunk.
                    let slot = unsafe { slots.index_mut(ki) };
                    let (p, q) = (slot.0.take(), slot.1.take());
                    let ks = &self.spectra[ki].1;
                    let mut w_spec = self.arena.take_complex(slen);
                    let mut tmp = self.arena.take_complex(slen);
                    let mut scratch = self.arena.take_complex(slen);
                    let mut u = self.arena.take_real(n);
                    let mut wrote = false;
                    for (comp, half) in [(&p, ks.re_spectrum()), (&q, ks.im_spectrum())] {
                        let (Some(field), Some(half)) = (comp, half) else { continue };
                        for ((ui, &fi), &gi) in u.iter_mut().zip(field.iter()).zip(g_ref.iter()) {
                            *ui = gi * fi;
                        }
                        // PANIC: buffers were sized from this plan above.
                        self.rfft.forward(&u, &mut tmp, &mut scratch).expect("planned size");
                        if wrote {
                            spectrum::mul_conj_add_into(&mut w_spec, &tmp, half);
                        } else {
                            spectrum::mul_conj_into(&mut w_spec, &tmp, half);
                            wrote = true;
                        }
                    }
                    for comp in [p, q].into_iter().flatten() {
                        self.arena.put_real(comp);
                    }
                    self.arena.put_complex(tmp);
                    slot.0 = if wrote {
                        let mut gk = u; // reuse as the real output buffer
                        self.rfft
                            .inverse(&mut w_spec, &mut gk, &mut scratch)
                            // PANIC: buffers were sized from this plan above.
                            .expect("planned size");
                        Some(gk)
                    } else {
                        self.arena.put_real(u);
                        None
                    };
                    self.arena.put_complex(w_spec);
                    self.arena.put_complex(scratch);
                }
            });
            for ((w, _), slot) in self.spectra.iter().zip(fields.iter_mut()) {
                let Some(gk) = slot.0.take() else { continue };
                let s = 2.0 * w;
                for (go, &c) in grad.iter_mut().zip(gk.iter()) {
                    *go += s * c;
                }
                self.arena.put_real(gk);
            }
            self.arena.put_real(g);

            let captured = if want_fields {
                Some((intensity, z))
            } else {
                self.arena.put_real(intensity);
                self.arena.put_real(z);
                None
            };
            Ok((error, captured))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> LithoModel {
        let mut cfg = OpticalConfig::default_32nm(16.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 8;
        LithoModel::new(cfg, 64, 64).unwrap()
    }

    fn line_mask(h: usize, w: usize, x0: usize, x1: usize, y0: usize, y1: usize) -> Field {
        let mut m = Field::zeros(h, w);
        for y in y0..y1 {
            for x in x0..x1 {
                m.set(y, x, 1.0);
            }
        }
        m
    }

    #[test]
    fn rejects_non_power_of_two_frame() {
        let cfg = OpticalConfig::default_32nm(16.0);
        assert!(matches!(LithoModel::new(cfg, 96, 96), Err(LithoError::InvalidFrame(_))));
    }

    #[test]
    fn dark_mask_prints_nothing_open_mask_prints_everything() {
        let model = small_model();
        let dark = model.print_nominal(&Field::zeros(64, 64));
        assert_eq!(dark.sum(), 0.0);
        let open = model.print_nominal(&Field::filled(64, 64, 1.0));
        assert_eq!(open.sum(), (64 * 64) as f32);
    }

    #[test]
    fn minimum_line_prints_near_drawn_width() {
        // 80 nm at 16 nm/px = 5 px; the calibrated threshold should print it
        // within ±1 px of drawn CD at mid-height.
        let model = small_model();
        let mask = line_mask(64, 64, 30, 35, 8, 56);
        let wafer = model.print_nominal(&mask);
        let row: usize = 32;
        let printed: f32 = (0..64).map(|x| wafer.get(row, x)).sum();
        assert!((4.0..=7.0).contains(&printed), "printed CD {printed} px, expected ~5");
    }

    #[test]
    fn corners_round_line_ends_pull_back() {
        // Proximity effect: the printed wire should be shorter than drawn.
        let model = small_model();
        let mask = line_mask(64, 64, 30, 35, 16, 48);
        let wafer = model.print_nominal(&mask);
        let col = 32;
        let printed_len: f32 = (0..64).map(|y| wafer.get(y, col)).sum();
        assert!(printed_len > 0.0, "line vanished entirely");
        assert!(printed_len < 32.0, "no line-end pullback: {printed_len} px");
    }

    #[test]
    fn higher_dose_prints_larger() {
        let model = small_model();
        let mask = line_mask(64, 64, 28, 36, 8, 56);
        let [inner, nominal, outer] = model.process_window(&mask);
        assert!(inner.sum() <= nominal.sum());
        assert!(nominal.sum() <= outer.sum());
        assert!(outer.sum() > inner.sum(), "dose sensitivity collapsed");
    }

    #[test]
    fn relax_approaches_binary_for_steep_sigmoid() {
        let mut model = small_model();
        let mask = line_mask(64, 64, 28, 36, 8, 56);
        let aerial = model.aerial_image(&mask);
        model.set_sigmoid_alpha(500.0);
        let z = model.relax(&aerial);
        let binary = model.print_nominal(&mask);
        let mismatch: f32 =
            z.as_slice().iter().zip(binary.as_slice()).map(|(&a, &b)| (a - b).abs()).sum();
        // Soft and hard wafers agree except in the thin transition band.
        assert!(mismatch < 64.0, "relaxation too soft: {mismatch}");
    }

    #[test]
    fn aerial_shape_mismatch_is_error() {
        let model = small_model();
        let bad = Field::zeros(32, 32);
        assert!(matches!(model.try_aerial_image(&bad), Err(LithoError::ShapeMismatch { .. })));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let model = small_model();
        let mask = {
            // A soft blob, away from binarization plateaus.
            let mut m = Field::zeros(64, 64);
            for y in 24..40 {
                for x in 24..40 {
                    m.set(y, x, 0.6);
                }
            }
            m
        };
        let target = line_mask(64, 64, 28, 36, 24, 40);
        let result = model.gradient(&mask, &target).unwrap();

        // Directional finite difference: aggregate over the whole field so
        // f32 forward-model rounding averages out. Direction = deterministic
        // pseudo-random unit vector.
        let mut dir = vec![0.0f32; 64 * 64];
        let mut state = 0xdead_beef_u64;
        for d in dir.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *d = ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
        }
        let norm = dir.iter().map(|d| d * d).sum::<f32>().sqrt();
        for d in dir.iter_mut() {
            *d /= norm;
        }
        let eps = 1e-2f32;
        let shifted = |sign: f32| {
            Field::from_vec(
                64,
                64,
                mask.as_slice().iter().zip(&dir).map(|(&m, &d)| m + sign * eps * d).collect(),
            )
        };
        let ep = model.gradient(&shifted(1.0), &target).unwrap().error;
        let em = model.gradient(&shifted(-1.0), &target).unwrap().error;
        let fd = (ep - em) / (2.0 * eps as f64);
        let analytic: f64 =
            result.grad.as_slice().iter().zip(&dir).map(|(&g, &d)| g as f64 * d as f64).sum();
        let denom = fd.abs().max(analytic.abs()).max(1e-6);
        assert!(
            (fd - analytic).abs() / denom < 0.02,
            "directional derivative: fd {fd} vs analytic {analytic}"
        );
    }

    #[test]
    fn gradient_pointwise_matches_on_strong_pixels() {
        // Per-pixel check restricted to pixels where the gradient is large
        // enough to rise above f32 forward-model noise.
        let model = small_model();
        let mut mask = Field::zeros(64, 64);
        for y in 24..40 {
            for x in 24..40 {
                mask.set(y, x, 0.6);
            }
        }
        let target = line_mask(64, 64, 28, 36, 24, 40);
        let result = model.gradient(&mask, &target).unwrap();
        let (py, px) = {
            let mut best = (0, 0);
            let mut mag = 0.0f32;
            for y in 0..64 {
                for x in 0..64 {
                    if result.grad.get(y, x).abs() > mag {
                        mag = result.grad.get(y, x).abs();
                        best = (y, x);
                    }
                }
            }
            best
        };
        let eps = 5e-3f32;
        let mut plus = mask.clone();
        plus.set(py, px, plus.get(py, px) + eps);
        let mut minus = mask.clone();
        minus.set(py, px, minus.get(py, px) - eps);
        let ep = model.gradient(&plus, &target).unwrap().error;
        let em = model.gradient(&minus, &target).unwrap().error;
        let fd = ((ep - em) / (2.0 * eps as f64)) as f32;
        let an = result.grad.get(py, px);
        assert!(
            (fd - an).abs() / an.abs().max(1e-6) < 0.05,
            "pixel ({py},{px}): fd {fd} vs analytic {an}"
        );
    }

    #[test]
    fn gradient_error_decreases_along_negative_gradient() {
        let model = small_model();
        let target = line_mask(64, 64, 28, 36, 16, 48);
        let mask = Field::filled(64, 64, 0.4);
        let r0 = model.gradient(&mask, &target).unwrap();
        let step = 1e-2f32;
        let moved = Field::from_vec(
            64,
            64,
            mask.as_slice()
                .iter()
                .zip(r0.grad.as_slice())
                .map(|(&m, &g)| (m - step * g).clamp(0.0, 1.0))
                .collect(),
        );
        let r1 = model.gradient(&moved, &target).unwrap();
        assert!(r1.error < r0.error, "descent failed: {} -> {}", r0.error, r1.error);
    }

    #[test]
    fn threshold_is_sane() {
        let model = small_model();
        let th = model.threshold();
        assert!(th > 0.01 && th < 1.0, "threshold {th}");
    }

    #[test]
    fn kernel_count_respects_config() {
        let model = small_model();
        assert!(model.num_kernels() <= 8);
        assert!(model.num_kernels() >= 4);
    }

    #[test]
    fn gradient_into_matches_gradient() {
        let model = small_model();
        let mut mask = Field::zeros(64, 64);
        for y in 24..40 {
            for x in 24..40 {
                mask.set(y, x, 0.6);
            }
        }
        let target = line_mask(64, 64, 28, 36, 24, 40);
        let reference = model.gradient(&mask, &target).unwrap();
        // Pre-filled garbage must be fully overwritten, not accumulated.
        let mut grad = vec![7.0f32; 64 * 64];
        let error = model.gradient_into(&mask, &target, 1.0, &mut grad).unwrap();
        assert_eq!(error, reference.error);
        assert_eq!(grad.as_slice(), reference.grad.as_slice());
    }

    #[test]
    fn gradient_into_rejects_bad_buffer() {
        let model = small_model();
        let mask = Field::zeros(64, 64);
        let mut short = vec![0.0f32; 16];
        assert!(matches!(
            model.gradient_into(&mask, &mask, 1.0, &mut short),
            Err(LithoError::Fft(_))
        ));
    }

    #[test]
    fn hot_paths_do_not_allocate_when_warm() {
        let model = small_model();
        let mask = line_mask(64, 64, 28, 36, 16, 48);
        let target = line_mask(64, 64, 30, 34, 18, 46);
        let mut grad = vec![0.0f32; 64 * 64];
        // Warm-up (small_model's threshold calibration already primed the
        // aerial path; the gradient paths fill in the rest).
        let _ = model.aerial_image(&mask);
        let _ = model.gradient(&mask, &target).unwrap();
        model.gradient_into(&mask, &target, 1.0, &mut grad).unwrap();
        let warm = model.scratch_allocations();
        for _ in 0..5 {
            let _ = model.aerial_image(&mask);
            let _ = model.gradient_at_dose(&mask, &target, 1.02).unwrap();
            model.gradient_into(&mask, &target, 0.98, &mut grad).unwrap();
        }
        assert_eq!(
            model.scratch_allocations(),
            warm,
            "steady-state hot paths must not miss the scratch arena"
        );
    }
}
