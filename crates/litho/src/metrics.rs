//! Printability metrics: squared L2, PVB, and the EPE / bridge / neck
//! defect detectors of paper Fig. 2.

use crate::{Field, LithoModel};
use serde::{Deserialize, Serialize};

/// Squared L2 error between wafer and target (paper Definition 1), scaled to
/// nm² — with binary images this equals the XOR area of the two patterns.
///
/// # Panics
///
/// Panics on shape mismatch.
///
/// ```
/// use ganopc_litho::{metrics::squared_l2_nm2, Field};
/// let a = Field::from_vec(1, 4, vec![1.0, 0.0, 1.0, 0.0]);
/// let b = Field::from_vec(1, 4, vec![1.0, 1.0, 0.0, 0.0]);
/// assert_eq!(squared_l2_nm2(&a, &b, 2.0), 8.0); // 2 px × 4 nm²/px
/// ```
pub fn squared_l2_nm2(wafer: &Field, target: &Field, pixel_nm: f64) -> f64 {
    wafer.squared_l2_distance(target) * pixel_nm * pixel_nm
}

/// Process-variability band area in nm²: pixels printed at the outer dose
/// but not at the inner dose (contour area variation under ±δ dose, the
/// "PVB" column of Table 2).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn pvb_nm2(inner: &Field, outer: &Field, pixel_nm: f64) -> f64 {
    assert_eq!(inner.shape(), outer.shape(), "pvb shape mismatch");
    let px: f64 =
        inner.as_slice().iter().zip(outer.as_slice()).map(|(&i, &o)| (o - i).abs() as f64).sum();
    px * pixel_nm * pixel_nm
}

/// Process-variability band over an arbitrary set of process corners
/// (dose × focus): the area printed by *some* corner but not by *all*
/// corners, in nm². With two models (nominal and defocused) and the
/// standard ±δ doses this is the focus–exposure-matrix PVB.
///
/// # Panics
///
/// Panics when `models` is empty or frames disagree.
pub fn pvb_over_corners(models: &[&LithoModel], mask: &Field, dose_delta: f32) -> f64 {
    assert!(!models.is_empty(), "at least one model required");
    let shape = models[0].shape();
    let px = models[0].pixel_nm();
    let mut union = Field::zeros(shape.0, shape.1);
    let mut intersection = Field::filled(shape.0, shape.1, 1.0);
    // One intensity buffer reused across every corner model.
    let mut aerial = vec![0.0f32; shape.0 * shape.1];
    for model in models {
        assert_eq!(model.shape(), shape, "model frames disagree");
        // PANIC: the shape was asserted against this model one line above.
        model.aerial_image_into(mask, &mut aerial).expect("frame mismatch");
        let th = model.threshold();
        for dose in [1.0 - dose_delta, 1.0 + dose_delta] {
            for (&i, (u, s)) in aerial
                .iter()
                .zip(union.as_mut_slice().iter_mut().zip(intersection.as_mut_slice().iter_mut()))
            {
                if dose * i >= th {
                    *u = 1.0;
                } else {
                    *s = 0.0;
                }
            }
        }
    }
    pvb_nm2(&intersection, &union, px)
}

/// 4-connected component labelling of a thresholded field.
///
/// Returns `(labels, count)`: `labels[i] == 0` for background, else the
/// 1-based component id.
pub fn connected_components(field: &Field, threshold: f32) -> (Vec<u32>, usize) {
    let (h, w) = field.shape();
    let mut labels = vec![0u32; h * w];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..h * w {
        if field.as_slice()[start] < threshold || labels[start] != 0 {
            continue;
        }
        next += 1;
        labels[start] = next;
        stack.push(start);
        while let Some(i) = stack.pop() {
            let (y, x) = (i / w, i % w);
            let mut visit = |j: usize| {
                if field.as_slice()[j] >= threshold && labels[j] == 0 {
                    labels[j] = next;
                    stack.push(j);
                }
            };
            if x > 0 {
                visit(i - 1);
            }
            if x + 1 < w {
                visit(i + 1);
            }
            if y > 0 {
                visit(i - w);
            }
            if y + 1 < h {
                visit(i + w);
            }
        }
    }
    (labels, next as usize)
}

/// Configuration of the defect detectors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefectConfig {
    /// EPE tolerance, nm (ICCAD-2013 uses 15 nm).
    pub epe_tolerance_nm: f64,
    /// Spacing between EPE measurement points along target edges, nm.
    pub epe_sample_step_nm: f64,
    /// Necks narrower than this fraction of the drawn CD are violations.
    pub neck_fraction: f64,
}

impl Default for DefectConfig {
    fn default() -> Self {
        DefectConfig { epe_tolerance_nm: 15.0, epe_sample_step_nm: 40.0, neck_fraction: 0.6 }
    }
}

/// Walks every EPE measurement point, calling `visit(a, d_px)` once per
/// point.
///
/// This is the single sampling pass shared by [`epe_violations`] and
/// [`epe_statistics`], so both always agree on which points are measured
/// and on the displacement found at each. Measurement points sit on every
/// vertical and horizontal transition of the binary `target`, sampled at
/// `cfg.epe_sample_step_nm` spacing along the edge; the wafer contour is
/// located along the edge normal within the violation search range.
///
/// `a` is the target polarity on the low-coordinate side of the edge and
/// `d_px` the *signed* contour displacement in pixels toward increasing
/// coordinate (`None` when no matching wafer transition exists in range —
/// the feature failed to print or merged).
fn for_each_epe_sample(
    wafer: &Field,
    target: &Field,
    pixel_nm: f64,
    cfg: &DefectConfig,
    mut visit: impl FnMut(bool, Option<f64>),
) {
    assert_eq!(wafer.shape(), target.shape(), "epe shape mismatch");
    let (h, w) = target.shape();
    let step = (cfg.epe_sample_step_nm / pixel_nm).round().max(1.0) as usize;
    let tol_px = cfg.epe_tolerance_nm / pixel_nm;
    let search = (tol_px.ceil() as isize + 2).max(3);
    let on = |f: &Field, y: isize, x: isize| -> bool {
        y >= 0
            && x >= 0
            && (y as usize) < h
            && (x as usize) < w
            && f.get(y as usize, x as usize) >= 0.5
    };

    // Vertical edges: target transition between columns x and x+1.
    for y in (0..h).step_by(step) {
        for x in 0..w.saturating_sub(1) {
            let a = target.get(y, x) >= 0.5;
            let b = target.get(y, x + 1) >= 0.5;
            if a == b {
                continue;
            }
            // The drawn edge sits between x and x+1; find the wafer
            // transition along this row near it, closest first.
            let mut found = None;
            for d in 0..=search {
                for xs in [x as isize - d, x as isize + d] {
                    if xs < 0 || (xs + 1) as usize >= w {
                        continue;
                    }
                    let wa = on(wafer, y as isize, xs);
                    let wb = on(wafer, y as isize, xs + 1);
                    if wa != wb && wa == a {
                        found = Some((xs - x as isize) as f64);
                        break;
                    }
                }
                if found.is_some() {
                    break;
                }
            }
            visit(a, found);
        }
    }
    // Horizontal edges: transition between rows y and y+1.
    for x in (0..w).step_by(step) {
        for y in 0..h.saturating_sub(1) {
            let a = target.get(y, x) >= 0.5;
            let b = target.get(y + 1, x) >= 0.5;
            if a == b {
                continue;
            }
            let mut found = None;
            for d in 0..=search {
                for ys in [y as isize - d, y as isize + d] {
                    if ys < 0 || (ys + 1) as usize >= h {
                        continue;
                    }
                    let wa = on(wafer, ys, x as isize);
                    let wb = on(wafer, ys + 1, x as isize);
                    if wa != wb && wa == a {
                        found = Some((ys - y as isize) as f64);
                        break;
                    }
                }
                if found.is_some() {
                    break;
                }
            }
            visit(a, found);
        }
    }
}

/// Edge-placement-error check (paper Fig. 2, left).
///
/// Measurement points are sampled along the horizontal and vertical edges of
/// the binary `target`; at each point the wafer contour is located along the
/// edge normal and the displacement compared against the tolerance. Points
/// where no contour is found within the search range count as violations
/// (the feature failed to print or merged).
///
/// The tolerance comparison happens in nanometers on `|d_px| * pixel_nm`,
/// the exact magnitude [`epe_statistics`] stores for the same point, so the
/// violation count always equals [`EpeStatistics::violations`] at
/// `cfg.epe_tolerance_nm`.
///
/// Returns `(violations, measurements)`.
pub fn epe_violations(
    wafer: &Field,
    target: &Field,
    pixel_nm: f64,
    cfg: &DefectConfig,
) -> (usize, usize) {
    let mut violations = 0usize;
    let mut measurements = 0usize;
    for_each_epe_sample(wafer, target, pixel_nm, cfg, |_a, d_px| {
        measurements += 1;
        match d_px {
            Some(d) if d.abs() * pixel_nm <= cfg.epe_tolerance_nm => {}
            _ => violations += 1,
        }
    });
    (violations, measurements)
}

/// Signed EPE distribution over all measurement points.
///
/// Where [`epe_violations`] reports a pass/fail count, this collects the
/// signed displacements themselves (positive = printed contour pulled back
/// inside the drawn geometry, negative = overprint beyond it), enabling
/// mean/percentile reporting as production OPC scorecards do. Unmeasurable points (no contour in range) are counted
/// separately.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpeStatistics {
    /// Signed EPE samples, nm.
    pub samples_nm: Vec<f64>,
    /// Measurement points where no contour was found within range.
    pub unmeasured: usize,
}

impl EpeStatistics {
    /// Number of measured points.
    pub fn len(&self) -> usize {
        self.samples_nm.len()
    }

    /// Returns `true` when nothing was measured.
    pub fn is_empty(&self) -> bool {
        self.samples_nm.is_empty()
    }

    /// Mean signed EPE, nm (0 when empty).
    pub fn mean_nm(&self) -> f64 {
        if self.samples_nm.is_empty() {
            return 0.0;
        }
        self.samples_nm.iter().sum::<f64>() / self.samples_nm.len() as f64
    }

    /// Largest |EPE|, nm (0 when empty).
    pub fn max_abs_nm(&self) -> f64 {
        self.samples_nm.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Fraction of measured points with |EPE| above `tolerance_nm`.
    pub fn violation_fraction(&self, tolerance_nm: f64) -> f64 {
        if self.samples_nm.is_empty() {
            return 0.0;
        }
        let bad = self.samples_nm.iter().filter(|v| v.abs() > tolerance_nm).count();
        bad as f64 / self.samples_nm.len() as f64
    }

    /// Number of measurement points violating `tolerance_nm`: every
    /// unmeasured point plus every measured point with |EPE| strictly above
    /// the tolerance.
    ///
    /// At the tolerance the distribution was collected with, this equals
    /// `epe_violations(...).0` exactly — both derive from the same
    /// edge-sample walk and compare the same `|d_px| * pixel_nm` magnitude
    /// (the ±1 orientation sign never changes it).
    pub fn violations(&self, tolerance_nm: f64) -> usize {
        self.unmeasured + self.samples_nm.iter().filter(|v| v.abs() > tolerance_nm).count()
    }
}

/// Collects the signed EPE distribution of a wafer against a target.
///
/// Sampling is shared with [`epe_violations`] (both walk the same
/// edge-sample pass): points along every horizontal and vertical target
/// edge at `cfg.epe_sample_step_nm` spacing, displacement measured along
/// the edge normal within the violation search range. Consequently
/// [`EpeStatistics::violations`] at `cfg.epe_tolerance_nm` reproduces the
/// [`epe_violations`] count exactly.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn epe_statistics(
    wafer: &Field,
    target: &Field,
    pixel_nm: f64,
    cfg: &DefectConfig,
) -> EpeStatistics {
    let mut stats = EpeStatistics { samples_nm: Vec::new(), unmeasured: 0 };
    for_each_epe_sample(wafer, target, pixel_nm, cfg, |a, d_px| {
        // Orient by the edge: material sits on the `+` side when the
        // low-coordinate sample is off, so a `+` displacement there is
        // pullback (positive EPE); on a falling edge the sign flips.
        let sign = if a { -1.0 } else { 1.0 };
        match d_px {
            Some(d) => stats.samples_nm.push(sign * d * pixel_nm),
            None => stats.unmeasured += 1,
        }
    });
    stats
}

/// Bridge detection (paper Fig. 2, right): a wafer component that connects
/// two or more distinct target components is an unintended short.
///
/// Returns the number of bridging wafer components.
pub fn bridge_count(wafer: &Field, target: &Field) -> usize {
    assert_eq!(wafer.shape(), target.shape(), "bridge shape mismatch");
    let (wl, wn) = connected_components(wafer, 0.5);
    let (tl, _tn) = connected_components(target, 0.5);
    let mut seen: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); wn + 1];
    for (i, &wlab) in wl.iter().enumerate() {
        if wlab != 0 && tl[i] != 0 {
            seen[wlab as usize].insert(tl[i]);
        }
    }
    seen.iter().filter(|s| s.len() >= 2).count()
}

/// Break detection: target components whose wafer coverage is missing or
/// split into several pieces (a neck pinched through, paper Fig. 2 middle).
///
/// Returns the number of broken target components.
pub fn break_count(wafer: &Field, target: &Field) -> usize {
    assert_eq!(wafer.shape(), target.shape(), "break shape mismatch");
    let (wl, _wn) = connected_components(wafer, 0.5);
    let (tl, tn) = connected_components(target, 0.5);
    let mut cover: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); tn + 1];
    for (i, &tlab) in tl.iter().enumerate() {
        if tlab != 0 && wl[i] != 0 {
            cover[tlab as usize].insert(wl[i]);
        }
    }
    cover[1..].iter().filter(|s| s.len() != 1).count()
}

/// Neck detection: wafer runs crossing target geometry that are narrower
/// than `neck_fraction · drawn run`. Scans both orientations; a run is only
/// measured where the target itself is on (so line-end taper does not
/// dominate).
///
/// Returns the number of violating runs.
pub fn neck_count(wafer: &Field, target: &Field, cfg: &DefectConfig) -> usize {
    assert_eq!(wafer.shape(), target.shape(), "neck shape mismatch");
    let (h, w) = wafer.shape();
    let mut count = 0usize;
    // Horizontal runs.
    for y in 0..h {
        let mut x = 0usize;
        while x < w {
            if target.get(y, x) >= 0.5 {
                let start = x;
                while x < w && target.get(y, x) >= 0.5 {
                    x += 1;
                }
                let t_run = x - start;
                // Measure wafer coverage inside this target run.
                let w_run = (start..x).filter(|&xx| wafer.get(y, xx) >= 0.5).count();
                if w_run > 0 && (w_run as f64) < cfg.neck_fraction * t_run as f64 {
                    count += 1;
                }
            } else {
                x += 1;
            }
        }
    }
    // Vertical runs.
    for x in 0..w {
        let mut y = 0usize;
        while y < h {
            if target.get(y, x) >= 0.5 {
                let start = y;
                while y < h && target.get(y, x) >= 0.5 {
                    y += 1;
                }
                let t_run = y - start;
                let w_run = (start..y).filter(|&yy| wafer.get(yy, x) >= 0.5).count();
                if w_run > 0 && (w_run as f64) < cfg.neck_fraction * t_run as f64 {
                    count += 1;
                }
            } else {
                y += 1;
            }
        }
    }
    count
}

/// The full printability report for one mask (columns of Table 2 plus the
/// Fig. 2 defect inventory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskMetrics {
    /// Squared L2 error at nominal dose, nm².
    pub l2_nm2: f64,
    /// Process-variability band area under ±δ dose, nm².
    pub pvb_nm2: f64,
    /// EPE violations over the sampled measurement points.
    pub epe_violations: usize,
    /// EPE measurement points taken.
    pub epe_measurements: usize,
    /// Bridging wafer components.
    pub bridges: usize,
    /// Broken / missing target components.
    pub breaks: usize,
    /// Neck (thin-CD) violations.
    pub necks: usize,
}

impl MaskMetrics {
    /// Evaluates a mask against a target with a lithography model.
    ///
    /// Runs the full ±δ-dose process window once and derives every metric
    /// from it.
    pub fn evaluate(
        model: &LithoModel,
        mask: &Field,
        target: &Field,
        cfg: &DefectConfig,
    ) -> MaskMetrics {
        let [inner, nominal, outer] = model.process_window(mask);
        let px = model.pixel_nm();
        let (epe_violations, epe_measurements) = epe_violations(&nominal, target, px, cfg);
        MaskMetrics {
            l2_nm2: squared_l2_nm2(&nominal, target, px),
            pvb_nm2: pvb_nm2(&inner, &outer, px),
            epe_violations,
            epe_measurements,
            bridges: bridge_count(&nominal, target),
            breaks: break_count(&nominal, target),
            necks: neck_count(&nominal, target, cfg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field_from(rows: &[&str]) -> Field {
        let h = rows.len();
        let w = rows[0].len();
        let mut f = Field::zeros(h, w);
        for (y, row) in rows.iter().enumerate() {
            for (x, ch) in row.chars().enumerate() {
                if ch == '#' {
                    f.set(y, x, 1.0);
                }
            }
        }
        f
    }

    #[test]
    fn l2_is_xor_area() {
        let a = field_from(&["##..", "##.."]);
        let b = field_from(&[".#..", "##.#"]);
        assert_eq!(squared_l2_nm2(&a, &b, 1.0), 2.0);
        assert_eq!(squared_l2_nm2(&a, &b, 4.0), 32.0);
        assert_eq!(squared_l2_nm2(&a, &a, 4.0), 0.0);
    }

    #[test]
    fn pvb_counts_band_pixels() {
        let inner = field_from(&[".....", ".###.", "....."]);
        let outer = field_from(&["#####", "#####", "#####"]);
        assert_eq!(pvb_nm2(&inner, &outer, 1.0), 12.0);
        assert_eq!(pvb_nm2(&inner, &inner, 1.0), 0.0);
    }

    #[test]
    fn components_count_and_label() {
        let f = field_from(&["##..#", "....#", "#...."]);
        let (labels, n) = connected_components(&f, 0.5);
        assert_eq!(n, 3);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[4]);
        assert_eq!(labels[4], labels[9]); // vertical adjacency
        assert_eq!(labels[2], 0); // background
    }

    #[test]
    fn components_empty_field() {
        let f = Field::zeros(4, 4);
        let (_l, n) = connected_components(&f, 0.5);
        assert_eq!(n, 0);
    }

    #[test]
    fn bridge_detected_between_two_wires() {
        let target = field_from(&["##...##", "##...##", "##...##"]);
        let bridged = field_from(&["##...##", "#######", "##...##"]);
        assert_eq!(bridge_count(&bridged, &target), 1);
        assert_eq!(bridge_count(&target, &target), 0);
    }

    #[test]
    fn break_detected_on_split_wire() {
        let target = field_from(&["#######"]);
        let broken = field_from(&["###.###"]);
        assert_eq!(break_count(&broken, &target), 1);
        assert_eq!(break_count(&target, &target), 0);
        // Fully missing component also counts.
        let gone = Field::zeros(1, 7);
        assert_eq!(break_count(&gone, &target), 1);
    }

    #[test]
    fn neck_detected_on_thin_print() {
        // Target wire 5 wide; wafer narrows to 2 in the middle row.
        let target = field_from(&["#####", "#####", "#####"]);
        let necked = field_from(&["#####", ".##..", "#####"]);
        let cfg = DefectConfig::default();
        assert!(neck_count(&necked, &target, &cfg) >= 1);
        assert_eq!(neck_count(&target, &target, &cfg), 0);
    }

    #[test]
    fn epe_zero_for_perfect_print() {
        let target = field_from(&["........", "..####..", "..####..", "..####..", "........"]);
        let cfg =
            DefectConfig { epe_tolerance_nm: 1.0, epe_sample_step_nm: 1.0, ..Default::default() };
        let (v, m) = epe_violations(&target, &target, 1.0, &cfg);
        assert_eq!(v, 0);
        assert!(m > 0);
    }

    #[test]
    fn epe_flags_shifted_edge() {
        let target = field_from(&["........", "..####..", "..####..", "..####..", "........"]);
        // Wafer shifted right by 2 px, tolerance 1 px.
        let wafer = field_from(&["........", "....####", "....####", "....####", "........"]);
        let cfg =
            DefectConfig { epe_tolerance_nm: 1.0, epe_sample_step_nm: 1.0, ..Default::default() };
        let (v, _m) = epe_violations(&wafer, &target, 1.0, &cfg);
        assert!(v > 0, "shifted edges must violate");
    }

    #[test]
    fn epe_missing_pattern_counts_violations() {
        let target = field_from(&["........", "..####..", "..####..", "........"]);
        let wafer = Field::zeros(4, 8);
        let cfg =
            DefectConfig { epe_tolerance_nm: 1.0, epe_sample_step_nm: 1.0, ..Default::default() };
        let (v, m) = epe_violations(&wafer, &target, 1.0, &cfg);
        assert_eq!(v, m, "every measurement should fail");
        assert!(m > 0);
    }

    #[test]
    fn pvb_over_corners_grows_with_defocus() {
        use crate::OpticalConfig;
        // 16 nm/px so dose bands span whole pixels.
        let mut cfg = OpticalConfig::default_32nm(16.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 6;
        let nominal = crate::LithoModel::new(cfg.clone(), 128, 128).unwrap();
        let defocused = crate::LithoModel::new(cfg.with_defocus(80.0), 128, 128).unwrap();
        let mut mask = Field::zeros(128, 128);
        for y in 32..96 {
            for x in 58..70 {
                mask.set(y, x, 1.0);
            }
        }
        let dose_only = pvb_over_corners(&[&nominal], &mask, 0.05);
        let with_focus = pvb_over_corners(&[&nominal, &defocused], &mask, 0.05);
        assert!(dose_only > 0.0);
        assert!(
            with_focus >= dose_only,
            "adding a focus corner cannot shrink the band: {with_focus} < {dose_only}"
        );
    }

    #[test]
    fn defocus_lowers_image_contrast() {
        use crate::OpticalConfig;
        let mut cfg = OpticalConfig::default_32nm(32.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 6;
        let nominal = crate::LithoModel::new(cfg.clone(), 64, 64).unwrap();
        let defocused = crate::LithoModel::new(cfg.with_defocus(120.0), 64, 64).unwrap();
        let mut mask = Field::zeros(64, 64);
        for y in 16..48 {
            for x in 29..34 {
                mask.set(y, x, 1.0);
            }
        }
        let peak_nominal = nominal.aerial_image(&mask).max();
        let peak_defocused = defocused.aerial_image(&mask).max();
        assert!(
            peak_defocused < peak_nominal,
            "defocus should blur the image: {peak_defocused} vs {peak_nominal}"
        );
    }

    #[test]
    fn epe_statistics_of_perfect_print_are_zero() {
        let target = field_from(&["........", "..####..", "..####..", "..####..", "........"]);
        let cfg =
            DefectConfig { epe_tolerance_nm: 2.0, epe_sample_step_nm: 1.0, ..Default::default() };
        let stats = epe_statistics(&target, &target, 1.0, &cfg);
        assert!(!stats.is_empty());
        assert_eq!(stats.unmeasured, 0);
        assert_eq!(stats.mean_nm(), 0.0);
        assert_eq!(stats.max_abs_nm(), 0.0);
        assert_eq!(stats.violation_fraction(0.5), 0.0);
    }

    #[test]
    fn epe_statistics_report_signed_shift() {
        let target = field_from(&["........", "..####..", "..####..", "..####..", "........"]);
        // Shift right by 1 px: left edge +1 (inward seen from left), right
        // edge appears displaced by 1 in the opposite sign.
        let wafer = field_from(&["........", "...####.", "...####.", "...####.", "........"]);
        let cfg =
            DefectConfig { epe_tolerance_nm: 3.0, epe_sample_step_nm: 1.0, ..Default::default() };
        let stats = epe_statistics(&wafer, &target, 1.0, &cfg);
        assert!(!stats.is_empty());
        assert_eq!(stats.max_abs_nm(), 1.0);
        // A pure translation has zero mean signed EPE over opposing edges.
        assert!(stats.mean_nm().abs() < 0.3, "mean {}", stats.mean_nm());
        // Only the vertical edges are displaced by a horizontal shift —
        // half of all measurement points.
        assert_eq!(stats.violation_fraction(0.5), 0.5);
        assert_eq!(stats.violation_fraction(1.5), 0.0);
    }

    #[test]
    fn epe_statistics_count_unmeasured() {
        let target = field_from(&["........", "..####..", "..####..", "........"]);
        let wafer = Field::zeros(4, 8);
        let cfg =
            DefectConfig { epe_tolerance_nm: 1.0, epe_sample_step_nm: 1.0, ..Default::default() };
        let stats = epe_statistics(&wafer, &target, 1.0, &cfg);
        assert!(stats.is_empty());
        assert!(stats.unmeasured > 0);
    }

    #[test]
    fn epe_statistics_agree_with_epe_violations_on_random_fields() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Both metrics must derive from the same edge-sample walk: for any
        // wafer/target pair the distribution replayed at the collection
        // tolerance reproduces the pass/fail count exactly.
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (h, w) = (24, 24);
            let mut target = Field::zeros(h, w);
            let mut wafer = Field::zeros(h, w);
            // Random rectangles give axis-aligned edges like real clips...
            for _ in 0..4 {
                let y0 = rng.gen_range(0..h - 2);
                let x0 = rng.gen_range(0..w - 2);
                let y1 = rng.gen_range(y0 + 1..h);
                let x1 = rng.gen_range(x0 + 1..w);
                for y in y0..y1 {
                    for x in x0..x1 {
                        target.set(y, x, 1.0);
                    }
                }
            }
            // ...and a noisy wafer exercises measured, shifted, and
            // unmeasurable points alike.
            for y in 0..h {
                for x in 0..w {
                    let flip = rng.gen_bool(0.15);
                    let v = target.get(y, x);
                    wafer.set(y, x, if flip { 1.0 - v } else { v });
                }
            }
            for (pixel_nm, tol_nm) in [(1.0, 1.0), (16.0, 15.0), (10.0, 25.0)] {
                let cfg = DefectConfig {
                    epe_tolerance_nm: tol_nm,
                    epe_sample_step_nm: pixel_nm,
                    ..Default::default()
                };
                let (violations, measurements) = epe_violations(&wafer, &target, pixel_nm, &cfg);
                let stats = epe_statistics(&wafer, &target, pixel_nm, &cfg);
                assert_eq!(
                    measurements,
                    stats.len() + stats.unmeasured,
                    "seed {seed} pixel {pixel_nm}: measurement counts diverged"
                );
                assert_eq!(
                    violations,
                    stats.violations(tol_nm),
                    "seed {seed} pixel {pixel_nm} tol {tol_nm}: violation counts diverged"
                );
            }
        }
    }

    #[test]
    fn default_defect_config_matches_contest() {
        let cfg = DefectConfig::default();
        assert_eq!(cfg.epe_tolerance_nm, 15.0);
        assert!(cfg.neck_fraction > 0.0 && cfg.neck_fraction < 1.0);
    }
}
