//! Sum-of-coherent-systems kernel stack.

use crate::optics::OpticalConfig;
use crate::tcc;
use ganopc_fft::Complex;

/// One coherent-system kernel: spatial taps plus its TCC weight.
#[derive(Debug, Clone)]
pub struct SocsKernel {
    /// Eigenvalue weight `w_k` (after stack normalization).
    pub weight: f32,
    /// Row-major `ksize × ksize` complex taps `h_k`.
    pub taps: Vec<Complex>,
}

/// The full kernel stack `{(h_k, w_k)}` of paper Eq. (2).
///
/// Built from the TCC eigendecomposition ([`tcc::decompose`]): each
/// eigenvector — a set of coefficients over in-pupil frequency samples — is
/// synthesized into a spatial kernel by evaluating its inverse Fourier sum on
/// the kernel support, then Hann-windowed radially to suppress truncation
/// ripple. Weights are normalized so that a fully open mask images to unit
/// intensity, which makes resist thresholds dose-like quantities in `(0, 1)`.
///
/// ```
/// use ganopc_litho::{OpticalConfig, SocsKernels};
/// let mut cfg = OpticalConfig::default_32nm(16.0);
/// cfg.pupil_grid = 11; // fast
/// let stack = SocsKernels::from_config(&cfg);
/// assert!(stack.len() >= 4);
/// assert!((stack.open_field_intensity() - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct SocsKernels {
    kernel_size: usize,
    pixel_nm: f64,
    kernels: Vec<SocsKernel>,
}

impl SocsKernels {
    /// Derives the kernel stack for an optical configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`OpticalConfig::validate`].
    pub fn from_config(cfg: &OpticalConfig) -> Self {
        // PANIC: documented above — misconfiguration is a programming error
        // at construction, not a runtime condition to recover from.
        cfg.validate().expect("invalid optical configuration");
        let dec = tcc::decompose(cfg);
        let ksize = cfg.kernel_size;
        let half = (ksize / 2) as f64;
        let cutoff = cfg.cutoff_per_nm();
        let radius_nm = half * cfg.pixel_nm;

        let mut kernels: Vec<SocsKernel> = dec
            .eigenvalues
            .iter()
            .zip(&dec.eigenvectors)
            .map(|(&lambda, coeffs)| {
                let mut taps = vec![Complex::ZERO; ksize * ksize];
                for ty in 0..ksize {
                    for tx in 0..ksize {
                        let x_nm = (tx as f64 - half) * cfg.pixel_nm;
                        let y_nm = (ty as f64 - half) * cfg.pixel_nm;
                        // Radial Hann window against support truncation.
                        let r = (x_nm * x_nm + y_nm * y_nm).sqrt();
                        let win = if r >= radius_nm {
                            0.0
                        } else {
                            0.5 * (1.0 + (std::f64::consts::PI * r / radius_nm).cos())
                        };
                        if win == 0.0 {
                            continue;
                        }
                        let mut acc_re = 0.0f64;
                        let mut acc_im = 0.0f64;
                        for (s, &(cr, ci)) in dec.samples.iter().zip(coeffs) {
                            let phase =
                                2.0 * std::f64::consts::PI * cutoff * (s.ux * x_nm + s.uy * y_nm);
                            let (sin, cos) = phase.sin_cos();
                            // (cr + i·ci) · e^{iφ}
                            acc_re += cr * cos - ci * sin;
                            acc_im += cr * sin + ci * cos;
                        }
                        taps[ty * ksize + tx] =
                            Complex::new((acc_re * win) as f32, (acc_im * win) as f32);
                    }
                }
                SocsKernel { weight: lambda as f32, taps }
            })
            .collect();

        // Normalize: a fully open mask (all ones) convolves to the DC gain
        // Σ taps of each kernel, so I_open = Σ_k w_k |Σ taps|².
        let open: f64 = kernels
            .iter()
            .map(|k| {
                let dc: Complex = k.taps.iter().copied().sum();
                k.weight as f64 * dc.norm_sqr() as f64
            })
            .sum();
        assert!(open > 0.0, "degenerate kernel stack: zero open-field intensity");
        let scale = (1.0 / open) as f32;
        for k in &mut kernels {
            k.weight *= scale;
        }

        SocsKernels { kernel_size: ksize, pixel_nm: cfg.pixel_nm, kernels }
    }

    /// Reassembles a stack from stored parts (the kernel cache).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent tap counts or an empty stack.
    pub fn from_parts(kernel_size: usize, pixel_nm: f64, kernels: Vec<SocsKernel>) -> Self {
        assert!(!kernels.is_empty(), "empty kernel stack");
        assert!(kernel_size % 2 == 1, "kernel size must be odd");
        for k in &kernels {
            assert_eq!(k.taps.len(), kernel_size * kernel_size, "tap count mismatch");
        }
        SocsKernels { kernel_size, pixel_nm, kernels }
    }

    /// Kernel support in pixels (odd).
    #[inline]
    pub fn kernel_size(&self) -> usize {
        self.kernel_size
    }

    /// Simulation pixel pitch, nm.
    #[inline]
    pub fn pixel_nm(&self) -> f64 {
        self.pixel_nm
    }

    /// Number of kernels retained.
    #[inline]
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Returns `true` when no kernels were retained (never for valid stacks).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// The kernels, strongest first.
    #[inline]
    pub fn kernels(&self) -> &[SocsKernel] {
        &self.kernels
    }

    /// Intensity a fully open mask images to (≈ 1 after normalization).
    pub fn open_field_intensity(&self) -> f64 {
        self.kernels
            .iter()
            .map(|k| {
                let dc: Complex = k.taps.iter().copied().sum();
                k.weight as f64 * dc.norm_sqr() as f64
            })
            .sum()
    }

    /// Truncates the stack to its strongest `n` kernels (ablation studies on
    /// `N_h`, paper Eq. (2)).
    pub fn truncated(&self, n: usize) -> SocsKernels {
        SocsKernels {
            kernel_size: self.kernel_size,
            pixel_nm: self.pixel_nm,
            kernels: self.kernels.iter().take(n.max(1)).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> OpticalConfig {
        let mut c = OpticalConfig::default_32nm(16.0);
        c.pupil_grid = 11;
        c
    }

    #[test]
    fn stack_has_descending_weights() {
        let stack = SocsKernels::from_config(&fast_cfg());
        let ws: Vec<f32> = stack.kernels().iter().map(|k| k.weight).collect();
        for pair in ws.windows(2) {
            assert!(pair[0] >= pair[1], "{ws:?}");
        }
        assert!(ws.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn open_field_normalized_to_unity() {
        let stack = SocsKernels::from_config(&fast_cfg());
        assert!((stack.open_field_intensity() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn leading_kernel_is_low_pass() {
        // The strongest kernel should peak at its center and decay outward.
        let stack = SocsKernels::from_config(&fast_cfg());
        let k = &stack.kernels()[0];
        let n = stack.kernel_size();
        let center = k.taps[(n / 2) * n + n / 2].abs();
        let corner = k.taps[0].abs();
        assert!(center > 10.0 * corner, "center {center} vs corner {corner}");
    }

    #[test]
    fn window_zeroes_kernel_rim() {
        let stack = SocsKernels::from_config(&fast_cfg());
        let n = stack.kernel_size();
        for k in stack.kernels() {
            // The four corners lie beyond the Hann radius → exactly zero.
            for idx in [0, n - 1, (n - 1) * n, n * n - 1] {
                assert_eq!(k.taps[idx], Complex::ZERO);
            }
        }
    }

    #[test]
    fn truncation_keeps_strongest() {
        let stack = SocsKernels::from_config(&fast_cfg());
        let t = stack.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.kernels()[0].weight, stack.kernels()[0].weight);
        // Truncating to zero still keeps one kernel.
        assert_eq!(stack.truncated(0).len(), 1);
    }

    #[test]
    fn taps_are_finite() {
        let stack = SocsKernels::from_config(&fast_cfg());
        for k in stack.kernels() {
            assert!(k.taps.iter().all(|t| t.is_finite()));
        }
    }
}
