//! # ganopc-fault — deterministic fault injection
//!
//! A seeded, deterministic fault plane for robustness testing. Production
//! code calls the query hooks at its failure-prone boundaries:
//!
//! * [`next_write_fault`] — consulted once per atomic artifact write
//!   (`geometry::io::write_atomic*`); can fail the write outright, tear it
//!   at a byte offset, report `ENOSPC`, or fail the fsync/rename step.
//! * [`next_read_fault`] — consulted once per checkpoint file read
//!   (`nn::checkpoint`); fails the read with an injected I/O error.
//! * [`numeric_fault`] — consulted once per training/pretraining/ILT step;
//!   poisons the step's reported loss with NaN or ∞ at a chosen step index,
//!   simulating numeric divergence for the supervisor to catch.
//!
//! With the `fault-inject` feature **off** (the default) every hook is an
//! inlined constant no-op — no statics, no locks, no branches survive
//! optimization, so the zero-allocation and obs-overhead budgets hold
//! unchanged. With the feature on, a process-global [`FaultPlan`] installed
//! by [`install`] drives the hooks.
//!
//! ## Determinism and one-shot semantics
//!
//! A plan addresses faults by *operation index*: write faults fire on the
//! Nth write operation after [`install`], read faults on the Nth checkpoint
//! read, numeric faults on an exact `(domain, step)` pair. Each plan entry
//! fires **at most once** and is then consumed, so a supervisor rollback
//! that replays the faulted step sees it succeed — exactly the transient
//! fault model self-healing is designed for. [`plan_from_seed`] derives a
//! randomized-but-reproducible plan from a seed (splitmix64), which is what
//! the fault-soak gate iterates over.
//!
//! The sink is shared process state: tests that install plans must
//! serialize themselves (the fault-soak suite holds a global lock).

/// Whether the `fault-inject` feature is compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "fault-inject")
}

/// A fault applied to one atomic artifact write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// Fail before any byte reaches the temporary file.
    Fail,
    /// Write exactly this many payload bytes, then fail — a torn write.
    Tear(usize),
    /// Fail the first payload write with `ENOSPC` (disk full).
    Enospc,
    /// Payload lands, but the `fsync` step fails.
    FsyncFail,
    /// Payload lands and syncs, but the rename into place fails.
    RenameFail,
}

/// A poison value injected into a step's reported loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumericFault {
    /// Replace the loss with NaN.
    Nan,
    /// Replace the loss with +∞.
    Inf,
}

impl NumericFault {
    /// The poison value to substitute for the real loss.
    pub fn as_f64(self) -> f64 {
        match self {
            NumericFault::Nan => f64::NAN,
            NumericFault::Inf => f64::INFINITY,
        }
    }
}

/// Which numeric loop a numeric fault targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Domain {
    /// Adversarial training steps (`GanTrainer::train_step`).
    Train,
    /// ILT-guided pretraining steps.
    Pretrain,
    /// ILT descent iterations.
    Ilt,
}

/// A deterministic schedule of faults, installed with [`install`].
///
/// Operation indices are 0-based and count from the moment of
/// installation; see the crate docs for the one-shot semantics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// `(operation index, fault)` for atomic artifact writes.
    pub write_faults: Vec<(u64, WriteFault)>,
    /// Operation indices of checkpoint reads that fail.
    pub read_faults: Vec<u64>,
    /// `(domain, step index, poison)` for numeric loops.
    pub numeric_faults: Vec<(Domain, u64, NumericFault)>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// True when every fault list is empty (nothing left to fire).
    pub fn is_empty(&self) -> bool {
        self.write_faults.is_empty()
            && self.read_faults.is_empty()
            && self.numeric_faults.is_empty()
    }
}

/// Derives a randomized-but-reproducible fault plan from `seed`: one to
/// three write faults in the first ten write operations (all
/// [`WriteFault`] kinds reachable), an optional early read fault, and up
/// to two numeric poisons within the first eight steps of a random
/// domain. Pure function of the seed — the fault-soak gate relies on it.
pub fn plan_from_seed(seed: u64) -> FaultPlan {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x1234_5678);
    let mut plan = FaultPlan::empty();
    let writes = 1 + (splitmix(&mut state) % 3) as usize;
    for _ in 0..writes {
        let at = splitmix(&mut state) % 10;
        let kind = match splitmix(&mut state) % 5 {
            0 => WriteFault::Fail,
            1 => WriteFault::Tear((splitmix(&mut state) % 4096) as usize),
            2 => WriteFault::Enospc,
            3 => WriteFault::FsyncFail,
            _ => WriteFault::RenameFail,
        };
        plan.write_faults.push((at, kind));
    }
    // One fault per operation index keeps the plan unambiguous.
    plan.write_faults.sort_by_key(|&(at, _)| at);
    plan.write_faults.dedup_by_key(|e| e.0);
    if splitmix(&mut state).is_multiple_of(2) {
        plan.read_faults.push(splitmix(&mut state) % 4);
    }
    let numerics = (splitmix(&mut state) % 3) as usize;
    for _ in 0..numerics {
        let domain = match splitmix(&mut state) % 3 {
            0 => Domain::Train,
            1 => Domain::Pretrain,
            _ => Domain::Ilt,
        };
        let at = 1 + splitmix(&mut state) % 8;
        let kind = if splitmix(&mut state).is_multiple_of(2) {
            NumericFault::Nan
        } else {
            NumericFault::Inf
        };
        plan.numeric_faults.push((domain, at, kind));
    }
    plan.numeric_faults.sort_by_key(|&(_, at, _)| at);
    plan
}

/// splitmix64 — the crate is dependency-free, so the generator is inlined.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(feature = "fault-inject")]
mod armed {
    use super::FaultPlan;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    pub(super) struct State {
        pub plan: Option<FaultPlan>,
        pub write_ops: u64,
        pub read_ops: u64,
        pub injected: u64,
    }

    pub(super) static STATE: Mutex<State> =
        Mutex::new(State { plan: None, write_ops: 0, read_ops: 0, injected: 0 });

    /// A panicking faulted test must not wedge the sink for the rest of
    /// the process: recover the poisoned lock instead of propagating.
    pub(super) fn lock() -> MutexGuard<'static, State> {
        STATE.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Installs `plan`, resetting the operation counters to zero. Replaces
/// any previously installed plan. No-op without `fault-inject`.
#[cfg(feature = "fault-inject")]
pub fn install(plan: FaultPlan) {
    let mut st = armed::lock();
    st.plan = Some(plan);
    st.write_ops = 0;
    st.read_ops = 0;
}

/// Installs `plan` (no-op: the `fault-inject` feature is off).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn install(_plan: FaultPlan) {}

/// Removes any installed plan. Operation and injection counters persist
/// until the next [`install`].
#[cfg(feature = "fault-inject")]
pub fn clear() {
    armed::lock().plan = None;
}

/// Removes any installed plan (no-op: the `fault-inject` feature is off).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn clear() {}

/// Total faults fired since process start (all kinds).
#[cfg(feature = "fault-inject")]
pub fn injected_count() -> u64 {
    armed::lock().injected
}

/// Total faults fired since process start (always 0: feature off).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn injected_count() -> u64 {
    0
}

/// Consulted once per atomic artifact write; returns the fault to apply
/// to this write, if the installed plan schedules one. Consumes the
/// fired entry (one-shot).
#[cfg(feature = "fault-inject")]
pub fn next_write_fault() -> Option<WriteFault> {
    let mut st = armed::lock();
    st.plan.as_ref()?;
    let op = st.write_ops;
    st.write_ops += 1;
    let fired = {
        let plan = st.plan.as_mut()?;
        let hit = plan.write_faults.iter().position(|&(at, _)| at == op)?;
        plan.write_faults.remove(hit).1
    };
    st.injected += 1;
    Some(fired)
}

/// Consulted once per atomic artifact write (always `None`: feature off).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn next_write_fault() -> Option<WriteFault> {
    None
}

/// Consulted once per checkpoint file read; true when this read must
/// fail. Consumes the fired entry (one-shot).
#[cfg(feature = "fault-inject")]
pub fn next_read_fault() -> bool {
    let mut st = armed::lock();
    if st.plan.is_none() {
        return false;
    }
    let op = st.read_ops;
    st.read_ops += 1;
    let fired = match st.plan.as_mut() {
        Some(plan) => match plan.read_faults.iter().position(|&at| at == op) {
            Some(hit) => {
                plan.read_faults.remove(hit);
                true
            }
            None => false,
        },
        None => false,
    };
    if fired {
        st.injected += 1;
    }
    fired
}

/// Consulted once per checkpoint file read (always `false`: feature off).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn next_read_fault() -> bool {
    false
}

/// Consulted once per numeric step; returns the poison scheduled for this
/// exact `(domain, step)`, if any. Consumes the fired entry (one-shot).
#[cfg(feature = "fault-inject")]
pub fn numeric_fault(domain: Domain, step: u64) -> Option<NumericFault> {
    let mut st = armed::lock();
    let fired = {
        let plan = st.plan.as_mut()?;
        let hit = plan.numeric_faults.iter().position(|&(d, at, _)| d == domain && at == step)?;
        plan.numeric_faults.remove(hit).2
    };
    st.injected += 1;
    Some(fired)
}

/// Consulted once per numeric step (always `None`: feature off).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn numeric_fault(_domain: Domain, _step: u64) -> Option<NumericFault> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_nonempty() {
        for seed in 0..64 {
            let a = plan_from_seed(seed);
            let b = plan_from_seed(seed);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(!a.write_faults.is_empty(), "seed {seed} has no write faults");
            for &(at, _) in &a.write_faults {
                assert!(at < 10);
            }
            for &(_, at, _) in &a.numeric_faults {
                assert!((1..=8).contains(&at));
            }
        }
    }

    #[test]
    fn seeds_cover_every_write_fault_kind() {
        let mut tear = false;
        let mut enospc = false;
        let mut fsync = false;
        let mut rename = false;
        let mut fail = false;
        for seed in 0..64 {
            for (_, kind) in plan_from_seed(seed).write_faults {
                match kind {
                    WriteFault::Fail => fail = true,
                    WriteFault::Tear(_) => tear = true,
                    WriteFault::Enospc => enospc = true,
                    WriteFault::FsyncFail => fsync = true,
                    WriteFault::RenameFail => rename = true,
                }
            }
        }
        assert!(fail && tear && enospc && fsync && rename, "64 seeds must reach every kind");
    }

    #[test]
    fn poison_values_are_nonfinite() {
        assert!(NumericFault::Nan.as_f64().is_nan());
        assert!(NumericFault::Inf.as_f64().is_infinite());
    }

    // With the feature off these hooks must stay inert even after an
    // install; scripts/check.sh relies on this test running in the
    // default-feature workspace pass.
    #[cfg(not(feature = "fault-inject"))]
    #[test]
    fn hooks_are_inert_without_the_feature() {
        assert!(!enabled());
        install(plan_from_seed(1));
        assert_eq!(next_write_fault(), None);
        assert!(!next_read_fault());
        assert_eq!(numeric_fault(Domain::Train, 1), None);
        assert_eq!(injected_count(), 0);
        clear();
    }

    #[cfg(feature = "fault-inject")]
    mod armed_behaviour {
        use super::super::*;
        use std::sync::Mutex;

        // The sink is process-global; serialize the armed tests.
        static LOCK: Mutex<()> = Mutex::new(());

        fn serial() -> std::sync::MutexGuard<'static, ()> {
            LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        #[test]
        fn write_faults_fire_once_at_their_op_index() {
            let _g = serial();
            let mut plan = FaultPlan::empty();
            plan.write_faults.push((1, WriteFault::Enospc));
            install(plan);
            assert_eq!(next_write_fault(), None); // op 0
            assert_eq!(next_write_fault(), Some(WriteFault::Enospc)); // op 1
            assert_eq!(next_write_fault(), None); // consumed
            clear();
        }

        #[test]
        fn numeric_faults_match_domain_and_step() {
            let _g = serial();
            let mut plan = FaultPlan::empty();
            plan.numeric_faults.push((Domain::Ilt, 3, NumericFault::Nan));
            install(plan);
            assert_eq!(numeric_fault(Domain::Train, 3), None);
            assert_eq!(numeric_fault(Domain::Ilt, 2), None);
            assert_eq!(numeric_fault(Domain::Ilt, 3), Some(NumericFault::Nan));
            assert_eq!(numeric_fault(Domain::Ilt, 3), None); // one-shot
            clear();
        }

        #[test]
        fn read_faults_count_their_own_ops() {
            let _g = serial();
            let mut plan = FaultPlan::empty();
            plan.read_faults.push(0);
            install(plan);
            assert_eq!(next_write_fault(), None); // write ops are independent
            assert!(next_read_fault());
            assert!(!next_read_fault());
            clear();
        }

        #[test]
        fn install_resets_op_counters() {
            let _g = serial();
            let mut plan = FaultPlan::empty();
            plan.write_faults.push((0, WriteFault::Fail));
            install(plan.clone());
            assert_eq!(next_write_fault(), Some(WriteFault::Fail));
            install(plan);
            assert_eq!(next_write_fault(), Some(WriteFault::Fail));
            clear();
        }
    }
}
