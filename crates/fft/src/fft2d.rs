//! Row–column 2-D FFT with cache-blocked transposes.

use std::cell::RefCell;

use crate::{Complex, Direction, Fft1d, FftError};

/// Tile edge for the blocked transpose. 32 complex values per row of a tile
/// is 256 bytes — four cache lines — so a 32×32 tile streams through L1
/// while both the read and the write side stay within a handful of pages.
const TRANSPOSE_BLOCK: usize = 32;

/// Transposes a row-major `rows × cols` matrix into `dst` (`cols × rows`),
/// walking tile-by-tile so both sides of the copy stay cache-resident.
pub(crate) fn transpose_into(src: &[Complex], dst: &mut [Complex], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for y0 in (0..rows).step_by(TRANSPOSE_BLOCK) {
        let y1 = (y0 + TRANSPOSE_BLOCK).min(rows);
        for x0 in (0..cols).step_by(TRANSPOSE_BLOCK) {
            let x1 = (x0 + TRANSPOSE_BLOCK).min(cols);
            for y in y0..y1 {
                for x in x0..x1 {
                    dst[x * rows + y] = src[y * cols + x];
                }
            }
        }
    }
}

thread_local! {
    /// Growable per-thread scratch backing the allocation-free convenience
    /// entry points ([`Fft2d::transform`], [`Fft2d::forward_real`]).
    static SCRATCH: RefCell<Vec<Complex>> = const { RefCell::new(Vec::new()) };
}

/// A planned 2-D FFT over a `height × width` row-major buffer.
///
/// The transform is separable: a contiguous row pass, then a cache-blocked
/// transpose into scratch, a second contiguous row pass over the former
/// columns, and a transpose back. The two transposes replace the strided
/// per-column gather of the seed implementation, so the column pass also
/// runs at unit stride and the plan performs no allocation when scratch is
/// supplied via [`Fft2d::transform_with`].
///
/// ```
/// use ganopc_fft::{Complex, Direction, Fft2d};
/// # fn main() -> Result<(), ganopc_fft::FftError> {
/// let plan = Fft2d::new(4, 8)?;
/// let mut img = vec![Complex::from_real(1.0); 4 * 8];
/// plan.transform(&mut img, Direction::Forward)?;
/// // All energy at DC for a constant image.
/// assert!((img[0].re - 32.0).abs() < 1e-4);
/// assert!(img[1..].iter().all(|c| c.abs() < 1e-3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fft2d {
    height: usize,
    width: usize,
    row_plan: Fft1d,
    col_plan: Fft1d,
}

impl Fft2d {
    /// Plans a 2-D transform for a `height × width` grid.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidLength`] unless both dimensions are nonzero
    /// powers of two.
    pub fn new(height: usize, width: usize) -> Result<Self, FftError> {
        let row_plan = Fft1d::new(width)?;
        let col_plan = Fft1d::new(height)?;
        Ok(Fft2d { height, width, row_plan, col_plan })
    }

    /// Grid height (number of rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Grid width (number of columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of samples `height * width`.
    #[inline]
    pub fn len(&self) -> usize {
        self.height * self.width
    }

    /// Always `false`: both dimensions are validated nonzero at construction.
    /// Present for API completeness alongside [`Fft2d::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Transforms a row-major `height × width` buffer in place, borrowing a
    /// per-thread scratch buffer for the transposes.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeMismatch`] when `data.len() != height * width`.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            self.transform_with(data, dir, &mut scratch)
        })
    }

    /// Transforms a row-major buffer in place using caller-owned scratch.
    ///
    /// `scratch` is grown to `height * width` once and then reused; steady
    /// state performs zero heap allocation. Its contents on return are the
    /// transposed intermediate and carry no meaning to callers.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeMismatch`] when `data.len() != height * width`.
    pub fn transform_with(
        &self,
        data: &mut [Complex],
        dir: Direction,
        scratch: &mut Vec<Complex>,
    ) -> Result<(), FftError> {
        if data.len() != self.len() {
            return Err(FftError::SizeMismatch { expected: self.len(), actual: data.len() });
        }
        let (h, w) = (self.height, self.width);
        scratch.resize(h * w, Complex::ZERO);
        for row in data.chunks_exact_mut(w) {
            self.row_plan.transform_unchecked(row, dir);
        }
        transpose_into(data, scratch, h, w);
        for col in scratch.chunks_exact_mut(h) {
            self.col_plan.transform_unchecked(col, dir);
        }
        transpose_into(scratch, data, w, h);
        Ok(())
    }

    /// Convenience: forward-transforms a real-valued image into a fresh
    /// complex spectrum buffer.
    ///
    /// The litho hot path uses [`crate::RealFft2d`] and its packed
    /// half-spectrum instead; this full-spectrum variant remains for tests
    /// and reference computations.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeMismatch`] when `real.len() != height * width`.
    pub fn forward_real(&self, real: &[f32]) -> Result<Vec<Complex>, FftError> {
        if real.len() != self.len() {
            return Err(FftError::SizeMismatch { expected: self.len(), actual: real.len() });
        }
        let mut buf: Vec<Complex> = real.iter().map(|&r| Complex::from_real(r)).collect();
        self.transform(&mut buf, Direction::Forward)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(h: usize, w: usize) -> Vec<Complex> {
        (0..h * w)
            .map(|i| {
                let y = (i / w) as f32;
                let x = (i % w) as f32;
                Complex::new((0.3 * x + 0.7 * y).sin(), (0.11 * x * y).cos() * 0.5)
            })
            .collect()
    }

    #[test]
    fn rejects_bad_dims() {
        assert!(Fft2d::new(3, 8).is_err());
        assert!(Fft2d::new(8, 0).is_err());
        assert!(Fft2d::new(8, 8).is_ok());
    }

    #[test]
    fn transpose_roundtrip_rectangular() {
        for (r, c) in [(1usize, 64usize), (64, 1), (8, 8), (33, 70), (128, 32)] {
            let src: Vec<Complex> =
                (0..r * c).map(|i| Complex::new(i as f32, -(i as f32) * 0.5)).collect();
            let mut t = vec![Complex::ZERO; r * c];
            let mut back = vec![Complex::ZERO; r * c];
            transpose_into(&src, &mut t, r, c);
            for y in 0..r {
                for x in 0..c {
                    assert_eq!(t[x * r + y], src[y * c + x]);
                }
            }
            transpose_into(&t, &mut back, c, r);
            assert_eq!(back, src);
        }
    }

    #[test]
    fn roundtrip_rectangular() {
        for (h, w) in [(2usize, 16usize), (16, 2), (8, 8), (32, 64)] {
            let plan = Fft2d::new(h, w).unwrap();
            let input = pattern(h, w);
            let mut data = input.clone();
            plan.transform(&mut data, Direction::Forward).unwrap();
            plan.transform(&mut data, Direction::Inverse).unwrap();
            for (a, b) in data.iter().zip(&input) {
                assert!((a.re - b.re).abs() < 1e-3, "{h}x{w}");
                assert!((a.im - b.im).abs() < 1e-3, "{h}x{w}");
            }
        }
    }

    #[test]
    fn impulse_flat_spectrum_2d() {
        let plan = Fft2d::new(8, 16).unwrap();
        let mut data = vec![Complex::ZERO; 128];
        data[0] = Complex::ONE;
        plan.transform(&mut data, Direction::Forward).unwrap();
        for c in &data {
            assert!((c.re - 1.0).abs() < 1e-5 && c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn separability_matches_manual_passes() {
        // 2-D DFT must equal 1-D over rows followed by 1-D over columns.
        let (h, w) = (8usize, 8usize);
        let plan2 = Fft2d::new(h, w).unwrap();
        let plan1 = Fft1d::new(8).unwrap();
        let input = pattern(h, w);

        let mut got = input.clone();
        plan2.transform(&mut got, Direction::Forward).unwrap();

        let mut manual = input;
        for row in manual.chunks_exact_mut(w) {
            plan1.transform(row, Direction::Forward).unwrap();
        }
        for x in 0..w {
            let mut col: Vec<Complex> = (0..h).map(|y| manual[y * w + x]).collect();
            plan1.transform(&mut col, Direction::Forward).unwrap();
            for y in 0..h {
                manual[y * w + x] = col[y];
            }
        }
        for (g, m) in got.iter().zip(&manual) {
            assert!((g.re - m.re).abs() < 1e-4);
            assert!((g.im - m.im).abs() < 1e-4);
        }
    }

    #[test]
    fn transform_with_matches_transform() {
        let (h, w) = (16usize, 8usize);
        let plan = Fft2d::new(h, w).unwrap();
        let input = pattern(h, w);
        let mut a = input.clone();
        let mut b = input;
        let mut scratch = Vec::new();
        plan.transform(&mut a, Direction::Forward).unwrap();
        plan.transform_with(&mut b, Direction::Forward, &mut scratch).unwrap();
        assert_eq!(a, b);
        // Scratch is grown once and reused verbatim on the next call.
        let cap = scratch.capacity();
        plan.transform_with(&mut b, Direction::Inverse, &mut scratch).unwrap();
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn forward_real_matches_complex_path() {
        let plan = Fft2d::new(4, 4).unwrap();
        let real: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
        let spec = plan.forward_real(&real).unwrap();
        let mut manual: Vec<Complex> = real.iter().map(|&r| Complex::from_real(r)).collect();
        plan.transform(&mut manual, Direction::Forward).unwrap();
        assert_eq!(spec.len(), manual.len());
        for (a, b) in spec.iter().zip(&manual) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn real_input_spectrum_is_hermitian() {
        let (h, w) = (8usize, 8usize);
        let plan = Fft2d::new(h, w).unwrap();
        let real: Vec<f32> = (0..h * w).map(|i| ((i * 7 % 13) as f32) / 13.0).collect();
        let spec = plan.forward_real(&real).unwrap();
        for y in 0..h {
            for x in 0..w {
                let a = spec[y * w + x];
                let b = spec[((h - y) % h) * w + (w - x) % w].conj();
                assert!((a.re - b.re).abs() < 1e-3);
                assert!((a.im - b.im).abs() < 1e-3);
            }
        }
    }
}
