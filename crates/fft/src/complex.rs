//! Single-precision complex arithmetic.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A single-precision complex number `re + i·im`.
///
/// The layout is `#[repr(C)]` so buffers of [`Complex`] can be reinterpreted
/// as interleaved `f32` pairs when exchanging data with raw image buffers.
///
/// ```
/// use ganopc_fft::Complex;
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// assert!((a.abs() - 5f32.sqrt()).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f32) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}` — the unit phasor at angle `theta` (radians).
    ///
    /// ```
    /// use ganopc_fft::Complex;
    /// let c = Complex::cis(std::f32::consts::FRAC_PI_2);
    /// assert!(c.re.abs() < 1e-6 && (c.im - 1.0).abs() < 1e-6);
    /// ```
    #[inline]
    pub fn cis(theta: f32) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f32) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    /// Fused multiply-add `self + a * b`, the inner-loop primitive of the
    /// convolution kernels.
    #[inline]
    pub fn mul_add(self, a: Complex, b: Complex) -> Self {
        Complex { re: self.re + a.re * b.re - a.im * b.im, im: self.im + a.re * b.im + a.im * b.re }
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f32) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f32> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f32) -> Complex {
        Complex { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl From<f32> for Complex {
    #[inline]
    fn from(re: f32) -> Complex {
        Complex::from_real(re)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, c| acc + c)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6
    }

    #[test]
    fn constants() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
    }

    #[test]
    #[allow(clippy::neg_multiply)] // spells out the (a+bi)(c+di) expansion
    fn mul_matches_expansion() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(-1.0, 4.0);
        assert!(close(a * b, Complex::new(2.0 * -1.0 - 3.0 * 4.0, 2.0 * 4.0 + 3.0 * -1.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(0.7, -1.3);
        let b = Complex::new(2.5, 0.4);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex::new(3.0, -4.0);
        assert_eq!(a.conj(), Complex::new(3.0, 4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        let prod = a * a.conj();
        assert!(close(prod, Complex::from_real(25.0)));
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let theta = k as f32 * std::f32::consts::PI / 8.0;
            let c = Complex::cis(theta);
            assert!((c.abs() - 1.0).abs() < 1e-6);
            assert!(
                (c.arg() - theta).rem_euclid(2.0 * std::f32::consts::PI) < 1e-4
                    || (c.arg() - theta).rem_euclid(2.0 * std::f32::consts::PI)
                        > 2.0 * std::f32::consts::PI - 1e-4
            );
        }
    }

    #[test]
    fn mul_add_accumulates() {
        let acc = Complex::new(1.0, 1.0);
        let out = acc.mul_add(Complex::new(2.0, 0.0), Complex::new(0.0, 3.0));
        assert!(close(out, Complex::new(1.0, 7.0)));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f32, 1.0)).sum();
        assert!(close(total, Complex::new(6.0, 4.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
