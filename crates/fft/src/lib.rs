//! Planned real-FFT spectral engine for the GAN-OPC lithography stack.
//!
//! Every optical computation in the workspace — Hopkins/SOCS aerial images
//! ([`ganopc-litho`]), inverse-lithography gradients ([`ganopc-ilt`]) and the
//! lithography-guided pre-training of the GAN generator — reduces to cyclic
//! convolutions of a mask field with a set of optical kernels. This crate
//! provides the minimal, dependency-free machinery for those convolutions:
//!
//! * [`Complex`] — a `#[repr(C)]` single-precision complex number with the
//!   usual arithmetic;
//! * [`Fft1d`] — a planned, iterative mixed radix-4/radix-2 Cooley–Tukey
//!   transform for power-of-two lengths, with direction-specific twiddle
//!   tables and a precomputed digit-reversal swap program;
//! * [`Fft2d`] — a row–column 2-D transform built on [`Fft1d`], running the
//!   column pass through cache-blocked transposes;
//! * [`RealFft2d`] — the real-input 2-D transform over the packed Hermitian
//!   `h × (w/2+1)` half-spectrum that carries the litho hot path;
//! * [`Arena`] — a shared freelist of frame-sized scratch buffers so
//!   steady-state convolutions allocate nothing;
//! * [`spectrum`] helpers — frequency-domain products, half-spectrum kernel
//!   storage and centered kernel embedding used by the convolution pipelines
//!   upstream.
//!
//! # Example
//!
//! ```
//! use ganopc_fft::{Complex, Fft2d, Direction};
//!
//! # fn main() -> Result<(), ganopc_fft::FftError> {
//! let fft = Fft2d::new(8, 8)?;
//! let mut data = vec![Complex::ZERO; 64];
//! data[0] = Complex::new(1.0, 0.0); // unit impulse
//! fft.transform(&mut data, Direction::Forward)?;
//! // The spectrum of an impulse is flat.
//! assert!(data.iter().all(|c| (c.re - 1.0).abs() < 1e-6 && c.im.abs() < 1e-6));
//! # Ok(())
//! # }
//! ```
//!
//! Sizes are restricted to powers of two because every raster in the
//! reproduction (training clips, benchmark clips, kernel supports) is chosen
//! as a power of two, matching the 2048×2048 ICCAD-2013 frames.

mod arena;
mod complex;
mod fft1d;
mod fft2d;
mod rfft;
pub mod spectrum;

pub use arena::Arena;
pub use complex::Complex;
pub use fft1d::Fft1d;
pub use fft2d::Fft2d;
pub use rfft::RealFft2d;

use std::error::Error;
use std::fmt;

/// Transform direction.
///
/// [`Direction::Inverse`] applies the `1/N` normalization so that
/// `inverse(forward(x)) == x` up to rounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Forward DFT, negative exponent, unnormalized.
    Forward,
    /// Inverse DFT, positive exponent, normalized by `1/N`.
    Inverse,
}

/// Error type for FFT planning and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// Requested length is zero or not a power of two.
    InvalidLength(usize),
    /// Buffer length does not match the planned transform size.
    SizeMismatch {
        /// Length the plan was created for.
        expected: usize,
        /// Length of the buffer actually supplied.
        actual: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::InvalidLength(n) => {
                write!(f, "fft length {n} is not a nonzero power of two")
            }
            FftError::SizeMismatch { expected, actual } => {
                write!(f, "buffer of length {actual} does not match plan size {expected}")
            }
        }
    }
}

impl Error for FftError {}

/// Returns `true` when `n` is a nonzero power of two.
///
/// ```
/// assert!(ganopc_fft::is_power_of_two(256));
/// assert!(!ganopc_fft::is_power_of_two(0));
/// assert!(!ganopc_fft::is_power_of_two(48));
/// ```
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `>= n` (`n` must be nonzero and representable).
///
/// ```
/// assert_eq!(ganopc_fft::next_power_of_two(100), 128);
/// assert_eq!(ganopc_fft::next_power_of_two(128), 128);
/// ```
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}
