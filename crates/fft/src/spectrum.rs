//! Frequency-domain helpers shared by the lithography and ILT pipelines.
//!
//! The convolution convention used across the workspace is *cyclic*
//! convolution on the full clip raster. Optical kernels have compact support
//! (tens of pixels) while clips keep a dark margin wider than that support,
//! so cyclic wrap-around never influences printed geometry — this mirrors how
//! the ICCAD-2013 kit applies its kernels.

use crate::{Complex, Direction, Fft2d, FftError};

/// Multiplies two spectra element-wise into `a` (`a[i] *= b[i]`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_assign(a: &mut [Complex], b: &[Complex]) {
    assert_eq!(a.len(), b.len(), "spectrum length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x *= *y;
    }
}

/// Multiplies `a` element-wise by the conjugate of `b` (`a[i] *= conj(b[i])`),
/// the frequency-domain form of cyclic *correlation* used in the ILT
/// gradient (Eq. (14) of the paper, the `⊗ H*` terms).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_conj_assign(a: &mut [Complex], b: &[Complex]) {
    assert_eq!(a.len(), b.len(), "spectrum length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x *= y.conj();
    }
}

/// Embeds a small centered kernel into a `height × width` frame so that the
/// kernel origin (its center tap) lands at index `(0, 0)` with cyclic
/// wrap-around — the layout required for FFT convolution to act as a
/// *centered* spatial filter.
///
/// `kernel` is row-major `ksize × ksize` and `ksize` must be odd and no
/// larger than either frame dimension.
///
/// # Panics
///
/// Panics if `kernel.len() != ksize * ksize`, if `ksize` is even, or if the
/// kernel does not fit in the frame.
pub fn embed_centered_kernel(
    kernel: &[Complex],
    ksize: usize,
    height: usize,
    width: usize,
) -> Vec<Complex> {
    assert_eq!(kernel.len(), ksize * ksize, "kernel buffer size mismatch");
    assert!(ksize % 2 == 1, "kernel size must be odd");
    assert!(ksize <= height && ksize <= width, "kernel larger than frame");
    let half = ksize / 2;
    let mut frame = vec![Complex::ZERO; height * width];
    for ky in 0..ksize {
        for kx in 0..ksize {
            // Tap offset relative to the kernel center, wrapped cyclically.
            let dy = (ky + height - half) % height;
            let dx = (kx + width - half) % width;
            frame[dy * width + dx] = kernel[ky * ksize + kx];
        }
    }
    frame
}

/// Precomputed spectrum of a centered kernel, ready for repeated cyclic
/// convolutions against same-sized fields.
#[derive(Debug, Clone)]
pub struct KernelSpectrum {
    height: usize,
    width: usize,
    spectrum: Vec<Complex>,
}

impl KernelSpectrum {
    /// Builds the spectrum of a centered `ksize × ksize` kernel embedded in a
    /// `height × width` frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the frame dimensions are not powers of two.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`embed_centered_kernel`].
    pub fn new(
        kernel: &[Complex],
        ksize: usize,
        height: usize,
        width: usize,
    ) -> Result<Self, FftError> {
        let plan = Fft2d::new(height, width)?;
        let mut frame = embed_centered_kernel(kernel, ksize, height, width);
        plan.transform(&mut frame, Direction::Forward)?;
        Ok(KernelSpectrum { height, width, spectrum: frame })
    }

    /// Frame height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Frame width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The raw spectrum samples.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.spectrum
    }

    /// Sum of |spectrum|² — useful for energy diagnostics.
    pub fn energy(&self) -> f32 {
        self.spectrum.iter().map(|c| c.norm_sqr()).sum()
    }
}

/// Cyclically convolves a real field with a precomputed kernel spectrum,
/// returning the (complex) filtered field.
///
/// This is the building block of the SOCS aerial-image model
/// `I = Σ_k w_k |M ⊗ h_k|²`.
///
/// # Errors
///
/// Returns [`FftError::SizeMismatch`] if `field.len()` does not match the
/// kernel frame.
pub fn convolve_real(
    plan: &Fft2d,
    field: &[f32],
    kernel: &KernelSpectrum,
) -> Result<Vec<Complex>, FftError> {
    if field.len() != kernel.spectrum.len() || plan.len() != kernel.spectrum.len() {
        return Err(FftError::SizeMismatch {
            expected: kernel.spectrum.len(),
            actual: field.len(),
        });
    }
    let mut spec = plan.forward_real(field)?;
    mul_assign(&mut spec, &kernel.spectrum);
    plan.transform(&mut spec, Direction::Inverse)?;
    Ok(spec)
}

/// Cyclically convolves a *complex* field spectrum-in-place workflow:
/// `out = IFFT(FFT(field) ⊙ K)` where `K` is conjugated when
/// `conjugate_kernel` is set (turning convolution into correlation).
///
/// # Errors
///
/// Returns [`FftError::SizeMismatch`] on any dimension disagreement.
pub fn convolve_complex(
    plan: &Fft2d,
    field: &[Complex],
    kernel: &KernelSpectrum,
    conjugate_kernel: bool,
) -> Result<Vec<Complex>, FftError> {
    if field.len() != kernel.spectrum.len() || plan.len() != kernel.spectrum.len() {
        return Err(FftError::SizeMismatch {
            expected: kernel.spectrum.len(),
            actual: field.len(),
        });
    }
    let mut spec = field.to_vec();
    plan.transform(&mut spec, Direction::Forward)?;
    if conjugate_kernel {
        mul_conj_assign(&mut spec, &kernel.spectrum);
    } else {
        mul_assign(&mut spec, &kernel.spectrum);
    }
    plan.transform(&mut spec, Direction::Inverse)?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct O(N²·K²) cyclic convolution reference.
    fn naive_cyclic_convolve(
        field: &[f32],
        h: usize,
        w: usize,
        kernel: &[Complex],
        ksize: usize,
    ) -> Vec<Complex> {
        let half = ksize as isize / 2;
        let mut out = vec![Complex::ZERO; h * w];
        for y in 0..h as isize {
            for x in 0..w as isize {
                let mut acc = Complex::ZERO;
                for ky in 0..ksize as isize {
                    for kx in 0..ksize as isize {
                        let sy = (y - (ky - half)).rem_euclid(h as isize) as usize;
                        let sx = (x - (kx - half)).rem_euclid(w as isize) as usize;
                        let f = field[sy * w + sx];
                        acc += kernel[(ky * ksize as isize + kx) as usize].scale(f);
                    }
                }
                out[(y * w as isize + x) as usize] = acc;
            }
        }
        out
    }

    #[test]
    fn identity_kernel_is_noop() {
        let (h, w) = (8, 8);
        let kernel = {
            let mut k = vec![Complex::ZERO; 9];
            k[4] = Complex::ONE; // center tap of a 3x3 kernel
            k
        };
        let spec = KernelSpectrum::new(&kernel, 3, h, w).unwrap();
        let plan = Fft2d::new(h, w).unwrap();
        let field: Vec<f32> = (0..64).map(|i| (i as f32 * 0.2).sin()).collect();
        let out = convolve_real(&plan, &field, &spec).unwrap();
        for (o, f) in out.iter().zip(&field) {
            assert!((o.re - f).abs() < 1e-4 && o.im.abs() < 1e-4);
        }
    }

    #[test]
    fn fft_convolution_matches_naive() {
        let (h, w) = (16, 8);
        let ksize = 5;
        let kernel: Vec<Complex> = (0..ksize * ksize)
            .map(|i| Complex::new((i as f32 * 0.31).sin(), (i as f32 * 0.17).cos() * 0.2))
            .collect();
        let field: Vec<f32> = (0..h * w).map(|i| ((i * 5 % 11) as f32) / 11.0).collect();
        let spec = KernelSpectrum::new(&kernel, ksize, h, w).unwrap();
        let plan = Fft2d::new(h, w).unwrap();
        let fast = convolve_real(&plan, &field, &spec).unwrap();
        let slow = naive_cyclic_convolve(&field, h, w, &kernel, ksize);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a.re - b.re).abs() < 1e-3, "{a} vs {b}");
            assert!((a.im - b.im).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn correlation_flips_kernel() {
        // Correlation with kernel k == convolution with conj + spatial flip;
        // verify on an asymmetric real kernel via an impulse response.
        let (h, w) = (8, 8);
        let mut kernel = vec![Complex::ZERO; 9];
        kernel[0] = Complex::from_real(1.0); // top-left tap of a 3x3 kernel
        let spec = KernelSpectrum::new(&kernel, 3, h, w).unwrap();
        let plan = Fft2d::new(h, w).unwrap();
        let mut field = vec![Complex::ZERO; h * w];
        field[3 * w + 3] = Complex::ONE;

        let conv = convolve_complex(&plan, &field, &spec, false).unwrap();
        let corr = convolve_complex(&plan, &field, &spec, true).unwrap();
        // Convolution shifts the impulse by (-1,-1); correlation by (+1,+1).
        let peak_at = |v: &[Complex]| {
            let (idx, _) = v
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                .unwrap();
            (idx / w, idx % w)
        };
        assert_eq!(peak_at(&conv), (2, 2));
        assert_eq!(peak_at(&corr), (4, 4));
    }

    #[test]
    fn embed_rejects_even_kernel() {
        let kernel = vec![Complex::ZERO; 16];
        let result = std::panic::catch_unwind(|| embed_centered_kernel(&kernel, 4, 8, 8));
        assert!(result.is_err());
    }

    #[test]
    fn embed_places_center_at_origin() {
        let mut kernel = vec![Complex::ZERO; 9];
        kernel[4] = Complex::from_real(7.0);
        let frame = embed_centered_kernel(&kernel, 3, 8, 8);
        assert_eq!(frame[0], Complex::from_real(7.0));
        assert_eq!(frame.iter().filter(|c| c.abs() > 0.0).count(), 1);
    }

    #[test]
    fn mul_conj_assign_conjugates_rhs() {
        let mut a = vec![Complex::new(1.0, 1.0)];
        let b = vec![Complex::new(0.0, 2.0)];
        mul_conj_assign(&mut a, &b);
        // (1+i) * conj(2i) = (1+i)(-2i) = -2i - 2i² = 2 - 2i
        assert_eq!(a[0], Complex::new(2.0, -2.0));
    }

    #[test]
    fn kernel_spectrum_energy_positive() {
        let kernel = vec![Complex::from_real(0.5); 9];
        let spec = KernelSpectrum::new(&kernel, 3, 16, 16).unwrap();
        assert!(spec.energy() > 0.0);
        assert_eq!(spec.height(), 16);
        assert_eq!(spec.width(), 16);
        assert_eq!(spec.as_slice().len(), 256);
    }
}
