//! Frequency-domain helpers shared by the lithography and ILT pipelines.
//!
//! The convolution convention used across the workspace is *cyclic*
//! convolution on the full clip raster. Optical kernels have compact support
//! (tens of pixels) while clips keep a dark margin wider than that support,
//! so cyclic wrap-around never influences printed geometry — this mirrors how
//! the ICCAD-2013 kit applies its kernels.
//!
//! Kernel spectra are stored in the packed `h × (w/2+1)` half-spectrum form
//! of [`RealFft2d`]: a complex kernel `h = h_re + i·h_im` is split into its
//! two real components, each with a Hermitian spectrum, so every convolution
//! against a real mask runs entirely through the real-FFT engine. Components
//! that vanish (at nominal focus most SOCS kernels are near-pure real or
//! near-pure imaginary) are dropped, halving both storage and work.

use crate::{Complex, Direction, Fft2d, FftError, RealFft2d};

/// Multiplies two spectra element-wise into `a` (`a[i] *= b[i]`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_assign(a: &mut [Complex], b: &[Complex]) {
    assert_eq!(a.len(), b.len(), "spectrum length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x *= *y;
    }
}

/// Multiplies `a` element-wise by the conjugate of `b` (`a[i] *= conj(b[i])`),
/// the frequency-domain form of cyclic *correlation* used in the ILT
/// gradient (Eq. (14) of the paper, the `⊗ H*` terms).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_conj_assign(a: &mut [Complex], b: &[Complex]) {
    assert_eq!(a.len(), b.len(), "spectrum length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x *= y.conj();
    }
}

/// Element-wise product into a separate output: `out[i] = a[i] * b[i]`.
///
/// The allocation-free form used by the litho hot path, where `a` is a
/// shared mask spectrum that must survive for the next kernel.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_into(out: &mut [Complex], a: &[Complex], b: &[Complex]) {
    assert_eq!(out.len(), a.len(), "spectrum length mismatch");
    assert_eq!(a.len(), b.len(), "spectrum length mismatch");
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = *x * *y;
    }
}

/// Conjugated product into a separate output: `out[i] = a[i] * conj(b[i])`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_conj_into(out: &mut [Complex], a: &[Complex], b: &[Complex]) {
    assert_eq!(out.len(), a.len(), "spectrum length mismatch");
    assert_eq!(a.len(), b.len(), "spectrum length mismatch");
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = *x * y.conj();
    }
}

/// Conjugated product accumulated into `out`: `out[i] += a[i] * conj(b[i])`.
///
/// With [`mul_conj_into`] this builds the Eq. (14) gradient spectrum
/// `W = P ⊙ conj(R) + Q ⊙ conj(I)` in a single pass per kernel component.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_conj_add_into(out: &mut [Complex], a: &[Complex], b: &[Complex]) {
    assert_eq!(out.len(), a.len(), "spectrum length mismatch");
    assert_eq!(a.len(), b.len(), "spectrum length mismatch");
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = o.mul_add(*x, y.conj());
    }
}

/// Expands a packed `height × (width/2+1)` half-spectrum of a real field to
/// the full `height × width` spectrum via Hermitian symmetry
/// `X[ky, kx] = conj(X[(h-ky)%h, (w-kx)%w])`.
///
/// Reference path for tests and the complex-field convolution helper; the
/// hot paths never expand.
///
/// # Panics
///
/// Panics if `half.len() != height * (width/2 + 1)`.
pub fn expand_half(height: usize, width: usize, half: &[Complex]) -> Vec<Complex> {
    let hw = width / 2 + 1;
    assert_eq!(half.len(), height * hw, "half-spectrum length mismatch");
    let mut full = vec![Complex::ZERO; height * width];
    for ky in 0..height {
        for kx in 0..hw {
            full[ky * width + kx] = half[ky * hw + kx];
        }
        for kx in hw..width {
            let sy = (height - ky) % height;
            let sx = width - kx;
            full[ky * width + kx] = half[sy * hw + sx].conj();
        }
    }
    full
}

/// Embeds a small centered kernel into a `height × width` frame so that the
/// kernel origin (its center tap) lands at index `(0, 0)` with cyclic
/// wrap-around — the layout required for FFT convolution to act as a
/// *centered* spatial filter.
///
/// `kernel` is row-major `ksize × ksize` and `ksize` must be odd and no
/// larger than either frame dimension.
///
/// # Panics
///
/// Panics if `kernel.len() != ksize * ksize`, if `ksize` is even, or if the
/// kernel does not fit in the frame.
pub fn embed_centered_kernel(
    kernel: &[Complex],
    ksize: usize,
    height: usize,
    width: usize,
) -> Vec<Complex> {
    assert_eq!(kernel.len(), ksize * ksize, "kernel buffer size mismatch");
    assert!(ksize % 2 == 1, "kernel size must be odd");
    assert!(ksize <= height && ksize <= width, "kernel larger than frame");
    let half = ksize / 2;
    let mut frame = vec![Complex::ZERO; height * width];
    for ky in 0..ksize {
        for kx in 0..ksize {
            // Tap offset relative to the kernel center, wrapped cyclically.
            let dy = (ky + height - half) % height;
            let dx = (kx + width - half) % width;
            frame[dy * width + dx] = kernel[ky * ksize + kx];
        }
    }
    frame
}

/// A component's magnitude must clear this fraction of the kernel's overall
/// peak to be stored; below it the component is f64→f32 rounding residue of
/// an analytically-zero part (the eigenvector flip parity at nominal focus)
/// and is dropped outright.
const COMPONENT_DROP_RATIO: f32 = 1e-6;

/// Precomputed half-spectra of a centered (possibly complex) kernel, ready
/// for repeated real-FFT convolutions against same-sized real fields.
///
/// The kernel is split as `h = h_re + i·h_im`; each real component is stored
/// as its packed Hermitian half-spectrum (`None` when the component
/// vanishes). For a real mask `M`, the convolved field is
/// `M ⊗ h = (M ⊗ h_re) + i·(M ⊗ h_im)`, two c2r inverse transforms — the
/// same FLOP count as one full complex inverse but with half the spectral
/// traffic, and half of everything when a component is absent.
#[derive(Debug, Clone)]
pub struct KernelSpectrum {
    height: usize,
    width: usize,
    half_width: usize,
    re: Option<Vec<Complex>>,
    im: Option<Vec<Complex>>,
}

impl KernelSpectrum {
    /// Builds the half-spectra of a centered `ksize × ksize` kernel embedded
    /// in a `height × width` frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the frame dimensions are not powers of two (or
    /// `width < 2`).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`embed_centered_kernel`].
    pub fn new(
        kernel: &[Complex],
        ksize: usize,
        height: usize,
        width: usize,
    ) -> Result<Self, FftError> {
        let plan = RealFft2d::new(height, width)?;
        let frame = embed_centered_kernel(kernel, ksize, height, width);
        let peak = frame.iter().map(|c| c.re.abs().max(c.im.abs())).fold(0.0f32, f32::max);
        let cutoff = peak * COMPONENT_DROP_RATIO;
        let mut scratch = Vec::new();
        let mut component =
            |extract: fn(&Complex) -> f32| -> Result<Option<Vec<Complex>>, FftError> {
                let field: Vec<f32> = frame.iter().map(extract).collect();
                if field.iter().all(|v| v.abs() <= cutoff) {
                    return Ok(None);
                }
                let mut half = vec![Complex::ZERO; plan.spectrum_len()];
                plan.forward(&field, &mut half, &mut scratch)?;
                Ok(Some(half))
            };
        let re = component(|c| c.re)?;
        let im = component(|c| c.im)?;
        Ok(KernelSpectrum { height, width, half_width: plan.half_width(), re, im })
    }

    /// Frame height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Frame width (of the real domain; the stored spectra have
    /// [`KernelSpectrum::half_width`] columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Stored spectrum columns per row, `width/2 + 1`.
    #[inline]
    pub fn half_width(&self) -> usize {
        self.half_width
    }

    /// Half-spectrum of the kernel's real component, if nonzero.
    #[inline]
    pub fn re_spectrum(&self) -> Option<&[Complex]> {
        self.re.as_deref()
    }

    /// Half-spectrum of the kernel's imaginary component, if nonzero.
    #[inline]
    pub fn im_spectrum(&self) -> Option<&[Complex]> {
        self.im.as_deref()
    }

    /// Reconstructs the full `height × width` complex spectrum
    /// `H = R + i·I` (reference/test path; allocates).
    pub fn full_spectrum(&self) -> Vec<Complex> {
        let mut full = vec![Complex::ZERO; self.height * self.width];
        if let Some(re) = &self.re {
            for (f, r) in full.iter_mut().zip(expand_half(self.height, self.width, re)) {
                *f += r;
            }
        }
        if let Some(im) = &self.im {
            for (f, i) in full.iter_mut().zip(expand_half(self.height, self.width, im)) {
                *f += Complex::I * i;
            }
        }
        full
    }

    /// Sum of `|H|²` over the full spectrum — useful for energy diagnostics.
    ///
    /// Computed from the half-spectra: the Hermitian cross term between the
    /// component spectra cancels over the full grid, so `Σ|H|² = Σ|R|² +
    /// Σ|I|²`, with interior half-spectrum columns counted twice for their
    /// mirrored twins.
    pub fn energy(&self) -> f32 {
        let hw = self.half_width;
        let nyquist = self.width / 2;
        let mut total = 0.0f32;
        for half in [&self.re, &self.im].into_iter().flatten() {
            for row in half.chunks_exact(hw) {
                for (kx, c) in row.iter().enumerate() {
                    let weight = if kx == 0 || kx == nyquist { 1.0 } else { 2.0 };
                    total += weight * c.norm_sqr();
                }
            }
        }
        total
    }
}

/// Cyclically convolves a real field with a precomputed kernel spectrum,
/// returning the (complex) filtered field `M ⊗ h`.
///
/// This is the building block of the SOCS aerial-image model
/// `I = Σ_k w_k |M ⊗ h_k|²`. It is the reference implementation: the litho
/// model inlines the same math against arena-owned buffers.
///
/// # Errors
///
/// Returns [`FftError::SizeMismatch`] if `field.len()` or the kernel frame
/// does not match the plan.
pub fn convolve_real(
    plan: &RealFft2d,
    field: &[f32],
    kernel: &KernelSpectrum,
) -> Result<Vec<Complex>, FftError> {
    if kernel.height != plan.height() || kernel.width != plan.width() {
        return Err(FftError::SizeMismatch {
            expected: plan.real_len(),
            actual: kernel.height * kernel.width,
        });
    }
    let mut scratch = Vec::new();
    let mut mask_half = vec![Complex::ZERO; plan.spectrum_len()];
    plan.forward(field, &mut mask_half, &mut scratch)?;
    let mut out = vec![Complex::ZERO; plan.real_len()];
    let mut prod = vec![Complex::ZERO; plan.spectrum_len()];
    let mut real = vec![0.0f32; plan.real_len()];
    if let Some(re) = kernel.re_spectrum() {
        mul_into(&mut prod, &mask_half, re);
        plan.inverse(&mut prod, &mut real, &mut scratch)?;
        for (o, &p) in out.iter_mut().zip(&real) {
            o.re = p;
        }
    }
    if let Some(im) = kernel.im_spectrum() {
        mul_into(&mut prod, &mask_half, im);
        plan.inverse(&mut prod, &mut real, &mut scratch)?;
        for (o, &q) in out.iter_mut().zip(&real) {
            o.im = q;
        }
    }
    Ok(out)
}

/// Cyclically convolves a *complex* field: `out = IFFT(FFT(field) ⊙ K)`
/// where `K` is conjugated when `conjugate_kernel` is set (turning
/// convolution into correlation). Expands the kernel's half-spectra to the
/// full grid — a reference/test path, not used by the litho hot loop.
///
/// # Errors
///
/// Returns [`FftError::SizeMismatch`] on any dimension disagreement.
pub fn convolve_complex(
    plan: &Fft2d,
    field: &[Complex],
    kernel: &KernelSpectrum,
    conjugate_kernel: bool,
) -> Result<Vec<Complex>, FftError> {
    let n = kernel.height * kernel.width;
    if field.len() != n || plan.len() != n {
        return Err(FftError::SizeMismatch { expected: n, actual: field.len() });
    }
    let full = kernel.full_spectrum();
    let mut spec = field.to_vec();
    plan.transform(&mut spec, Direction::Forward)?;
    if conjugate_kernel {
        mul_conj_assign(&mut spec, &full);
    } else {
        mul_assign(&mut spec, &full);
    }
    plan.transform(&mut spec, Direction::Inverse)?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct O(N²·K²) cyclic convolution reference.
    fn naive_cyclic_convolve(
        field: &[f32],
        h: usize,
        w: usize,
        kernel: &[Complex],
        ksize: usize,
    ) -> Vec<Complex> {
        let half = ksize as isize / 2;
        let mut out = vec![Complex::ZERO; h * w];
        for y in 0..h as isize {
            for x in 0..w as isize {
                let mut acc = Complex::ZERO;
                for ky in 0..ksize as isize {
                    for kx in 0..ksize as isize {
                        let sy = (y - (ky - half)).rem_euclid(h as isize) as usize;
                        let sx = (x - (kx - half)).rem_euclid(w as isize) as usize;
                        let f = field[sy * w + sx];
                        acc += kernel[(ky * ksize as isize + kx) as usize].scale(f);
                    }
                }
                out[(y * w as isize + x) as usize] = acc;
            }
        }
        out
    }

    #[test]
    fn identity_kernel_is_noop() {
        let (h, w) = (8, 8);
        let kernel = {
            let mut k = vec![Complex::ZERO; 9];
            k[4] = Complex::ONE; // center tap of a 3x3 kernel
            k
        };
        let spec = KernelSpectrum::new(&kernel, 3, h, w).unwrap();
        assert!(spec.re_spectrum().is_some());
        assert!(spec.im_spectrum().is_none(), "real kernel must drop its imaginary half");
        let plan = RealFft2d::new(h, w).unwrap();
        let field: Vec<f32> = (0..64).map(|i| (i as f32 * 0.2).sin()).collect();
        let out = convolve_real(&plan, &field, &spec).unwrap();
        for (o, f) in out.iter().zip(&field) {
            assert!((o.re - f).abs() < 1e-4 && o.im.abs() < 1e-4);
        }
    }

    #[test]
    fn fft_convolution_matches_naive() {
        let (h, w) = (16, 8);
        let ksize = 5;
        let kernel: Vec<Complex> = (0..ksize * ksize)
            .map(|i| Complex::new((i as f32 * 0.31).sin(), (i as f32 * 0.17).cos() * 0.2))
            .collect();
        let field: Vec<f32> = (0..h * w).map(|i| ((i * 5 % 11) as f32) / 11.0).collect();
        let spec = KernelSpectrum::new(&kernel, ksize, h, w).unwrap();
        let plan = RealFft2d::new(h, w).unwrap();
        let fast = convolve_real(&plan, &field, &spec).unwrap();
        let slow = naive_cyclic_convolve(&field, h, w, &kernel, ksize);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a.re - b.re).abs() < 1e-3, "{a} vs {b}");
            assert!((a.im - b.im).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn full_spectrum_matches_complex_fft_of_embedded_kernel() {
        let (h, w) = (8usize, 16usize);
        let ksize = 3;
        let kernel: Vec<Complex> = (0..9)
            .map(|i| Complex::new((i as f32 * 0.7).cos(), (i as f32 * 0.4).sin() * 0.6))
            .collect();
        let spec = KernelSpectrum::new(&kernel, ksize, h, w).unwrap();
        let got = spec.full_spectrum();
        let plan = Fft2d::new(h, w).unwrap();
        let mut reference = embed_centered_kernel(&kernel, ksize, h, w);
        plan.transform(&mut reference, Direction::Forward).unwrap();
        for (g, r) in got.iter().zip(&reference) {
            assert!((g.re - r.re).abs() < 1e-3 && (g.im - r.im).abs() < 1e-3, "{g} vs {r}");
        }
    }

    #[test]
    fn correlation_flips_kernel() {
        // Correlation with kernel k == convolution with conj + spatial flip;
        // verify on an asymmetric real kernel via an impulse response.
        let (h, w) = (8, 8);
        let mut kernel = vec![Complex::ZERO; 9];
        kernel[0] = Complex::from_real(1.0); // top-left tap of a 3x3 kernel
        let spec = KernelSpectrum::new(&kernel, 3, h, w).unwrap();
        let plan = Fft2d::new(h, w).unwrap();
        let mut field = vec![Complex::ZERO; h * w];
        field[3 * w + 3] = Complex::ONE;

        let conv = convolve_complex(&plan, &field, &spec, false).unwrap();
        let corr = convolve_complex(&plan, &field, &spec, true).unwrap();
        // Convolution shifts the impulse by (-1,-1); correlation by (+1,+1).
        let peak_at = |v: &[Complex]| {
            let (idx, _) = v
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                .unwrap();
            (idx / w, idx % w)
        };
        assert_eq!(peak_at(&conv), (2, 2));
        assert_eq!(peak_at(&corr), (4, 4));
    }

    #[test]
    fn embed_rejects_even_kernel() {
        let kernel = vec![Complex::ZERO; 16];
        let result = std::panic::catch_unwind(|| embed_centered_kernel(&kernel, 4, 8, 8));
        assert!(result.is_err());
    }

    #[test]
    fn embed_places_center_at_origin() {
        let mut kernel = vec![Complex::ZERO; 9];
        kernel[4] = Complex::from_real(7.0);
        let frame = embed_centered_kernel(&kernel, 3, 8, 8);
        assert_eq!(frame[0], Complex::from_real(7.0));
        assert_eq!(frame.iter().filter(|c| c.abs() > 0.0).count(), 1);
    }

    #[test]
    fn expand_half_reconstructs_full_spectrum() {
        let (h, w) = (8usize, 8usize);
        let plan = RealFft2d::new(h, w).unwrap();
        let full_plan = Fft2d::new(h, w).unwrap();
        let field: Vec<f32> = (0..h * w).map(|i| ((i * 11 % 17) as f32) / 17.0 - 0.4).collect();
        let mut half = vec![Complex::ZERO; plan.spectrum_len()];
        let mut scratch = Vec::new();
        plan.forward(&field, &mut half, &mut scratch).unwrap();
        let expanded = expand_half(h, w, &half);
        let reference = full_plan.forward_real(&field).unwrap();
        for (a, b) in expanded.iter().zip(&reference) {
            assert!((a.re - b.re).abs() < 1e-3 && (a.im - b.im).abs() < 1e-3);
        }
    }

    #[test]
    fn mul_conj_assign_conjugates_rhs() {
        let mut a = vec![Complex::new(1.0, 1.0)];
        let b = vec![Complex::new(0.0, 2.0)];
        mul_conj_assign(&mut a, &b);
        // (1+i) * conj(2i) = (1+i)(-2i) = -2i - 2i² = 2 - 2i
        assert_eq!(a[0], Complex::new(2.0, -2.0));
    }

    #[test]
    fn out_of_place_products_match_in_place() {
        let a: Vec<Complex> =
            (0..16).map(|i| Complex::new(i as f32 * 0.3, -1.0 + i as f32)).collect();
        let b: Vec<Complex> =
            (0..16).map(|i| Complex::new(1.5 - i as f32, i as f32 * 0.2)).collect();
        let mut out = vec![Complex::ZERO; 16];
        mul_into(&mut out, &a, &b);
        let mut reference = a.clone();
        mul_assign(&mut reference, &b);
        assert_eq!(out, reference);

        mul_conj_into(&mut out, &a, &b);
        let mut reference = a.clone();
        mul_conj_assign(&mut reference, &b);
        assert_eq!(out, reference);

        // Accumulating the same product twice doubles it.
        mul_conj_add_into(&mut out, &a, &b);
        for (o, r) in out.iter().zip(&reference) {
            assert!((o.re - 2.0 * r.re).abs() < 1e-4 && (o.im - 2.0 * r.im).abs() < 1e-4);
        }
    }

    #[test]
    fn kernel_spectrum_energy_positive() {
        let kernel = vec![Complex::from_real(0.5); 9];
        let spec = KernelSpectrum::new(&kernel, 3, 16, 16).unwrap();
        assert!(spec.energy() > 0.0);
        assert_eq!(spec.height(), 16);
        assert_eq!(spec.width(), 16);
        assert_eq!(spec.half_width(), 9);
        // Energy computed from the packed form must match the full spectrum.
        let full: f32 = spec.full_spectrum().iter().map(|c| c.norm_sqr()).sum();
        assert!((spec.energy() - full).abs() < 1e-2 * full.max(1.0));
    }
}
