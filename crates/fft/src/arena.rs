//! Reusable scratch-buffer arena for the spectral hot paths.
//!
//! The litho model's aerial-image and gradient evaluations need a handful of
//! frame-sized complex and real buffers per SOCS kernel. Allocating them
//! per call dominated small-frame runtimes and thrashes the allocator from
//! the worker pool; a thread-local cache does not help because the pool
//! spawns fresh scoped workers on every call. [`Arena`] is the alternative:
//! a mutex-guarded freelist owned by the plan (the [`LithoModel`]), shared
//! by all workers, from which buffers are borrowed and returned. After the
//! first call on a given frame size the freelist is warm and steady-state
//! evaluations perform no heap allocation for scratch.
//!
//! The arena also counts *fresh* allocations (freelist misses), which is the
//! hook the zero-allocation regression tests assert on.
//!
//! [`LithoModel`]: ../../ganopc_litho/struct.LithoModel.html

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::Complex;

/// A freelist of frame-sized scratch buffers shared across pool workers.
///
/// Buffers are handed out zero-filled at the requested length. Locks are
/// held only for the freelist push/pop, never while a buffer is in use, so
/// contention is a few nanoseconds per borrow even with many workers.
#[derive(Debug, Default)]
pub struct Arena {
    complex: Mutex<Vec<Vec<Complex>>>,
    real: Mutex<Vec<Vec<f32>>>,
    fresh: AtomicUsize,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Borrows a zeroed complex buffer of length `len`.
    // lint: hot-path
    pub fn take_complex(&self, len: usize) -> Vec<Complex> {
        // PANIC: the freelist lock is only held for push/pop, which cannot
        // panic, so the mutex can never be poisoned.
        let mut buf = self.complex.lock().expect("arena poisoned").pop().unwrap_or_default();
        if buf.capacity() < len {
            self.fresh.fetch_add(1, Ordering::Relaxed);
        }
        buf.clear();
        buf.resize(len, Complex::ZERO);
        buf
    }

    /// Returns a complex buffer to the freelist.
    // lint: hot-path
    pub fn put_complex(&self, buf: Vec<Complex>) {
        // PANIC: see take_complex — push/pop critical sections cannot panic.
        self.complex.lock().expect("arena poisoned").push(buf);
    }

    /// Borrows a zeroed real buffer of length `len`.
    // lint: hot-path
    pub fn take_real(&self, len: usize) -> Vec<f32> {
        // PANIC: see take_complex — push/pop critical sections cannot panic.
        let mut buf = self.real.lock().expect("arena poisoned").pop().unwrap_or_default();
        if buf.capacity() < len {
            self.fresh.fetch_add(1, Ordering::Relaxed);
        }
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a real buffer to the freelist.
    // lint: hot-path
    pub fn put_real(&self, buf: Vec<f32>) {
        // PANIC: see take_complex — push/pop critical sections cannot panic.
        self.real.lock().expect("arena poisoned").push(buf);
    }

    /// Ensures the freelist holds at least `count` complex buffers of
    /// capacity `len`, allocating the shortfall up front (counted as fresh).
    ///
    /// Hot paths whose *peak concurrent* buffer usage depends on scheduling
    /// (how many pool chunks happen to run simultaneously) call this with
    /// their worst case so the warm state is reached deterministically
    /// instead of only after the worst-case race has happened to occur.
    // lint: hot-path
    pub fn reserve_complex(&self, count: usize, len: usize) {
        loop {
            let have = {
                // PANIC: see take_complex — the critical section cannot panic.
                let list = self.complex.lock().expect("arena poisoned");
                list.iter().filter(|b| b.capacity() >= len).count()
            };
            if have >= count {
                return;
            }
            self.fresh.fetch_add(1, Ordering::Relaxed);
            // ALLOC: deliberate pre-allocation outside the lock; steady-state
            // calls find the freelist already full and allocate nothing.
            self.put_complex(vec![Complex::ZERO; len]);
        }
    }

    /// Real-buffer counterpart of [`Arena::reserve_complex`].
    // lint: hot-path
    pub fn reserve_real(&self, count: usize, len: usize) {
        loop {
            let have = {
                // PANIC: see take_complex — the critical section cannot panic.
                let list = self.real.lock().expect("arena poisoned");
                list.iter().filter(|b| b.capacity() >= len).count()
            };
            if have >= count {
                return;
            }
            self.fresh.fetch_add(1, Ordering::Relaxed);
            // ALLOC: deliberate pre-allocation outside the lock; steady-state
            // calls find the freelist already full and allocate nothing.
            self.put_real(vec![0.0; len]);
        }
    }

    /// Number of freelist misses so far — takes that had to grow a fresh
    /// buffer instead of recycling one. Stable across calls once the arena
    /// is warm; the zero-allocation tests assert exactly that.
    pub fn fresh_allocations(&self) -> usize {
        self.fresh.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_buffers_after_warmup() {
        let arena = Arena::new();
        let a = arena.take_complex(64);
        let b = arena.take_real(32);
        assert_eq!(arena.fresh_allocations(), 2);
        arena.put_complex(a);
        arena.put_real(b);
        for _ in 0..10 {
            let a = arena.take_complex(64);
            let b = arena.take_real(32);
            assert!(a.iter().all(|c| *c == Complex::ZERO));
            assert!(b.iter().all(|v| *v == 0.0));
            arena.put_complex(a);
            arena.put_real(b);
        }
        assert_eq!(arena.fresh_allocations(), 2, "warm arena must not allocate");
    }

    #[test]
    fn growing_request_counts_as_fresh() {
        let arena = Arena::new();
        let a = arena.take_complex(16);
        arena.put_complex(a);
        let a = arena.take_complex(1024); // freelist hit, but must grow
        assert_eq!(arena.fresh_allocations(), 2);
        arena.put_complex(a);
        let a = arena.take_complex(64); // shrinking reuse is free
        assert_eq!(arena.fresh_allocations(), 2);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn buffers_are_rezeroed_on_take() {
        let arena = Arena::new();
        let mut a = arena.take_real(8);
        a.iter_mut().for_each(|v| *v = 7.0);
        arena.put_real(a);
        let a = arena.take_real(8);
        assert!(a.iter().all(|v| *v == 0.0));
    }
}
