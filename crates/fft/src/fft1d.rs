//! Planned 1-D radix-2 FFT.

use crate::{Complex, Direction, FftError};

/// A planned 1-D FFT for a fixed power-of-two length.
///
/// The plan precomputes the bit-reversal permutation and the twiddle factors
/// for the *forward* transform; the inverse reuses the same tables with
/// conjugated twiddles and a final `1/N` scale.
///
/// ```
/// use ganopc_fft::{Complex, Direction, Fft1d};
/// # fn main() -> Result<(), ganopc_fft::FftError> {
/// let plan = Fft1d::new(16)?;
/// let mut x: Vec<Complex> = (0..16).map(|k| Complex::new(k as f32, 0.0)).collect();
/// let original = x.clone();
/// plan.transform(&mut x, Direction::Forward)?;
/// plan.transform(&mut x, Direction::Inverse)?;
/// for (a, b) in x.iter().zip(&original) {
///     assert!((a.re - b.re).abs() < 1e-4 && a.im.abs() < 1e-4);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fft1d {
    len: usize,
    log2_len: u32,
    /// Bit-reversed index table; `rev[i]` is `i` with `log2_len` bits reversed.
    rev: Vec<u32>,
    /// Forward twiddles, laid out stage-by-stage: for each stage with
    /// half-butterfly span `m`, the `m` factors `e^{-2πi·j/(2m)}`.
    twiddles: Vec<Complex>,
}

impl Fft1d {
    /// Plans a transform of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidLength`] unless `len` is a nonzero power of
    /// two.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if !crate::is_power_of_two(len) {
            return Err(FftError::InvalidLength(len));
        }
        let log2_len = len.trailing_zeros();
        let mut rev = vec![0u32; len];
        for (i, r) in rev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - log2_len.max(1));
        }
        if len == 1 {
            rev[0] = 0;
        }
        // Total twiddle count: 1 + 2 + 4 + ... + len/2 = len - 1.
        let mut twiddles = Vec::with_capacity(len.saturating_sub(1));
        let mut m = 1usize;
        while m < len {
            let step = -std::f32::consts::PI / m as f32;
            for j in 0..m {
                twiddles.push(Complex::cis(step * j as f32));
            }
            m <<= 1;
        }
        Ok(Fft1d { len, log2_len, rev, twiddles })
    }

    /// Length the plan was created for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for the degenerate length-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Transforms `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeMismatch`] when `data.len() != self.len()`.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        if data.len() != self.len {
            return Err(FftError::SizeMismatch { expected: self.len, actual: data.len() });
        }
        self.transform_unchecked(data, dir);
        Ok(())
    }

    /// Transforms a buffer whose length is known to match the plan.
    ///
    /// Used by [`crate::Fft2d`] on its internal scratch rows where the length
    /// invariant is maintained structurally.
    pub(crate) fn transform_unchecked(&self, data: &mut [Complex], dir: Direction) {
        let n = self.len;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative butterflies.
        let conj = matches!(dir, Direction::Inverse);
        let mut m = 1usize;
        let mut tw_base = 0usize;
        for _ in 0..self.log2_len {
            let span = m << 1;
            let mut k = 0;
            while k < n {
                for j in 0..m {
                    let mut w = self.twiddles[tw_base + j];
                    if conj {
                        w = w.conj();
                    }
                    let a = data[k + j];
                    let b = data[k + j + m] * w;
                    data[k + j] = a + b;
                    data[k + j + m] = a - b;
                }
                k += span;
            }
            tw_base += m;
            m = span;
        }
        if conj {
            let scale = 1.0 / n as f32;
            for c in data.iter_mut() {
                *c = c.scale(scale);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(N²) DFT used as the reference implementation.
    fn naive_dft(input: &[Complex], dir: Direction) -> Vec<Complex> {
        let n = input.len();
        let sign = match dir {
            Direction::Forward => -1.0f32,
            Direction::Inverse => 1.0,
        };
        let mut out = vec![Complex::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f32::consts::PI * (k * j % n) as f32 / n as f32;
                *o = o.mul_add(x, Complex::cis(theta));
            }
        }
        if matches!(dir, Direction::Inverse) {
            for o in &mut out {
                *o = o.scale(1.0 / n as f32);
            }
        }
        out
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n).map(|k| Complex::new(k as f32 * 0.25 - 1.0, (k as f32 * 0.5).sin())).collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(Fft1d::new(0).err(), Some(FftError::InvalidLength(0)));
        assert_eq!(Fft1d::new(3).err(), Some(FftError::InvalidLength(3)));
        assert_eq!(Fft1d::new(48).err(), Some(FftError::InvalidLength(48)));
        assert!(Fft1d::new(1).is_ok());
        assert!(Fft1d::new(1024).is_ok());
    }

    #[test]
    fn rejects_wrong_buffer_size() {
        let plan = Fft1d::new(8).unwrap();
        let mut data = vec![Complex::ZERO; 4];
        assert_eq!(
            plan.transform(&mut data, Direction::Forward),
            Err(FftError::SizeMismatch { expected: 8, actual: 4 })
        );
    }

    #[test]
    fn matches_naive_dft_small_sizes() {
        for log in 0..=7 {
            let n = 1usize << log;
            let plan = Fft1d::new(n).unwrap();
            let input = ramp(n);
            let expect = naive_dft(&input, Direction::Forward);
            let mut got = input.clone();
            plan.transform(&mut got, Direction::Forward).unwrap();
            for (g, e) in got.iter().zip(&expect) {
                assert!((g.re - e.re).abs() < 1e-2 * (n as f32).max(1.0), "n={n}");
                assert!((g.im - e.im).abs() < 1e-2 * (n as f32).max(1.0), "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        for n in [1usize, 2, 8, 64, 512] {
            let plan = Fft1d::new(n).unwrap();
            let input = ramp(n);
            let mut data = input.clone();
            plan.transform(&mut data, Direction::Forward).unwrap();
            plan.transform(&mut data, Direction::Inverse).unwrap();
            for (a, b) in data.iter().zip(&input) {
                assert!((a.re - b.re).abs() < 1e-3);
                assert!((a.im - b.im).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let plan = Fft1d::new(32).unwrap();
        let mut data = vec![Complex::ZERO; 32];
        data[0] = Complex::ONE;
        plan.transform(&mut data, Direction::Forward).unwrap();
        for c in &data {
            assert!((c.re - 1.0).abs() < 1e-5 && c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn constant_concentrates_at_dc() {
        let plan = Fft1d::new(16).unwrap();
        let mut data = vec![Complex::from_real(2.0); 16];
        plan.transform(&mut data, Direction::Forward).unwrap();
        assert!((data[0].re - 32.0).abs() < 1e-4);
        for c in &data[1..] {
            assert!(c.abs() < 1e-4);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let plan = Fft1d::new(n).unwrap();
        let input = ramp(n);
        let time_energy: f32 = input.iter().map(|c| c.norm_sqr()).sum();
        let mut freq = input.clone();
        plan.transform(&mut freq, Direction::Forward).unwrap();
        let freq_energy: f32 = freq.iter().map(|c| c.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = Fft1d::new(n).unwrap();
        let a = ramp(n);
        let b: Vec<Complex> = (0..n).map(|k| Complex::new((k as f32).cos(), 0.3)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex> =
            a.iter().zip(&b).map(|(&x, &y)| x.scale(2.0) + y.scale(-0.5)).collect();
        plan.transform(&mut fa, Direction::Forward).unwrap();
        plan.transform(&mut fb, Direction::Forward).unwrap();
        plan.transform(&mut fab, Direction::Forward).unwrap();
        for i in 0..n {
            let expect = fa[i].scale(2.0) + fb[i].scale(-0.5);
            assert!((fab[i].re - expect.re).abs() < 1e-2);
            assert!((fab[i].im - expect.im).abs() < 1e-2);
        }
    }
}
