//! Planned 1-D mixed radix-4/radix-2 FFT.

use crate::{Complex, Direction, FftError};

/// A planned 1-D FFT for a fixed power-of-two length.
///
/// The plan factors the length as `[2?] · 4 · 4 · …` — a single leading
/// radix-2 stage when `log2(len)` is odd, radix-4 butterflies everywhere
/// else — and precomputes everything the transform needs:
///
/// * the mixed-radix digit-reversal permutation, flattened into a branch-free
///   swap program applied in place;
/// * *direction-specific* twiddle tables (forward and conjugated inverse),
///   so the butterfly inner loops carry no per-element direction branch.
///
/// Radix-4 performs the same arithmetic as two fused radix-2 stages but with
/// one pass over the data and 25 % fewer complex multiplies, which is what
/// makes it the main stage of the spectral engine.
///
/// ```
/// use ganopc_fft::{Complex, Direction, Fft1d};
/// # fn main() -> Result<(), ganopc_fft::FftError> {
/// let plan = Fft1d::new(16)?;
/// let mut x: Vec<Complex> = (0..16).map(|k| Complex::new(k as f32, 0.0)).collect();
/// let original = x.clone();
/// plan.transform(&mut x, Direction::Forward)?;
/// plan.transform(&mut x, Direction::Inverse)?;
/// for (a, b) in x.iter().zip(&original) {
///     assert!((a.re - b.re).abs() < 1e-4 && a.im.abs() < 1e-4);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fft1d {
    len: usize,
    /// Swap program realizing the mixed-radix digit-reversal permutation;
    /// executing `data.swap(i, j)` over the list applies the permutation in
    /// place with no scratch storage.
    swaps: Vec<(u32, u32)>,
    /// Whether a twiddle-free radix-2 stage over adjacent pairs runs first
    /// (`log2(len)` odd).
    radix2_first: bool,
    /// Forward radix-4 twiddles, stage-by-stage: for each stage with
    /// quarter-span `m`, the triples `(W^t, W^2t, W^3t)` with
    /// `W = e^{-2πi/(4m)}`, `t = 0..m`.
    fwd: Vec<Complex>,
    /// The same tables conjugated, for the inverse transform.
    inv: Vec<Complex>,
}

/// Source-index permutation for the mixed-radix DIT input reordering:
/// `reordered[i] = data[perm[i]]`. The factor applied at the outermost
/// combine is 4 whenever `len >= 4`; the radix-2 stage (odd `log2`) is the
/// innermost, so it never appears here except for `len == 2`.
fn digit_reversal(len: usize) -> Vec<u32> {
    if len <= 1 {
        return vec![0; len.min(1)];
    }
    let r = if len == 2 { 2 } else { 4 };
    let m = len / r;
    let sub = digit_reversal(m);
    let mut out = Vec::with_capacity(len);
    for b in 0..r {
        for &s in &sub {
            out.push(s * r as u32 + b as u32);
        }
    }
    out
}

/// Decomposes `perm` (semantics `new[i] = old[perm[i]]`) into a sequence of
/// in-place swaps.
fn swap_program(perm: &[u32]) -> Vec<(u32, u32)> {
    let mut swaps = Vec::new();
    let mut visited = vec![false; perm.len()];
    for start in 0..perm.len() {
        if visited[start] || perm[start] as usize == start {
            visited[start] = true;
            continue;
        }
        // Walk the cycle start -> perm[start] -> …; rotating values one step
        // backwards along it realizes `new[c] = old[perm[c]]`.
        let mut prev = start;
        let mut cur = perm[start] as usize;
        visited[start] = true;
        while cur != start {
            visited[cur] = true;
            swaps.push((prev as u32, cur as u32));
            prev = cur;
            cur = perm[cur] as usize;
        }
    }
    swaps
}

impl Fft1d {
    /// Plans a transform of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidLength`] unless `len` is a nonzero power of
    /// two.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if !crate::is_power_of_two(len) {
            return Err(FftError::InvalidLength(len));
        }
        let log2_len = len.trailing_zeros();
        let radix2_first = log2_len % 2 == 1;
        let swaps = swap_program(&digit_reversal(len));
        // Radix-4 twiddles: quarter-span m starts at 1 (even log2) or 2 (odd
        // log2, after the radix-2 stage) and quadruples per stage.
        let mut fwd = Vec::new();
        let mut m = if radix2_first { 2usize } else { 1 };
        while 4 * m <= len {
            let step = -std::f32::consts::PI / (2.0 * m as f32); // -2π/(4m)
            for t in 0..m {
                let theta = step * t as f32;
                fwd.push(Complex::cis(theta));
                fwd.push(Complex::cis(2.0 * theta));
                fwd.push(Complex::cis(3.0 * theta));
            }
            m *= 4;
        }
        let inv = fwd.iter().map(|w| w.conj()).collect();
        Ok(Fft1d { len, swaps, radix2_first, fwd, inv })
    }

    /// Length the plan was created for.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: [`Fft1d::new`] rejects length zero, so a constructed
    /// plan is never empty. Present for API completeness alongside
    /// [`Fft1d::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Transforms `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeMismatch`] when `data.len() != self.len()`.
    // lint: hot-path
    pub fn transform(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        if data.len() != self.len {
            return Err(FftError::SizeMismatch { expected: self.len, actual: data.len() });
        }
        self.transform_unchecked(data, dir);
        Ok(())
    }

    /// Transforms a buffer whose length is known to match the plan.
    ///
    /// Used by [`crate::Fft2d`] and [`crate::RealFft2d`] on internal rows
    /// where the length invariant is maintained structurally.
    // lint: hot-path
    pub(crate) fn transform_unchecked(&self, data: &mut [Complex], dir: Direction) {
        let n = self.len;
        if n <= 1 {
            return;
        }
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        if self.radix2_first {
            for pair in data.chunks_exact_mut(2) {
                let (a, b) = (pair[0], pair[1]);
                pair[0] = a + b;
                pair[1] = a - b;
            }
        }
        let m0 = if self.radix2_first { 2 } else { 1 };
        match dir {
            Direction::Forward => self.radix4_stages::<false>(data, m0),
            Direction::Inverse => {
                self.radix4_stages::<true>(data, m0);
                let scale = 1.0 / n as f32;
                for c in data.iter_mut() {
                    *c = c.scale(scale);
                }
            }
        }
    }

    /// All radix-4 stages for one direction. `INV` selects the conjugated
    /// twiddle table and the sign of the `±i` rotation, monomorphizing the
    /// butterfly into two branch-free inner loops.
    // lint: hot-path
    fn radix4_stages<const INV: bool>(&self, data: &mut [Complex], mut m: usize) {
        let table: &[Complex] = if INV { &self.inv } else { &self.fwd };
        let n = data.len();
        let mut base = 0usize;
        while 4 * m <= n {
            let span = 4 * m;
            let stage_tw = &table[base..base + 3 * m];
            for group in data.chunks_exact_mut(span) {
                let (q01, q23) = group.split_at_mut(2 * m);
                let (q0, q1) = q01.split_at_mut(m);
                let (q2, q3) = q23.split_at_mut(m);
                let mut tw = stage_tw.chunks_exact(3);
                for t in 0..m {
                    // PANIC: stage_tw holds exactly 3*m twiddles, so the
                    // chunks_exact(3) iterator yields one triple per t < m.
                    let w = tw.next().expect("twiddle triple");
                    let u0 = q0[t];
                    let u1 = q1[t] * w[0];
                    let u2 = q2[t] * w[1];
                    let u3 = q3[t] * w[2];
                    let s02 = u0 + u2;
                    let d02 = u0 - u2;
                    let s13 = u1 + u3;
                    let d13 = u1 - u3;
                    // jd13 = ∓i·d13: forward uses W₄ = e^{-iπ/2} = -i, the
                    // inverse its conjugate.
                    let jd13 = if INV {
                        Complex::new(-d13.im, d13.re)
                    } else {
                        Complex::new(d13.im, -d13.re)
                    };
                    q0[t] = s02 + s13;
                    q1[t] = d02 + jd13;
                    q2[t] = s02 - s13;
                    q3[t] = d02 - jd13;
                }
            }
            base += 3 * m;
            m = span;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(N²) DFT in f64 used as the reference implementation.
    fn naive_dft(input: &[Complex], dir: Direction) -> Vec<Complex> {
        let n = input.len();
        let sign = match dir {
            Direction::Forward => -1.0f64,
            Direction::Inverse => 1.0,
        };
        let mut out = vec![Complex::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            let (mut re, mut im) = (0.0f64, 0.0f64);
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64;
                let (s, c) = theta.sin_cos();
                re += x.re as f64 * c - x.im as f64 * s;
                im += x.re as f64 * s + x.im as f64 * c;
            }
            if matches!(dir, Direction::Inverse) {
                re /= n as f64;
                im /= n as f64;
            }
            *o = Complex::new(re as f32, im as f32);
        }
        out
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n).map(|k| Complex::new(k as f32 * 0.25 - 1.0, (k as f32 * 0.5).sin())).collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(Fft1d::new(0).err(), Some(FftError::InvalidLength(0)));
        assert_eq!(Fft1d::new(3).err(), Some(FftError::InvalidLength(3)));
        assert_eq!(Fft1d::new(48).err(), Some(FftError::InvalidLength(48)));
        assert!(Fft1d::new(1).is_ok());
        assert!(Fft1d::new(1024).is_ok());
    }

    #[test]
    fn rejects_wrong_buffer_size() {
        let plan = Fft1d::new(8).unwrap();
        let mut data = vec![Complex::ZERO; 4];
        assert_eq!(
            plan.transform(&mut data, Direction::Forward),
            Err(FftError::SizeMismatch { expected: 8, actual: 4 })
        );
    }

    #[test]
    fn digit_reversal_interleaves_residues() {
        // len 8 factors as [2, 4]: the radix-2 pairs must hold the mod-4
        // residue classes in order.
        assert_eq!(digit_reversal(8), vec![0, 4, 1, 5, 2, 6, 3, 7]);
        assert_eq!(digit_reversal(4), vec![0, 1, 2, 3]);
        assert_eq!(digit_reversal(2), vec![0, 1]);
    }

    #[test]
    fn swap_program_applies_permutation() {
        for n in [2usize, 8, 16, 64, 128] {
            let perm = digit_reversal(n);
            let swaps = swap_program(&perm);
            let mut data: Vec<u32> = (0..n as u32).collect();
            for &(i, j) in &swaps {
                data.swap(i as usize, j as usize);
            }
            for (i, &p) in perm.iter().enumerate() {
                assert_eq!(data[i], p, "n={n} position {i}");
            }
        }
    }

    #[test]
    fn matches_naive_dft_all_sizes() {
        for log in 0..=10 {
            let n = 1usize << log;
            let plan = Fft1d::new(n).unwrap();
            let input = ramp(n);
            for dir in [Direction::Forward, Direction::Inverse] {
                let expect = naive_dft(&input, dir);
                let mut got = input.clone();
                plan.transform(&mut got, dir).unwrap();
                let tol = 1e-5 * (n as f32) + 1e-4;
                for (g, e) in got.iter().zip(&expect) {
                    assert!((g.re - e.re).abs() < tol, "n={n} {dir:?}");
                    assert!((g.im - e.im).abs() < tol, "n={n} {dir:?}");
                }
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        for n in [1usize, 2, 8, 64, 512] {
            let plan = Fft1d::new(n).unwrap();
            let input = ramp(n);
            let mut data = input.clone();
            plan.transform(&mut data, Direction::Forward).unwrap();
            plan.transform(&mut data, Direction::Inverse).unwrap();
            for (a, b) in data.iter().zip(&input) {
                assert!((a.re - b.re).abs() < 1e-3);
                assert!((a.im - b.im).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let plan = Fft1d::new(32).unwrap();
        let mut data = vec![Complex::ZERO; 32];
        data[0] = Complex::ONE;
        plan.transform(&mut data, Direction::Forward).unwrap();
        for c in &data {
            assert!((c.re - 1.0).abs() < 1e-5 && c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn constant_concentrates_at_dc() {
        let plan = Fft1d::new(16).unwrap();
        let mut data = vec![Complex::from_real(2.0); 16];
        plan.transform(&mut data, Direction::Forward).unwrap();
        assert!((data[0].re - 32.0).abs() < 1e-4);
        for c in &data[1..] {
            assert!(c.abs() < 1e-4);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let plan = Fft1d::new(n).unwrap();
        let input = ramp(n);
        let time_energy: f32 = input.iter().map(|c| c.norm_sqr()).sum();
        let mut freq = input.clone();
        plan.transform(&mut freq, Direction::Forward).unwrap();
        let freq_energy: f32 = freq.iter().map(|c| c.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = Fft1d::new(n).unwrap();
        let a = ramp(n);
        let b: Vec<Complex> = (0..n).map(|k| Complex::new((k as f32).cos(), 0.3)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex> =
            a.iter().zip(&b).map(|(&x, &y)| x.scale(2.0) + y.scale(-0.5)).collect();
        plan.transform(&mut fa, Direction::Forward).unwrap();
        plan.transform(&mut fb, Direction::Forward).unwrap();
        plan.transform(&mut fab, Direction::Forward).unwrap();
        for i in 0..n {
            let expect = fa[i].scale(2.0) + fb[i].scale(-0.5);
            assert!((fab[i].re - expect.re).abs() < 1e-2);
            assert!((fab[i].im - expect.im).abs() < 1e-2);
        }
    }
}
