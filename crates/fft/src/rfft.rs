//! Real-input 2-D FFT over a packed Hermitian half-spectrum.
//!
//! The spectrum of a real `h × w` image satisfies `X[ky, kx] =
//! conj(X[(h-ky)%h, (w-kx)%w])`, so columns `kx = w/2+1 .. w` are redundant.
//! [`RealFft2d`] stores only the `h × (w/2+1)` half-spectrum and computes the
//! row pass with a half-length complex FFT (two real samples packed per
//! complex slot), roughly halving both FLOPs and memory traffic relative to
//! running the full complex transform on real data. This is the engine under
//! every lithography convolution: mask spectra, SOCS kernel spectra and the
//! Eq. (14) gradient all live in packed half-spectrum form.
//!
//! Layout: row-major `h` rows of `w/2 + 1` entries; `out[ky * (w/2+1) + kx]`
//! holds `X[ky, kx]` for `kx = 0 ..= w/2`. The two boundary columns `kx = 0`
//! and `kx = w/2` (DC and Nyquist) are self-conjugate along `ky`:
//! `X[ky, b] = conj(X[(h-ky)%h, b])`.

use crate::fft2d::transpose_into;
use crate::{Complex, Direction, Fft1d, FftError};

/// A planned real-input 2-D FFT producing/consuming the packed
/// `h × (w/2+1)` half-spectrum.
///
/// ```
/// use ganopc_fft::RealFft2d;
/// # fn main() -> Result<(), ganopc_fft::FftError> {
/// let plan = RealFft2d::new(4, 8)?;
/// let image: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).sin()).collect();
/// let mut half = vec![ganopc_fft::Complex::ZERO; plan.spectrum_len()];
/// let mut scratch = Vec::new();
/// plan.forward(&image, &mut half, &mut scratch)?;
/// let mut back = vec![0.0f32; 32];
/// plan.inverse(&mut half, &mut back, &mut scratch)?;
/// for (a, b) in back.iter().zip(&image) {
///     assert!((a - b).abs() < 1e-4);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RealFft2d {
    height: usize,
    width: usize,
    half_width: usize,
    /// Half-length (`w/2`) plan for the packed row pass.
    row_plan: Fft1d,
    /// Full-height plan for the column pass over the half-spectrum.
    col_plan: Fft1d,
    /// Untangling twiddles `e^{-2πik/w}` for `k = 0 ..= w/2`.
    tw: Vec<Complex>,
}

impl RealFft2d {
    /// Plans a real 2-D transform for a `height × width` grid.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidLength`] unless both dimensions are powers
    /// of two and `width >= 2` (the packed row pass needs at least one
    /// complex slot per row).
    pub fn new(height: usize, width: usize) -> Result<Self, FftError> {
        if width < 2 {
            return Err(FftError::InvalidLength(width));
        }
        if !crate::is_power_of_two(height) || !crate::is_power_of_two(width) {
            return Err(FftError::InvalidLength(if crate::is_power_of_two(height) {
                width
            } else {
                height
            }));
        }
        let half = width / 2;
        let row_plan = Fft1d::new(half)?;
        let col_plan = Fft1d::new(height)?;
        let tw = (0..=half)
            .map(|k| Complex::cis(-2.0 * std::f32::consts::PI * k as f32 / width as f32))
            .collect();
        Ok(RealFft2d { height, width, half_width: half + 1, row_plan, col_plan, tw })
    }

    /// Grid height (number of rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Grid width of the *real* domain (number of columns before packing).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of stored spectrum columns, `width/2 + 1`.
    #[inline]
    pub fn half_width(&self) -> usize {
        self.half_width
    }

    /// Real-domain buffer length `height * width`.
    #[inline]
    pub fn real_len(&self) -> usize {
        self.height * self.width
    }

    /// Packed half-spectrum buffer length `height * (width/2 + 1)`.
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        self.height * self.half_width
    }

    fn check(&self, real_len: usize, spec_len: usize) -> Result<(), FftError> {
        if real_len != self.real_len() {
            return Err(FftError::SizeMismatch { expected: self.real_len(), actual: real_len });
        }
        if spec_len != self.spectrum_len() {
            return Err(FftError::SizeMismatch { expected: self.spectrum_len(), actual: spec_len });
        }
        Ok(())
    }

    /// Forward transform: real `height × width` image → packed half-spectrum
    /// (unnormalized, matching [`Direction::Forward`] of the complex path).
    ///
    /// `scratch` is grown to `spectrum_len()` once and then reused; steady
    /// state performs zero heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeMismatch`] on buffer-length mismatch.
    // lint: hot-path
    pub fn forward(
        &self,
        real: &[f32],
        out: &mut [Complex],
        scratch: &mut Vec<Complex>,
    ) -> Result<(), FftError> {
        self.check(real.len(), out.len())?;
        let (h, hw) = (self.height, self.half_width);
        let m = self.width / 2;
        scratch.resize(h * hw, Complex::ZERO);

        // Row pass: pack two real samples per complex slot, half-length FFT,
        // then untangle into the m+1 stored bins.
        for (src, row) in real.chunks_exact(self.width).zip(out.chunks_exact_mut(hw)) {
            for (z, pair) in row[..m].iter_mut().zip(src.chunks_exact(2)) {
                *z = Complex::new(pair[0], pair[1]);
            }
            self.row_plan.transform_unchecked(&mut row[..m], Direction::Forward);
            self.untangle_row(row);
        }

        // Column pass: every stored column gets a full-height complex FFT,
        // run contiguously through a pair of blocked transposes.
        transpose_into(out, scratch, h, hw);
        for col in scratch.chunks_exact_mut(h) {
            self.col_plan.transform_unchecked(col, Direction::Forward);
        }
        transpose_into(scratch, out, hw, h);
        Ok(())
    }

    /// Inverse transform: packed half-spectrum → real image, normalized by
    /// `1/(height·width)` so `inverse(forward(x)) == x` up to rounding.
    ///
    /// Destroys the contents of `half` (it is used as working storage). The
    /// input is assumed Hermitian-consistent, i.e. in the range of
    /// [`RealFft2d::forward`] — true for any product of half-spectra of real
    /// fields, which is all the litho stack produces.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeMismatch`] on buffer-length mismatch.
    // lint: hot-path
    pub fn inverse(
        &self,
        half: &mut [Complex],
        out: &mut [f32],
        scratch: &mut Vec<Complex>,
    ) -> Result<(), FftError> {
        self.check(out.len(), half.len())?;
        let (h, hw) = (self.height, self.half_width);
        let m = self.width / 2;
        scratch.resize(h * hw, Complex::ZERO);

        // Column pass first (reverse of forward): inverse FFT down every
        // stored column, carrying the 1/h normalization.
        transpose_into(half, scratch, h, hw);
        for col in scratch.chunks_exact_mut(h) {
            self.col_plan.transform_unchecked(col, Direction::Inverse);
        }
        transpose_into(scratch, half, hw, h);

        // Row pass: tangle the m+1 bins back into a half-length complex
        // sequence, inverse FFT (1/m), unpack interleaved real samples. The
        // two 1/2 factors hidden in the tangle make 1/(h·m) the exact overall
        // 1/(h·w) normalization.
        for (row, dst) in half.chunks_exact_mut(hw).zip(out.chunks_exact_mut(self.width)) {
            self.tangle_row(row);
            self.row_plan.transform_unchecked(&mut row[..m], Direction::Inverse);
            for (z, pair) in row[..m].iter().zip(dst.chunks_exact_mut(2)) {
                pair[0] = z.re;
                pair[1] = z.im;
            }
        }
        Ok(())
    }

    /// Adjoint of [`RealFft2d::forward`]: maps an *arbitrary* packed
    /// half-spectrum `Y` (not necessarily Hermitian-consistent) to the real
    /// image `A(Y)[n] = Re Σ_k Y[k]·e^{+2πi⟨k,n⟩}`, the transpose of the
    /// forward operator under the real inner product `⟨U,V⟩ = Σ Re(U·conj(V))`.
    ///
    /// Gradients of losses expressed on the packed spectrum pull back through
    /// this map. Destroys the contents of `half`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::SizeMismatch`] on buffer-length mismatch.
    // lint: hot-path
    pub fn adjoint(
        &self,
        half: &mut [Complex],
        out: &mut [f32],
        scratch: &mut Vec<Complex>,
    ) -> Result<(), FftError> {
        self.check(out.len(), half.len())?;
        let (h, hw) = (self.height, self.half_width);
        let m = self.width / 2;
        // Interior columns 0 < kx < m are counted twice by the implicit
        // mirror of the Hermitian inverse, so they enter at half weight;
        // the self-mirrored boundary columns are instead projected onto
        // their Hermitian (along ky) part.
        for row in half.chunks_exact_mut(hw) {
            for v in &mut row[1..m] {
                *v = v.scale(0.5);
            }
        }
        for b in [0, m] {
            for ky in 0..=(h / 2) {
                let ky2 = (h - ky) % h;
                if ky2 < ky {
                    continue;
                }
                let a = half[ky * hw + b];
                let c = half[ky2 * hw + b];
                half[ky * hw + b] = (a + c.conj()).scale(0.5);
                half[ky2 * hw + b] = (c + a.conj()).scale(0.5);
            }
        }
        // The symmetrized spectrum lies in the range of `forward`, where the
        // inverse is exact; undo its 1/N normalization.
        self.inverse(half, out, scratch)?;
        let n = (h * self.width) as f32;
        for v in out.iter_mut() {
            *v *= n;
        }
        Ok(())
    }

    /// Untangles one packed row in place: on entry `row[0..m]` holds the
    /// half-length FFT `Z` of the packed samples; on exit `row[0..=m]` holds
    /// the real-input spectrum bins `X[0..=m]`.
    // lint: hot-path
    fn untangle_row(&self, row: &mut [Complex]) {
        let m = self.width / 2;
        let z0 = row[0];
        let mut k = 1;
        while 2 * k < m {
            let zk = row[k];
            let zmk = row[m - k];
            let e = (zk + zmk.conj()).scale(0.5);
            let d = zk - zmk.conj();
            // o = -i/2 · d
            let o = Complex::new(0.5 * d.im, -0.5 * d.re);
            row[k] = e + self.tw[k] * o;
            row[m - k] = e.conj() + self.tw[m - k] * o.conj();
            k += 1;
        }
        if m >= 2 {
            row[m / 2] = row[m / 2].conj();
        }
        row[m] = Complex::new(z0.re - z0.im, 0.0);
        row[0] = Complex::new(z0.re + z0.im, 0.0);
    }

    /// Tangles one spectrum row in place: on entry `row[0..=m]` holds bins
    /// `X[0..=m]`; on exit `row[0..m]` holds the half-length sequence whose
    /// inverse FFT yields the packed real samples.
    // lint: hot-path
    fn tangle_row(&self, row: &mut [Complex]) {
        let m = self.width / 2;
        // General (complex-boundary-safe) tangle so the adjoint path may feed
        // symmetrized but non-real DC/Nyquist entries through the same code.
        let x0 = row[0];
        let xm = row[m];
        let e0 = (x0 + xm.conj()).scale(0.5);
        let o0 = (x0 - xm.conj()).scale(0.5);
        row[0] = Complex::new(e0.re - o0.im, e0.im + o0.re); // e0 + i·o0
        let mut k = 1;
        while 2 * k < m {
            let xk = row[k];
            let xmk = row[m - k];
            let e = (xk + xmk.conj()).scale(0.5);
            let t = (xk - xmk.conj()).scale(0.5);
            let o = t * self.tw[k].conj();
            row[k] = Complex::new(e.re - o.im, e.im + o.re); // e + i·o
            let (ec, oc) = (e.conj(), o.conj());
            row[m - k] = Complex::new(ec.re - oc.im, ec.im + oc.re);
            k += 1;
        }
        if m >= 2 {
            let x = row[m / 2];
            let e = (x + x.conj()).scale(0.5);
            let o = (x - x.conj()).scale(0.5) * self.tw[m / 2].conj();
            row[m / 2] = Complex::new(e.re - o.im, e.im + o.re);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fft2d;

    fn image(h: usize, w: usize) -> Vec<f32> {
        (0..h * w)
            .map(|i| {
                let y = (i / w) as f32;
                let x = (i % w) as f32;
                (0.37 * x - 0.19 * y).sin() + 0.25 * (0.05 * x * y).cos()
            })
            .collect()
    }

    #[test]
    fn rejects_bad_dims() {
        assert!(RealFft2d::new(8, 1).is_err());
        assert!(RealFft2d::new(3, 8).is_err());
        assert!(RealFft2d::new(8, 12).is_err());
        assert!(RealFft2d::new(1, 2).is_ok());
        assert!(RealFft2d::new(8, 8).is_ok());
    }

    #[test]
    fn forward_matches_full_complex_spectrum() {
        for (h, w) in [(1usize, 2usize), (1, 8), (4, 2), (2, 16), (16, 4), (8, 8), (16, 32)] {
            let plan = RealFft2d::new(h, w).unwrap();
            let full = Fft2d::new(h, w).unwrap();
            let img = image(h, w);
            let mut half = vec![Complex::ZERO; plan.spectrum_len()];
            let mut scratch = Vec::new();
            plan.forward(&img, &mut half, &mut scratch).unwrap();
            let reference = full.forward_real(&img).unwrap();
            let hw = plan.half_width();
            for ky in 0..h {
                for kx in 0..hw {
                    let got = half[ky * hw + kx];
                    let exp = reference[ky * w + kx];
                    let tol = 1e-4 * (h * w) as f32;
                    assert!((got.re - exp.re).abs() < tol, "{h}x{w} bin ({ky},{kx})");
                    assert!((got.im - exp.im).abs() < tol, "{h}x{w} bin ({ky},{kx})");
                }
            }
        }
    }

    #[test]
    fn boundary_columns_are_self_conjugate() {
        let (h, w) = (8usize, 16usize);
        let plan = RealFft2d::new(h, w).unwrap();
        let img = image(h, w);
        let mut half = vec![Complex::ZERO; plan.spectrum_len()];
        let mut scratch = Vec::new();
        plan.forward(&img, &mut half, &mut scratch).unwrap();
        let hw = plan.half_width();
        for b in [0, w / 2] {
            for ky in 0..h {
                let a = half[ky * hw + b];
                let c = half[((h - ky) % h) * hw + b].conj();
                assert!((a.re - c.re).abs() < 1e-3 && (a.im - c.im).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        for (h, w) in [(1usize, 2usize), (2, 2), (4, 16), (16, 4), (32, 32)] {
            let plan = RealFft2d::new(h, w).unwrap();
            let img = image(h, w);
            let mut half = vec![Complex::ZERO; plan.spectrum_len()];
            let mut out = vec![0.0f32; h * w];
            let mut scratch = Vec::new();
            plan.forward(&img, &mut half, &mut scratch).unwrap();
            plan.inverse(&mut half, &mut out, &mut scratch).unwrap();
            for (a, b) in out.iter().zip(&img) {
                assert!((a - b).abs() < 1e-4, "{h}x{w}");
            }
        }
    }

    #[test]
    fn adjoint_identity_holds() {
        // ⟨F x, Y⟩ = ⟨x, Aᵀ Y⟩ under the real inner product, for arbitrary
        // (non-Hermitian) packed Y.
        let (h, w) = (8usize, 16usize);
        let plan = RealFft2d::new(h, w).unwrap();
        let x = image(h, w);
        let mut fx = vec![Complex::ZERO; plan.spectrum_len()];
        let mut scratch = Vec::new();
        plan.forward(&x, &mut fx, &mut scratch).unwrap();

        let mut y: Vec<Complex> = (0..plan.spectrum_len())
            .map(|i| {
                Complex::new(((i * 13 % 31) as f32) / 31.0 - 0.5, ((i * 7 % 17) as f32) / 17.0)
            })
            .collect();
        let lhs: f64 = fx
            .iter()
            .zip(&y)
            .map(|(a, b)| (a.re as f64) * (b.re as f64) + (a.im as f64) * (b.im as f64))
            .sum();

        let mut ay = vec![0.0f32; h * w];
        plan.adjoint(&mut y, &mut ay, &mut scratch).unwrap();
        let rhs: f64 = x.iter().zip(&ay).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn scratch_reused_across_calls() {
        let plan = RealFft2d::new(16, 16).unwrap();
        let img = image(16, 16);
        let mut half = vec![Complex::ZERO; plan.spectrum_len()];
        let mut out = vec![0.0f32; 256];
        let mut scratch = Vec::new();
        plan.forward(&img, &mut half, &mut scratch).unwrap();
        let cap = scratch.capacity();
        for _ in 0..3 {
            plan.forward(&img, &mut half, &mut scratch).unwrap();
            plan.inverse(&mut half, &mut out, &mut scratch).unwrap();
        }
        assert_eq!(scratch.capacity(), cap);
    }
}
