//! Property-based tests for the FFT substrate.

use ganopc_fft::{spectrum, Complex, Direction, Fft1d, Fft2d};
use proptest::prelude::*;

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-8.0f32..8.0, -8.0f32..8.0), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 1-D roundtrip is the identity.
    #[test]
    fn fft1d_roundtrip(data in complex_vec(64)) {
        let plan = Fft1d::new(64).unwrap();
        let mut buf = data.clone();
        plan.transform(&mut buf, Direction::Forward).unwrap();
        plan.transform(&mut buf, Direction::Inverse).unwrap();
        for (a, b) in buf.iter().zip(&data) {
            prop_assert!((a.re - b.re).abs() < 1e-2);
            prop_assert!((a.im - b.im).abs() < 1e-2);
        }
    }

    /// Linearity: FFT(αx + βy) == αFFT(x) + βFFT(y).
    #[test]
    fn fft1d_linearity(
        x in complex_vec(32),
        y in complex_vec(32),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
    ) {
        let plan = Fft1d::new(32).unwrap();
        let mut fx = x.clone();
        let mut fy = y.clone();
        let mut fz: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(&a, &b)| a.scale(alpha) + b.scale(beta))
            .collect();
        plan.transform(&mut fx, Direction::Forward).unwrap();
        plan.transform(&mut fy, Direction::Forward).unwrap();
        plan.transform(&mut fz, Direction::Forward).unwrap();
        for i in 0..32 {
            let expect = fx[i].scale(alpha) + fy[i].scale(beta);
            prop_assert!((fz[i].re - expect.re).abs() < 0.05);
            prop_assert!((fz[i].im - expect.im).abs() < 0.05);
        }
    }

    /// Cyclic time shift multiplies the spectrum by a phase, preserving
    /// magnitudes.
    #[test]
    fn fft1d_shift_preserves_magnitudes(data in complex_vec(32), shift in 0usize..32) {
        let plan = Fft1d::new(32).unwrap();
        let mut original = data.clone();
        let mut shifted: Vec<Complex> = (0..32).map(|i| data[(i + shift) % 32]).collect();
        plan.transform(&mut original, Direction::Forward).unwrap();
        plan.transform(&mut shifted, Direction::Forward).unwrap();
        for (a, b) in original.iter().zip(&shifted) {
            prop_assert!((a.abs() - b.abs()).abs() < 1e-2 * a.abs().max(1.0));
        }
    }

    /// 2-D convolution theorem: spatial cyclic convolution equals
    /// pointwise spectral multiplication.
    #[test]
    fn convolution_commutes(field in prop::collection::vec(0.0f32..1.0, 64)) {
        let mut kernel = vec![Complex::ZERO; 9];
        kernel[1] = Complex::new(0.5, 0.0);
        kernel[4] = Complex::new(1.0, 0.0);
        kernel[7] = Complex::new(0.5, 0.0);
        let ks = spectrum::KernelSpectrum::new(&kernel, 3, 8, 8).unwrap();
        let plan = Fft2d::new(8, 8).unwrap();
        let out = spectrum::convolve_real(&plan, &field, &ks).unwrap();
        // Direct spatial check on a couple of positions.
        for (y, x) in [(3usize, 3usize), (0, 0), (7, 5)] {
            let up = field[((y + 7) % 8) * 8 + x];
            let mid = field[y * 8 + x];
            let down = field[((y + 1) % 8) * 8 + x];
            let expect = 0.5 * up + mid + 0.5 * down;
            let got = out[y * 8 + x].re;
            prop_assert!((got - expect).abs() < 1e-3, "at ({y},{x}): {got} vs {expect}");
        }
    }

    /// DC bin equals the sum of samples.
    #[test]
    fn dc_bin_is_sum(field in prop::collection::vec(-4.0f32..4.0, 64)) {
        let plan = Fft2d::new(8, 8).unwrap();
        let spec = plan.forward_real(&field).unwrap();
        let sum: f32 = field.iter().sum();
        prop_assert!((spec[0].re - sum).abs() < 1e-2 * sum.abs().max(1.0));
        prop_assert!(spec[0].im.abs() < 1e-3);
    }
}
