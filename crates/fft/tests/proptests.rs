//! Property-based tests for the spectral engine.
//!
//! The FFT and real-FFT paths are checked against a naive O(N²) DFT written
//! in f64, over randomized power-of-two sizes up to 1024 and randomized
//! rectangular shapes, including the Hermitian-packing boundary columns.

use ganopc_fft::{spectrum, Complex, Direction, Fft1d, Fft2d, RealFft2d};
use proptest::prelude::*;

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-8.0f32..8.0, -8.0f32..8.0), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

/// Random power-of-two length in `2..=1024` with matching complex data.
fn sized_complex_vec() -> impl Strategy<Value = Vec<Complex>> {
    (1u32..=10).prop_flat_map(|log| complex_vec(1usize << log))
}

/// Random power-of-two rectangle (h in 1..=32, w in 2..=64) with real data.
fn sized_real_image() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (0u32..=5, 1u32..=6).prop_flat_map(|(hlog, wlog)| {
        let (h, w) = (1usize << hlog, 1usize << wlog);
        prop::collection::vec(-4.0f32..4.0, h * w).prop_map(move |img| (h, w, img))
    })
}

/// Naive O(N²) DFT in f64 — the reference implementation.
fn naive_dft(input: &[Complex], dir: Direction) -> Vec<Complex> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0f64,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let (mut re, mut im) = (0.0f64, 0.0f64);
        for (j, &x) in input.iter().enumerate() {
            let theta = sign * 2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64;
            let (s, c) = theta.sin_cos();
            re += x.re as f64 * c - x.im as f64 * s;
            im += x.re as f64 * s + x.im as f64 * c;
        }
        if matches!(dir, Direction::Inverse) {
            re /= n as f64;
            im /= n as f64;
        }
        *o = Complex::new(re as f32, im as f32);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The planned radix-4/2 engine agrees with the naive O(N²) DFT at every
    /// power-of-two size in 2..=1024, both directions.
    #[test]
    fn fft1d_matches_naive_dft(data in sized_complex_vec(), inverse in 0u32..2) {
        let n = data.len();
        let dir = if inverse == 1 { Direction::Inverse } else { Direction::Forward };
        let plan = Fft1d::new(n).unwrap();
        let mut got = data.clone();
        plan.transform(&mut got, dir).unwrap();
        let expect = naive_dft(&data, dir);
        // Error scales with the magnitude flowing into each bin.
        let scale: f32 = data.iter().map(|c| c.abs()).sum::<f32>().max(1.0);
        let tol = 1e-6 * scale * (n as f32).log2().max(1.0) + 1e-4;
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g.re - e.re).abs() < tol, "n={n} {dir:?}: {g:?} vs {e:?}");
            prop_assert!((g.im - e.im).abs() < tol, "n={n} {dir:?}: {g:?} vs {e:?}");
        }
    }

    /// 1-D roundtrip is the identity.
    #[test]
    fn fft1d_roundtrip(data in sized_complex_vec()) {
        let plan = Fft1d::new(data.len()).unwrap();
        let mut buf = data.clone();
        plan.transform(&mut buf, Direction::Forward).unwrap();
        plan.transform(&mut buf, Direction::Inverse).unwrap();
        for (a, b) in buf.iter().zip(&data) {
            prop_assert!((a.re - b.re).abs() < 1e-2);
            prop_assert!((a.im - b.im).abs() < 1e-2);
        }
    }

    /// Linearity: FFT(αx + βy) == αFFT(x) + βFFT(y).
    #[test]
    fn fft1d_linearity(
        x in complex_vec(32),
        y in complex_vec(32),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
    ) {
        let plan = Fft1d::new(32).unwrap();
        let mut fx = x.clone();
        let mut fy = y.clone();
        let mut fz: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(&a, &b)| a.scale(alpha) + b.scale(beta))
            .collect();
        plan.transform(&mut fx, Direction::Forward).unwrap();
        plan.transform(&mut fy, Direction::Forward).unwrap();
        plan.transform(&mut fz, Direction::Forward).unwrap();
        for i in 0..32 {
            let expect = fx[i].scale(alpha) + fy[i].scale(beta);
            prop_assert!((fz[i].re - expect.re).abs() < 0.05);
            prop_assert!((fz[i].im - expect.im).abs() < 0.05);
        }
    }

    /// Cyclic time shift multiplies the spectrum by a phase, preserving
    /// magnitudes.
    #[test]
    fn fft1d_shift_preserves_magnitudes(data in complex_vec(32), shift in 0usize..32) {
        let plan = Fft1d::new(32).unwrap();
        let mut original = data.clone();
        let mut shifted: Vec<Complex> = (0..32).map(|i| data[(i + shift) % 32]).collect();
        plan.transform(&mut original, Direction::Forward).unwrap();
        plan.transform(&mut shifted, Direction::Forward).unwrap();
        for (a, b) in original.iter().zip(&shifted) {
            prop_assert!((a.abs() - b.abs()).abs() < 1e-2 * a.abs().max(1.0));
        }
    }

    /// Packed half-spectrum path vs the full complex path: every stored bin
    /// of the real FFT must match the complex transform of the same image,
    /// on randomized rectangular shapes.
    #[test]
    fn rfft_matches_full_complex_path((h, w, img) in sized_real_image()) {
        let rplan = RealFft2d::new(h, w).unwrap();
        let cplan = Fft2d::new(h, w).unwrap();
        let mut half = vec![Complex::ZERO; rplan.spectrum_len()];
        let mut scratch = Vec::new();
        rplan.forward(&img, &mut half, &mut scratch).unwrap();
        let full = cplan.forward_real(&img).unwrap();
        let hw = rplan.half_width();
        let scale: f32 = img.iter().map(|v| v.abs()).sum::<f32>().max(1.0);
        let tol = 1e-6 * scale * ((h * w) as f32).log2().max(1.0) + 1e-4;
        for ky in 0..h {
            for kx in 0..hw {
                let g = half[ky * hw + kx];
                let e = full[ky * w + kx];
                prop_assert!((g.re - e.re).abs() < tol, "{h}x{w} ({ky},{kx}): {g:?} vs {e:?}");
                prop_assert!((g.im - e.im).abs() < tol, "{h}x{w} ({ky},{kx}): {g:?} vs {e:?}");
            }
        }
    }

    /// The DC and Nyquist columns of the packed half-spectrum are
    /// self-conjugate along ky — the Hermitian-packing boundary invariant.
    #[test]
    fn rfft_boundary_columns_self_conjugate((h, w, img) in sized_real_image()) {
        let plan = RealFft2d::new(h, w).unwrap();
        let mut half = vec![Complex::ZERO; plan.spectrum_len()];
        let mut scratch = Vec::new();
        plan.forward(&img, &mut half, &mut scratch).unwrap();
        let hw = plan.half_width();
        let scale: f32 = img.iter().map(|v| v.abs()).sum::<f32>().max(1.0);
        let tol = 1e-5 * scale + 1e-4;
        for b in [0, w / 2] {
            for ky in 0..h {
                let a = half[ky * hw + b];
                let c = half[((h - ky) % h) * hw + b].conj();
                prop_assert!((a.re - c.re).abs() < tol && (a.im - c.im).abs() < tol,
                    "{h}x{w} col {b} row {ky}: {a:?} vs {c:?}");
            }
        }
    }

    /// Real roundtrip through the packed half-spectrum is the identity.
    #[test]
    fn rfft_roundtrip((h, w, img) in sized_real_image()) {
        let plan = RealFft2d::new(h, w).unwrap();
        let mut half = vec![Complex::ZERO; plan.spectrum_len()];
        let mut out = vec![0.0f32; h * w];
        let mut scratch = Vec::new();
        plan.forward(&img, &mut half, &mut scratch).unwrap();
        plan.inverse(&mut half, &mut out, &mut scratch).unwrap();
        for (a, b) in out.iter().zip(&img) {
            prop_assert!((a - b).abs() < 1e-3, "{h}x{w}");
        }
    }

    /// Adjoint identity ⟨Fx, Y⟩ = ⟨x, AᵀY⟩ for arbitrary packed Y.
    #[test]
    fn rfft_adjoint_identity((h, w, img) in sized_real_image(), seed in 0u64..1024) {
        let plan = RealFft2d::new(h, w).unwrap();
        let mut fx = vec![Complex::ZERO; plan.spectrum_len()];
        let mut scratch = Vec::new();
        plan.forward(&img, &mut fx, &mut scratch).unwrap();
        let mut y: Vec<Complex> = (0..plan.spectrum_len())
            .map(|i| {
                let v = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                Complex::new(
                    ((v >> 33) & 0xff) as f32 / 128.0 - 1.0,
                    ((v >> 41) & 0xff) as f32 / 128.0 - 1.0,
                )
            })
            .collect();
        let lhs: f64 = fx.iter().zip(&y)
            .map(|(a, b)| (a.re as f64) * (b.re as f64) + (a.im as f64) * (b.im as f64))
            .sum();
        let mut ay = vec![0.0f32; h * w];
        plan.adjoint(&mut y, &mut ay, &mut scratch).unwrap();
        let rhs: f64 = img.iter().zip(&ay).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        prop_assert!((lhs - rhs).abs() < 1e-3 * scale, "{h}x{w}: {lhs} vs {rhs}");
    }

    /// 2-D convolution theorem: spatial cyclic convolution equals
    /// pointwise spectral multiplication (through the half-spectrum path).
    #[test]
    fn convolution_commutes(field in prop::collection::vec(0.0f32..1.0, 64)) {
        let mut kernel = vec![Complex::ZERO; 9];
        kernel[1] = Complex::new(0.5, 0.0);
        kernel[4] = Complex::new(1.0, 0.0);
        kernel[7] = Complex::new(0.5, 0.0);
        let ks = spectrum::KernelSpectrum::new(&kernel, 3, 8, 8).unwrap();
        let plan = RealFft2d::new(8, 8).unwrap();
        let out = spectrum::convolve_real(&plan, &field, &ks).unwrap();
        // Direct spatial check on a couple of positions.
        for (y, x) in [(3usize, 3usize), (0, 0), (7, 5)] {
            let up = field[((y + 7) % 8) * 8 + x];
            let mid = field[y * 8 + x];
            let down = field[((y + 1) % 8) * 8 + x];
            let expect = 0.5 * up + mid + 0.5 * down;
            let got = out[y * 8 + x].re;
            prop_assert!((got - expect).abs() < 1e-3, "at ({y},{x}): {got} vs {expect}");
        }
    }

    /// DC bin equals the sum of samples, on both spectrum layouts.
    #[test]
    fn dc_bin_is_sum(field in prop::collection::vec(-4.0f32..4.0, 64)) {
        let plan = Fft2d::new(8, 8).unwrap();
        let spec = plan.forward_real(&field).unwrap();
        let sum: f32 = field.iter().sum();
        prop_assert!((spec[0].re - sum).abs() < 1e-2 * sum.abs().max(1.0));
        prop_assert!(spec[0].im.abs() < 1e-3);

        let rplan = RealFft2d::new(8, 8).unwrap();
        let mut half = vec![Complex::ZERO; rplan.spectrum_len()];
        let mut scratch = Vec::new();
        rplan.forward(&field, &mut half, &mut scratch).unwrap();
        prop_assert!((half[0].re - sum).abs() < 1e-2 * sum.abs().max(1.0));
        prop_assert!(half[0].im.abs() < 1e-3);
    }
}
