//! Model-based OPC: the *other* conventional mask-optimization family the
//! GAN-OPC paper positions itself against (Section 1, refs \[3\]–\[5\]).
//!
//! Where ILT treats the mask as a pixel field, model-based OPC keeps the
//! mask geometric: target polygon edges are **fractured into segments**
//! which are then **shifted along their normals** according to simulated
//! edge-placement error, optionally after inserting **sub-resolution assist
//! features** (SRAFs, ref \[9\]) next to isolated edges. The paper notes
//! these flows are fast but "highly restricted by their solution space" —
//! this crate lets the repository demonstrate that trade-off directly
//! (`cargo run -p ganopc-bench --release --bin baselines`).
//!
//! * [`fragment`] — edge fragmentation of rectilinear layouts;
//! * [`sraf`] — rule-based scattering-bar insertion;
//! * [`MbOpcEngine`] — the iterative EPE-feedback correction loop.
//!
//! # Example
//!
//! ```
//! use ganopc_mbopc::{MbOpcConfig, MbOpcEngine};
//! use ganopc_geometry::{Layout, Rect};
//! use ganopc_litho::{LithoModel, OpticalConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut opt = OpticalConfig::default_32nm(32.0);
//! opt.pupil_grid = 11;
//! opt.num_kernels = 6;
//! let model = LithoModel::new(opt, 64, 64)?;
//! let mut clip = Layout::new(Rect::new(0, 0, 2048, 2048));
//! clip.push(Rect::from_origin_size(800, 400, 80, 1000));
//! let mut engine = MbOpcEngine::new(model, MbOpcConfig::fast());
//! let result = engine.optimize(&clip)?;
//! assert!(result.binary_l2_nm2 <= *result.l2_history.first().unwrap());
//! # Ok(())
//! # }
//! ```

pub mod fragment;
pub mod sraf;

use fragment::{EdgeSide, FragmentedLayout};
use ganopc_geometry::{Layout, Rect};
use ganopc_litho::{Field, LithoError, LithoModel};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Errors from model-based OPC.
#[derive(Debug)]
pub enum MbOpcError {
    /// Propagated lithography failure.
    Litho(LithoError),
    /// The layout cannot be fragmented (empty, or degenerate shapes).
    Fragmentation(String),
}

impl fmt::Display for MbOpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MbOpcError::Litho(e) => write!(f, "lithography failure: {e}"),
            MbOpcError::Fragmentation(msg) => write!(f, "fragmentation failure: {msg}"),
        }
    }
}

impl Error for MbOpcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MbOpcError::Litho(e) => Some(e),
            MbOpcError::Fragmentation(_) => None,
        }
    }
}

impl From<LithoError> for MbOpcError {
    fn from(e: LithoError) -> Self {
        MbOpcError::Litho(e)
    }
}

/// Model-based OPC configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MbOpcConfig {
    /// Target segment length after fragmentation, nm.
    pub segment_length_nm: i64,
    /// Correction iterations.
    pub iterations: usize,
    /// Feedback gain: each segment moves by `gain × EPE` per iteration.
    pub gain: f64,
    /// Largest allowed |offset| a segment may accumulate, nm.
    pub max_offset_nm: i64,
    /// EPE search range along the normal, nm.
    pub search_range_nm: f64,
    /// Insert SRAFs next to isolated edges before correction.
    pub insert_srafs: bool,
    /// SRAF rule set (only used when `insert_srafs`).
    pub sraf: sraf::SrafRules,
}

impl MbOpcConfig {
    /// Production-like defaults (40 nm segments, 12 iterations).
    pub fn standard() -> Self {
        MbOpcConfig {
            segment_length_nm: 40,
            iterations: 12,
            gain: 0.6,
            max_offset_nm: 60,
            search_range_nm: 120.0,
            insert_srafs: true,
            sraf: sraf::SrafRules::default(),
        }
    }

    /// Cheap settings for tests and doc examples.
    pub fn fast() -> Self {
        MbOpcConfig {
            segment_length_nm: 80,
            iterations: 4,
            gain: 0.6,
            max_offset_nm: 60,
            search_range_nm: 120.0,
            insert_srafs: false,
            sraf: sraf::SrafRules::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.segment_length_nm <= 0 {
            return Err("segment length must be positive".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if !(0.0..=2.0).contains(&self.gain) || self.gain == 0.0 {
            return Err("gain must lie in (0, 2]".into());
        }
        if self.max_offset_nm <= 0 {
            return Err("max offset must be positive".into());
        }
        self.sraf.validate()
    }
}

impl Default for MbOpcConfig {
    fn default() -> Self {
        MbOpcConfig::standard()
    }
}

/// Outcome of a model-based OPC run.
#[derive(Debug, Clone)]
pub struct MbOpcResult {
    /// The corrected mask raster (including SRAFs if enabled).
    pub mask: Field,
    /// Binary wafer image of the final mask at nominal dose.
    pub wafer: Field,
    /// Squared L2 of the wafer vs the rasterized target, nm².
    pub binary_l2_nm2: f64,
    /// L2 per iteration (measured on the binary wafer).
    pub l2_history: Vec<f64>,
    /// Number of edge segments under correction.
    pub segment_count: usize,
    /// SRAF rectangles inserted (empty when disabled).
    pub srafs: Vec<Rect>,
    /// Wall-clock runtime, seconds.
    pub runtime_s: f64,
}

/// Iterative EPE-feedback model-based OPC engine.
#[derive(Debug)]
pub struct MbOpcEngine {
    model: LithoModel,
    config: MbOpcConfig,
}

impl MbOpcEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`MbOpcConfig::validate`].
    pub fn new(model: LithoModel, config: MbOpcConfig) -> Self {
        // PANIC: documented above — misconfiguration is a programming error
        // at construction, not a runtime condition to recover from.
        config.validate().expect("invalid model-based OPC configuration");
        MbOpcEngine { model, config }
    }

    /// The lithography model.
    pub fn model(&self) -> &LithoModel {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &MbOpcConfig {
        &self.config
    }

    /// Runs the correction loop on a geometric clip.
    ///
    /// # Errors
    ///
    /// Returns [`MbOpcError::Fragmentation`] for empty layouts and
    /// propagates lithography failures.
    pub fn optimize(&mut self, layout: &Layout) -> Result<MbOpcResult, MbOpcError> {
        let start = Instant::now();
        if layout.is_empty() {
            return Err(MbOpcError::Fragmentation("layout has no shapes".into()));
        }
        let (h, w) = self.model.shape();
        let px = self.model.pixel_nm();
        let target = layout.rasterize_raster(w, h).binarize(0.5);

        let srafs = if self.config.insert_srafs {
            sraf::insert_srafs(layout, &self.config.sraf)
        } else {
            Vec::new()
        };

        let mut fragmented = FragmentedLayout::fragment(layout, self.config.segment_length_nm)
            .map_err(MbOpcError::Fragmentation)?;
        // Mask-rule constraint: a segment may move outward at most half the
        // gap to the nearest facing shape (or SRAF), else corrections bridge
        // neighbouring patterns — the failure mode that makes unconstrained
        // MB-OPC *worse* than no OPC on dense clips.
        let clearances = segment_clearances(layout, &srafs, &fragmented, self.config.max_offset_nm);
        let mut history = Vec::with_capacity(self.config.iterations + 1);
        let mut best_offsets: Vec<i64> =
            fragmented.segments().iter().map(|s| s.offset_nm).collect();
        let mut best_l2 = f64::INFINITY;

        for _ in 0..self.config.iterations {
            let mask = self.render_mask(&fragmented, layout, &srafs, h, w);
            let wafer = self.model.print_nominal(&mask);
            let l2 = ganopc_litho::metrics::squared_l2_nm2(&wafer, &target, px);
            history.push(l2);
            if l2 < best_l2 {
                best_l2 = l2;
                best_offsets = fragmented.segments().iter().map(|s| s.offset_nm).collect();
            }
            // Measure EPE at three sites per segment (quarter points and
            // midpoint) and correct on the worst one — midpoint-only
            // sampling is blind to corner rounding between control points.
            for (si, seg) in fragmented.segments_mut().iter_mut().enumerate() {
                let mut epe = 0.0f64;
                for frac in [0.25f64, 0.5, 0.75] {
                    let (cx, cy) = seg.point_at(frac);
                    // Never search past the half-gap to a neighbour: in
                    // dense layouts the contour found beyond it belongs to
                    // the *neighbouring* wire and would read as a giant
                    // negative EPE.
                    let e = measure_epe(
                        &wafer,
                        cx,
                        cy,
                        seg.side,
                        layout.frame(),
                        h,
                        w,
                        self.config.search_range_nm,
                        clearances[si] as f64,
                    );
                    if e.abs() > epe.abs() {
                        epe = e;
                    }
                }
                // Positive EPE ⇒ printed edge inside the drawn edge ⇒ move
                // the mask edge outward (and vice versa).
                let delta = (self.config.gain * epe).round() as i64;
                seg.offset_nm = (seg.offset_nm + delta)
                    .clamp(-self.config.max_offset_nm, self.config.max_offset_nm);
            }
            for (seg, &limit) in fragmented.segments_mut().iter_mut().zip(&clearances) {
                seg.offset_nm = seg.offset_nm.min(limit);
            }
        }

        // Evaluate the final iterate, then keep whichever mask was best.
        let final_mask = self.render_mask(&fragmented, layout, &srafs, h, w);
        let final_wafer = self.model.print_nominal(&final_mask);
        let final_l2 = ganopc_litho::metrics::squared_l2_nm2(&final_wafer, &target, px);
        history.push(final_l2);
        let (mask, wafer, binary_l2_nm2) = if final_l2 <= best_l2 {
            (final_mask, final_wafer, final_l2)
        } else {
            for (seg, &o) in fragmented.segments_mut().iter_mut().zip(&best_offsets) {
                seg.offset_nm = o;
            }
            let mask = self.render_mask(&fragmented, layout, &srafs, h, w);
            let wafer = self.model.print_nominal(&mask);
            (mask, wafer, best_l2)
        };
        Ok(MbOpcResult {
            mask,
            wafer,
            binary_l2_nm2,
            l2_history: history,
            segment_count: fragmented.segments().len(),
            srafs,
            runtime_s: start.elapsed().as_secs_f64(),
        })
    }

    /// Renders the corrected mask: base shapes, plus outward slabs, minus
    /// inward bites, plus SRAFs.
    fn render_mask(
        &self,
        fragmented: &FragmentedLayout,
        layout: &Layout,
        srafs: &[Rect],
        h: usize,
        w: usize,
    ) -> Field {
        let mut additive = Layout::new(layout.frame());
        additive.extend(layout.shapes().iter().copied());
        additive.extend(srafs.iter().copied());
        let mut subtractive = Layout::new(layout.frame());
        for seg in fragmented.segments() {
            if seg.offset_nm > 0 {
                additive.push(seg.slab(seg.offset_nm));
            } else if seg.offset_nm < 0 {
                subtractive.push(seg.slab(seg.offset_nm));
            }
        }
        let add = additive.rasterize_raster(w, h);
        let sub = subtractive.rasterize_raster(w, h);
        Field::from_vec(
            h,
            w,
            add.as_slice()
                .iter()
                .zip(sub.as_slice())
                .map(|(&a, &s)| (a - s).clamp(0.0, 1.0))
                .collect(),
        )
    }
}

/// Computes, for every segment, the maximum outward offset that keeps at
/// least half the original gap to the nearest facing shape or SRAF.
fn segment_clearances(
    layout: &Layout,
    srafs: &[Rect],
    fragmented: &FragmentedLayout,
    max_offset: i64,
) -> Vec<i64> {
    let shapes = layout.shapes();
    fragmented
        .segments()
        .iter()
        .map(|seg| {
            let mut min_gap = i64::MAX;
            let others = shapes
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != seg.shape_index)
                .map(|(_, r)| *r)
                .chain(srafs.iter().copied());
            for r in others {
                let overlap_and_dist = match seg.side {
                    EdgeSide::Right => {
                        (r.y0 < seg.span_hi && seg.span_lo < r.y1 && r.x0 >= seg.edge_coord)
                            .then(|| r.x0 - seg.edge_coord)
                    }
                    EdgeSide::Left => {
                        (r.y0 < seg.span_hi && seg.span_lo < r.y1 && r.x1 <= seg.edge_coord)
                            .then(|| seg.edge_coord - r.x1)
                    }
                    EdgeSide::Top => {
                        (r.x0 < seg.span_hi && seg.span_lo < r.x1 && r.y0 >= seg.edge_coord)
                            .then(|| r.y0 - seg.edge_coord)
                    }
                    EdgeSide::Bottom => {
                        (r.x0 < seg.span_hi && seg.span_lo < r.x1 && r.y1 <= seg.edge_coord)
                            .then(|| seg.edge_coord - r.y1)
                    }
                };
                if let Some(d) = overlap_and_dist {
                    min_gap = min_gap.min(d);
                }
            }
            if min_gap == i64::MAX {
                max_offset
            } else {
                (min_gap / 2).clamp(0, max_offset)
            }
        })
        .collect()
}

/// Measures the signed EPE (nm) at a control point: the distance from the
/// drawn edge to the printed contour along the edge normal. Positive means
/// the print is pulled *inside* the drawn edge (under-exposure), negative
/// means it spills outside.
#[allow(clippy::too_many_arguments)]
fn measure_epe(
    wafer: &Field,
    cx_nm: f64,
    cy_nm: f64,
    side: EdgeSide,
    frame: Rect,
    h: usize,
    w: usize,
    range_nm: f64,
    outward_limit_nm: f64,
) -> f64 {
    let px_x = frame.width() as f64 / w as f64;
    let px_y = frame.height() as f64 / h as f64;
    let to_px = |x_nm: f64, y_nm: f64| -> Option<(usize, usize)> {
        let x = ((x_nm - frame.x0 as f64) / px_x).floor();
        let y = ((y_nm - frame.y0 as f64) / px_y).floor();
        if x < 0.0 || y < 0.0 || x >= w as f64 || y >= h as f64 {
            None
        } else {
            Some((y as usize, x as usize))
        }
    };
    // Outward unit normal in nm.
    let (nx, ny) = side.outward_normal();
    let step = px_x.min(px_y);
    let steps = (range_nm / step).ceil() as i32;
    // Walk inward, sampling at *half-pixel-centered* distances so a
    // perfectly placed contour measures EPE = 0 (sample k sits at
    // (k + 0.5)·step inside the drawn edge and reports EPE = k·step).
    for k in -steps..=steps {
        let d = (k as f64 + 0.5) * step;
        if d < 0.0 && -d > outward_limit_nm {
            continue; // beyond the half-gap: that contour is a neighbour's
        }
        let sx = cx_nm - nx * d;
        let sy = cy_nm - ny * d;
        if let Some((yy, xx)) = to_px(sx, sy) {
            if wafer.get(yy, xx) >= 0.5 {
                return k as f64 * step;
            }
        }
    }
    // Nothing printed within range: maximal pullback.
    range_nm
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganopc_litho::OpticalConfig;

    fn small_model() -> LithoModel {
        let mut cfg = OpticalConfig::default_32nm(32.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 6;
        LithoModel::new(cfg, 64, 64).unwrap()
    }

    fn wire_clip() -> Layout {
        let mut clip = Layout::new(Rect::new(0, 0, 2048, 2048));
        clip.push(Rect::from_origin_size(900, 400, 120, 1200));
        clip
    }

    #[test]
    fn correction_reduces_l2() {
        let mut engine = MbOpcEngine::new(small_model(), MbOpcConfig::fast());
        let result = engine.optimize(&wire_clip()).unwrap();
        let first = *result.l2_history.first().unwrap();
        assert!(
            result.binary_l2_nm2 <= first,
            "MB-OPC made things worse: {first} -> {}",
            result.binary_l2_nm2
        );
        assert!(result.segment_count > 0);
        assert!(result.runtime_s > 0.0);
    }

    #[test]
    fn corrected_beats_uncorrected_on_line_ends() {
        // Finer grid (16 nm/px): corner rounding spans several pixels, so
        // segment corrections have room to act.
        let mut ocfg = OpticalConfig::default_32nm(16.0);
        ocfg.pupil_grid = 11;
        ocfg.num_kernels = 6;
        let model = LithoModel::new(ocfg, 128, 128).unwrap();
        let clip = wire_clip();
        let target = clip.rasterize_raster(128, 128).binarize(0.5);
        let px = model.pixel_nm();
        let no_opc =
            ganopc_litho::metrics::squared_l2_nm2(&model.print_nominal(&target), &target, px);
        let mut cfg = MbOpcConfig::fast();
        cfg.iterations = 8;
        cfg.segment_length_nm = 40;
        let mut engine = MbOpcEngine::new(model, cfg);
        let result = engine.optimize(&clip).unwrap();
        assert!(
            result.binary_l2_nm2 < no_opc,
            "MB-OPC {} vs no-OPC {no_opc}",
            result.binary_l2_nm2
        );
    }

    #[test]
    fn empty_layout_rejected() {
        let mut engine = MbOpcEngine::new(small_model(), MbOpcConfig::fast());
        let empty = Layout::new(Rect::new(0, 0, 2048, 2048));
        assert!(matches!(engine.optimize(&empty), Err(MbOpcError::Fragmentation(_))));
    }

    #[test]
    fn srafs_appear_when_enabled() {
        let mut cfg = MbOpcConfig::fast();
        cfg.insert_srafs = true;
        let mut engine = MbOpcEngine::new(small_model(), cfg);
        let result = engine.optimize(&wire_clip()).unwrap();
        assert!(!result.srafs.is_empty(), "isolated wire should receive SRAFs");
    }

    #[test]
    fn config_validation() {
        assert!(MbOpcConfig::standard().validate().is_ok());
        let mut bad = MbOpcConfig::fast();
        bad.gain = 0.0;
        assert!(bad.validate().is_err());
        bad = MbOpcConfig::fast();
        bad.segment_length_nm = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn mask_is_clamped_coverage() {
        let mut engine = MbOpcEngine::new(small_model(), MbOpcConfig::fast());
        let result = engine.optimize(&wire_clip()).unwrap();
        assert!(result.mask.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
