//! Edge fragmentation: splitting rectangle edges into movable segments.

use ganopc_geometry::{Layout, Rect};
use serde::{Deserialize, Serialize};

/// Which side of its parent rectangle an edge segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeSide {
    /// Left edge (`x0`), outward normal −x.
    Left,
    /// Right edge (`x1`), outward normal +x.
    Right,
    /// Bottom edge (`y0`), outward normal −y.
    Bottom,
    /// Top edge (`y1`), outward normal +y.
    Top,
}

impl EdgeSide {
    /// The outward unit normal `(nx, ny)`.
    pub fn outward_normal(self) -> (f64, f64) {
        match self {
            EdgeSide::Left => (-1.0, 0.0),
            EdgeSide::Right => (1.0, 0.0),
            EdgeSide::Bottom => (0.0, -1.0),
            EdgeSide::Top => (0.0, 1.0),
        }
    }
}

/// One movable edge segment with its accumulated normal offset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Index of the parent shape in the source layout.
    pub shape_index: usize,
    /// Edge the segment lives on.
    pub side: EdgeSide,
    /// Span start along the edge, nm (x for horizontal edges, y for
    /// vertical ones).
    pub span_lo: i64,
    /// Span end along the edge, nm.
    pub span_hi: i64,
    /// Edge coordinate, nm (the x of a vertical edge / y of a horizontal
    /// edge, *before* correction).
    pub edge_coord: i64,
    /// Accumulated normal offset, nm. Positive = outward.
    pub offset_nm: i64,
}

impl Segment {
    /// A measurement point at fraction `frac ∈ [0, 1]` along the segment
    /// span, returned as `(x_nm, y_nm)` on the drawn edge.
    pub fn point_at(&self, frac: f64) -> (f64, f64) {
        let along = self.span_lo as f64 + frac * (self.span_hi - self.span_lo) as f64;
        match self.side {
            EdgeSide::Left | EdgeSide::Right => (self.edge_coord as f64, along),
            EdgeSide::Bottom | EdgeSide::Top => (along, self.edge_coord as f64),
        }
    }

    /// Control-point x in nm (segment midpoint projected on the edge).
    pub fn control_x_nm(&self) -> f64 {
        match self.side {
            EdgeSide::Left | EdgeSide::Right => self.edge_coord as f64,
            EdgeSide::Bottom | EdgeSide::Top => (self.span_lo + self.span_hi) as f64 / 2.0,
        }
    }

    /// Control-point y in nm.
    pub fn control_y_nm(&self) -> f64 {
        match self.side {
            EdgeSide::Left | EdgeSide::Right => (self.span_lo + self.span_hi) as f64 / 2.0,
            EdgeSide::Bottom | EdgeSide::Top => self.edge_coord as f64,
        }
    }

    /// The correction slab for a given offset: the rectangle between the
    /// original edge and the moved edge. For positive offsets this is mask
    /// area to *add* outside the edge; for negative offsets, area to
    /// *remove* inside it.
    pub fn slab(&self, offset: i64) -> Rect {
        let o = offset;
        match self.side {
            EdgeSide::Right => Rect::new(
                self.edge_coord.min(self.edge_coord + o),
                self.span_lo,
                self.edge_coord.max(self.edge_coord + o),
                self.span_hi,
            ),
            EdgeSide::Left => Rect::new(
                self.edge_coord.min(self.edge_coord - o),
                self.span_lo,
                self.edge_coord.max(self.edge_coord - o),
                self.span_hi,
            ),
            EdgeSide::Top => Rect::new(
                self.span_lo,
                self.edge_coord.min(self.edge_coord + o),
                self.span_hi,
                self.edge_coord.max(self.edge_coord + o),
            ),
            EdgeSide::Bottom => Rect::new(
                self.span_lo,
                self.edge_coord.min(self.edge_coord - o),
                self.span_hi,
                self.edge_coord.max(self.edge_coord - o),
            ),
        }
    }
}

/// A layout whose shape edges have been fractured into segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragmentedLayout {
    segments: Vec<Segment>,
}

impl FragmentedLayout {
    /// Fractures every edge of every shape into segments of at most
    /// `segment_length_nm` (edges shorter than that become one segment).
    ///
    /// # Errors
    ///
    /// Returns an error for empty layouts, nonpositive segment lengths, or
    /// layouts containing empty rectangles.
    pub fn fragment(layout: &Layout, segment_length_nm: i64) -> Result<Self, String> {
        if layout.is_empty() {
            return Err("cannot fragment an empty layout".into());
        }
        if segment_length_nm <= 0 {
            return Err(format!("segment length {segment_length_nm} must be positive"));
        }
        let mut segments = Vec::new();
        for (idx, rect) in layout.shapes().iter().enumerate() {
            if rect.is_empty() {
                return Err(format!("shape {idx} is an empty rectangle"));
            }
            let mut push_edge = |side: EdgeSide, lo: i64, hi: i64, coord: i64| {
                let len = hi - lo;
                let pieces = (len + segment_length_nm - 1) / segment_length_nm;
                for p in 0..pieces {
                    let s_lo = lo + p * len / pieces;
                    let s_hi = lo + (p + 1) * len / pieces;
                    segments.push(Segment {
                        shape_index: idx,
                        side,
                        span_lo: s_lo,
                        span_hi: s_hi,
                        edge_coord: coord,
                        offset_nm: 0,
                    });
                }
            };
            push_edge(EdgeSide::Left, rect.y0, rect.y1, rect.x0);
            push_edge(EdgeSide::Right, rect.y0, rect.y1, rect.x1);
            push_edge(EdgeSide::Bottom, rect.x0, rect.x1, rect.y0);
            push_edge(EdgeSide::Top, rect.x0, rect.x1, rect.y1);
        }
        Ok(FragmentedLayout { segments })
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Mutable segment access (the correction loop adjusts offsets).
    pub fn segments_mut(&mut self) -> &mut [Segment] {
        &mut self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` when no segments exist (never for fragmented layouts).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_clip() -> Layout {
        let mut l = Layout::new(Rect::new(0, 0, 1000, 1000));
        l.push(Rect::from_origin_size(100, 100, 200, 200));
        l
    }

    #[test]
    fn segment_count_matches_geometry() {
        // 200 nm edges at 50 nm segments → 4 per edge × 4 edges.
        let f = FragmentedLayout::fragment(&square_clip(), 50).unwrap();
        assert_eq!(f.len(), 16);
        // One segment per edge when segments are long enough.
        let g = FragmentedLayout::fragment(&square_clip(), 500).unwrap();
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn segments_tile_each_edge_exactly() {
        let f = FragmentedLayout::fragment(&square_clip(), 60).unwrap();
        for side in [EdgeSide::Left, EdgeSide::Right, EdgeSide::Top, EdgeSide::Bottom] {
            let mut spans: Vec<(i64, i64)> = f
                .segments()
                .iter()
                .filter(|s| s.side == side)
                .map(|s| (s.span_lo, s.span_hi))
                .collect();
            spans.sort_unstable();
            assert_eq!(spans.first().unwrap().0, 100);
            assert_eq!(spans.last().unwrap().1, 300);
            for pair in spans.windows(2) {
                assert_eq!(pair[0].1, pair[1].0, "gap/overlap between segments");
            }
        }
    }

    #[test]
    fn control_points_sit_on_edges() {
        let f = FragmentedLayout::fragment(&square_clip(), 500).unwrap();
        for s in f.segments() {
            match s.side {
                EdgeSide::Left => assert_eq!(s.control_x_nm(), 100.0),
                EdgeSide::Right => assert_eq!(s.control_x_nm(), 300.0),
                EdgeSide::Bottom => assert_eq!(s.control_y_nm(), 100.0),
                EdgeSide::Top => assert_eq!(s.control_y_nm(), 300.0),
            }
            // Midpoints along the edge.
            match s.side {
                EdgeSide::Left | EdgeSide::Right => assert_eq!(s.control_y_nm(), 200.0),
                _ => assert_eq!(s.control_x_nm(), 200.0),
            }
        }
    }

    #[test]
    fn slabs_extend_outward_for_positive_offsets() {
        let f = FragmentedLayout::fragment(&square_clip(), 500).unwrap();
        for s in f.segments() {
            let slab = s.slab(20);
            assert_eq!(slab.area(), 200 * 20, "side {:?}", s.side);
            // The slab must lie outside the original square for + offsets.
            let square = Rect::new(100, 100, 300, 300);
            match s.side {
                EdgeSide::Right => assert_eq!(slab.x0, square.x1),
                EdgeSide::Left => assert_eq!(slab.x1, square.x0),
                EdgeSide::Top => assert_eq!(slab.y0, square.y1),
                EdgeSide::Bottom => assert_eq!(slab.y1, square.y0),
            }
        }
    }

    #[test]
    fn slabs_bite_inward_for_negative_offsets() {
        let f = FragmentedLayout::fragment(&square_clip(), 500).unwrap();
        let square = Rect::new(100, 100, 300, 300);
        for s in f.segments() {
            let slab = s.slab(-20);
            assert!(square.contains_rect(&slab), "side {:?}: {slab}", s.side);
        }
    }

    #[test]
    fn fragment_rejects_bad_inputs() {
        let empty = Layout::new(Rect::new(0, 0, 10, 10));
        assert!(FragmentedLayout::fragment(&empty, 50).is_err());
        assert!(FragmentedLayout::fragment(&square_clip(), 0).is_err());
    }

    #[test]
    fn outward_normals_are_unit() {
        for side in [EdgeSide::Left, EdgeSide::Right, EdgeSide::Top, EdgeSide::Bottom] {
            let (nx, ny) = side.outward_normal();
            assert_eq!(nx * nx + ny * ny, 1.0);
        }
    }
}
