//! Rule-based sub-resolution assist feature (SRAF) insertion.
//!
//! SRAFs — "scattering bars" — are narrow mask features placed parallel to
//! *isolated* edges. They are below the resolution limit (they never print)
//! but diffract light so the isolated edge images more like a dense one,
//! widening the process window (paper ref \[9\]).

use ganopc_geometry::{Layout, Rect};
use serde::{Deserialize, Serialize};

/// SRAF insertion rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrafRules {
    /// Bar width, nm — must stay below the printing resolution.
    pub width_nm: i64,
    /// Bar distance from the main-feature edge, nm.
    pub gap_nm: i64,
    /// An edge is "isolated" when no other shape lies within this distance.
    pub isolation_nm: i64,
    /// Minimum edge length that earns a bar, nm.
    pub min_edge_nm: i64,
    /// Bar end pull-in from the edge corners, nm.
    pub end_margin_nm: i64,
}

impl Default for SrafRules {
    fn default() -> Self {
        // 40 nm bars (below the ~71 nm minimum printable pitch of the
        // 193i system), 100 nm off the feature, considered isolated when
        // nothing sits within 250 nm.
        SrafRules {
            width_nm: 40,
            gap_nm: 100,
            isolation_nm: 250,
            min_edge_nm: 200,
            end_margin_nm: 40,
        }
    }
}

impl SrafRules {
    /// Validates the rules.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.width_nm <= 0 {
            return Err("sraf width must be positive".into());
        }
        if self.gap_nm <= 0 {
            return Err("sraf gap must be positive".into());
        }
        if self.isolation_nm <= self.gap_nm + self.width_nm {
            return Err("isolation distance must exceed gap + width".into());
        }
        if self.min_edge_nm <= 0 || self.end_margin_nm < 0 {
            return Err("edge-length rules must be nonnegative".into());
        }
        Ok(())
    }
}

/// Inserts scattering bars next to every isolated, long-enough edge of the
/// layout. Bars are clipped so they stay inside the frame and never come
/// closer than `gap_nm` to *any* shape.
///
/// ```
/// use ganopc_geometry::{Layout, Rect};
/// use ganopc_mbopc::sraf::{insert_srafs, SrafRules};
///
/// let mut clip = Layout::new(Rect::new(0, 0, 2048, 2048));
/// clip.push(Rect::from_origin_size(1000, 500, 80, 1000)); // isolated wire
/// let bars = insert_srafs(&clip, &SrafRules::default());
/// assert_eq!(bars.len(), 2); // one bar on each long side
/// ```
pub fn insert_srafs(layout: &Layout, rules: &SrafRules) -> Vec<Rect> {
    let mut bars = Vec::new();
    let frame = layout.frame();
    let shapes = layout.shapes();
    for (idx, rect) in shapes.iter().enumerate() {
        // Candidate bars along the four edges.
        let candidates = [
            // Left.
            (rect.height() >= rules.min_edge_nm).then(|| {
                Rect::new(
                    rect.x0 - rules.gap_nm - rules.width_nm,
                    rect.y0 + rules.end_margin_nm,
                    rect.x0 - rules.gap_nm,
                    rect.y1 - rules.end_margin_nm,
                )
            }),
            // Right.
            (rect.height() >= rules.min_edge_nm).then(|| {
                Rect::new(
                    rect.x1 + rules.gap_nm,
                    rect.y0 + rules.end_margin_nm,
                    rect.x1 + rules.gap_nm + rules.width_nm,
                    rect.y1 - rules.end_margin_nm,
                )
            }),
            // Bottom.
            (rect.width() >= rules.min_edge_nm).then(|| {
                Rect::new(
                    rect.x0 + rules.end_margin_nm,
                    rect.y0 - rules.gap_nm - rules.width_nm,
                    rect.x1 - rules.end_margin_nm,
                    rect.y0 - rules.gap_nm,
                )
            }),
            // Top.
            (rect.width() >= rules.min_edge_nm).then(|| {
                Rect::new(
                    rect.x0 + rules.end_margin_nm,
                    rect.y1 + rules.gap_nm,
                    rect.x1 - rules.end_margin_nm,
                    rect.y1 + rules.gap_nm + rules.width_nm,
                )
            }),
        ];
        for bar in candidates.into_iter().flatten() {
            if bar.is_empty() || !frame.contains_rect(&bar) {
                continue;
            }
            // Isolation: the *source edge* has no neighbour within range —
            // probe a slab extending isolation_nm beyond the bar.
            let probe = bar.expand(rules.isolation_nm - rules.gap_nm - rules.width_nm);
            let crowded = shapes.iter().enumerate().any(|(j, s)| j != idx && probe.intersects(s));
            if crowded {
                continue;
            }
            // Never closer than gap to any shape, and keep bars disjoint.
            let too_close = shapes.iter().any(|s| bar.gap(s) < rules.gap_nm && !bar.intersects(s))
                || shapes.iter().any(|s| bar.intersects(s))
                || bars.iter().any(|b: &Rect| b.intersects(&bar) || b.gap(&bar) < rules.width_nm);
            if too_close {
                continue;
            }
            bars.push(bar);
        }
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Rect {
        Rect::new(0, 0, 2048, 2048)
    }

    #[test]
    fn isolated_wire_gets_two_side_bars() {
        let mut clip = Layout::new(frame());
        clip.push(Rect::from_origin_size(1000, 500, 80, 1000));
        let bars = insert_srafs(&clip, &SrafRules::default());
        assert_eq!(bars.len(), 2);
        for bar in &bars {
            assert_eq!(bar.width(), 40);
            assert_eq!(bar.gap(&clip.shapes()[0]), 100);
        }
    }

    #[test]
    fn dense_wires_get_no_bars_between_them() {
        let mut clip = Layout::new(frame());
        clip.push(Rect::from_origin_size(1000, 500, 80, 1000));
        clip.push(Rect::from_origin_size(1140, 500, 80, 1000)); // 60 nm away
        let bars = insert_srafs(&clip, &SrafRules::default());
        // Only the two outermost sides may carry bars.
        for bar in &bars {
            let between = bar.x0 >= 1080 && bar.x1 <= 1140;
            assert!(!between, "bar {bar} placed in the dense gap");
        }
    }

    #[test]
    fn short_edges_are_skipped() {
        let mut clip = Layout::new(frame());
        clip.push(Rect::from_origin_size(1000, 1000, 80, 120)); // stub
        let bars = insert_srafs(&clip, &SrafRules::default());
        assert!(bars.is_empty(), "{bars:?}");
    }

    #[test]
    fn bars_stay_inside_the_frame() {
        let mut clip = Layout::new(frame());
        clip.push(Rect::from_origin_size(20, 500, 80, 1000)); // near left frame edge
        let bars = insert_srafs(&clip, &SrafRules::default());
        for bar in &bars {
            assert!(frame().contains_rect(bar), "{bar}");
        }
    }

    #[test]
    fn bars_never_print() {
        // End-to-end: a bar inserted by default rules must not appear in
        // the wafer image.
        use ganopc_litho::{LithoModel, OpticalConfig};
        let mut cfg = OpticalConfig::default_32nm(16.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 8;
        let model = LithoModel::new(cfg, 128, 128).unwrap();
        let mut clip = Layout::new(frame());
        clip.push(Rect::from_origin_size(1000, 400, 80, 1200));
        let bars = insert_srafs(&clip, &SrafRules::default());
        assert!(!bars.is_empty());
        let mut with_bars = clip.clone();
        with_bars.extend(bars.iter().copied());
        let wafer = model.print_nominal(&with_bars.rasterize_raster(128, 128));
        // No printed pixel where only a bar exists.
        let bars_only = Layout::with_shapes(frame(), bars.clone()).rasterize_raster(128, 128);
        let main_only = clip.rasterize_raster(128, 128);
        for i in 0..wafer.len() {
            let bar_px = bars_only.as_slice()[i] > 0.5;
            let main_near = main_only.as_slice()[i] > 0.0;
            if bar_px && !main_near {
                assert_eq!(wafer.as_slice()[i], 0.0, "SRAF printed at pixel {i}");
            }
        }
    }

    #[test]
    fn rules_validate() {
        assert!(SrafRules::default().validate().is_ok());
        let bad = SrafRules { isolation_nm: 50, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = SrafRules { width_nm: 0, ..Default::default() };
        assert!(bad.validate().is_err());
    }
}
