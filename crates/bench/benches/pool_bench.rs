//! Criterion bench B7: worker-pool dispatch overhead.
//!
//! Eight trivial jobs at four threads measure pure hand-off cost — the work
//! itself is a few nanoseconds, so the timings are dominated by how the jobs
//! reach the workers. `crew_*` rows go through the persistent work-crew
//! (parked workers, shared job descriptor, atomic chunk claims); the
//! `scoped_spawn` row replicates the pre-crew pool, which spawned and joined
//! fresh scoped threads on every call.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ganopc_nn::pool;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The pre-crew dispatch path: split the job vector into per-thread batches,
/// spawn a scoped thread per batch, join in order. Kept here as the baseline
/// the persistent crew is measured against.
fn scoped_spawn_run<J, R, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let batch = total.div_ceil(threads);
    let mut batches: Vec<Vec<J>> = Vec::new();
    let mut it = jobs.into_iter();
    loop {
        let b: Vec<J> = it.by_ref().take(batch).collect();
        if b.is_empty() {
            break;
        }
        batches.push(b);
    }
    let fref = &f;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|b| s.spawn(move |_| b.into_iter().map(fref).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(total);
        for h in handles {
            out.extend(h.join().expect("worker panicked"));
        }
        out
    })
    .expect("scope")
}

fn bench_pool_dispatch(c: &mut Criterion) {
    pool::set_max_threads(Some(4));
    // Spawn the crew before timing so the crew rows measure steady-state
    // dispatch, not one-time thread creation.
    pool::run_chunks(8, |r| {
        black_box(r.len());
    });

    let mut group = c.benchmark_group("pool_dispatch");
    group.sample_size(60);
    group.bench_function("crew_run_8jobs_4t", |b| {
        b.iter(|| {
            let jobs: Vec<usize> = (0..8).collect();
            black_box(pool::run(jobs, |j| j.wrapping_mul(3)))
        })
    });
    group.bench_function("crew_run_chunks_8jobs_4t", |b| {
        b.iter(|| {
            let acc = AtomicUsize::new(0);
            pool::run_chunks(8, |r| {
                acc.fetch_add(r.start + r.len(), Ordering::Relaxed);
            });
            black_box(acc.into_inner())
        })
    });
    group.bench_function("scoped_spawn_8jobs_4t", |b| {
        b.iter(|| {
            let jobs: Vec<usize> = (0..8).collect();
            black_box(scoped_spawn_run(jobs, 4, |j| j.wrapping_mul(3)))
        })
    });
    group.finish();
    pool::set_max_threads(None);
}

criterion_group!(benches, bench_pool_dispatch);
criterion_main!(benches);
