//! Criterion bench B4: cost of one ILT steepest-descent iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use ganopc_ilt::{IltConfig, IltEngine};
use ganopc_litho::{Field, LithoModel};

fn cross(size: usize) -> Field {
    let mut t = Field::zeros(size, size);
    for y in size / 4..3 * size / 4 {
        for x in size / 2 - 3..size / 2 + 3 {
            t.set(y, x, 1.0);
        }
    }
    t
}

fn bench_ilt_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilt");
    group.sample_size(10);
    for (label, pw) in [("nominal_5iter_128", false), ("pw_aware_5iter_128", true)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let model = LithoModel::iccad2013_like(128).unwrap();
                    let mut cfg = IltConfig::fast();
                    cfg.max_iterations = 5;
                    cfg.process_window_aware = pw;
                    (IltEngine::new(model, cfg), cross(128))
                },
                |(mut engine, target)| engine.optimize(&target).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ilt_iterations);
criterion_main!(benches);
