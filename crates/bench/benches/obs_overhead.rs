//! Criterion bench B9: cost of the observability primitives themselves.
//!
//! The obs layer promises "zero-overhead" in the engineering sense: a span
//! enter/exit pair must stay under 50 ns so per-step phase spans are
//! negligible against millisecond-scale training phases. Each routine runs
//! `BATCH` back-to-back operations per sample — the harness brackets every
//! sample with two clock reads, which would swamp a ~40 ns operation if
//! measured singly — so per-op cost is the reported time divided by
//! `BATCH`. `scripts/bench_summary.sh` performs that division when folding
//! `span_enter_exit_x1024` into `BENCH_9.json`, and `scripts/check.sh`
//! enforces the budget on the result.

use criterion::{criterion_group, criterion_main, Criterion};
use ganopc_obs as obs;

/// Operations per measured sample; labels carry the `_x1024` suffix so the
/// reported totals are never mistaken for per-op times.
const BATCH: usize = 1024;

fn bench_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    // Span create → drop: two clock reads plus a histogram bucket update.
    group.bench_function("span_enter_exit_x1024", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let sp = obs::span(obs::Span::TrainStep);
                drop(sp);
            }
        })
    });
    // Span with an explicit Duration conversion (the flow/ILT runtime path).
    group.bench_function("span_finish_duration_x1024", |b| {
        b.iter(|| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..BATCH {
                total += obs::span(obs::Span::FlowTotal).finish();
            }
            total
        })
    });
    group.bench_function("counter_add_x1024", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                obs::counter_add(obs::Counter::TrainSteps, 1);
            }
        })
    });
    group.bench_function("trace_push_x1024", |b| {
        b.iter(|| {
            for i in 0..BATCH {
                obs::trace_push(obs::Trace::IltLoss, i as f64);
            }
        })
    });
    // The composite a fully instrumented hot-path call performs.
    group.bench_function("span_counter_trace_x1024", |b| {
        b.iter(|| {
            for i in 0..BATCH {
                let sp = obs::span(obs::Span::IltIteration);
                obs::counter_add(obs::Counter::IltIterations, 1);
                obs::trace_push(obs::Trace::IltLoss, i as f64);
                drop(sp);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_span);
criterion_main!(benches);
