//! Criterion bench B1: 2-D FFT throughput across clip-relevant sizes, plus
//! the packed-half-spectrum real path head-to-head against the complex path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ganopc_fft::{Complex, Direction, Fft2d, RealFft2d};

fn bench_fft2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2d_forward");
    group.sample_size(20);
    for size in [64usize, 128, 256, 512, 1024] {
        let plan = Fft2d::new(size, size).unwrap();
        let data: Vec<Complex> =
            (0..size * size).map(|i| Complex::new((i as f32 * 0.37).sin(), 0.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.transform(&mut buf, Direction::Forward).unwrap();
                buf
            })
        });
    }
    group.finish();
}

/// Real input through the full complex plan vs the packed `h × (w/2+1)`
/// Hermitian half-spectrum plan — the transform that carries the litho hot
/// path. Buffers are preallocated so the numbers isolate transform cost.
fn bench_rfft_vs_complex(c: &mut Criterion) {
    let mut group = c.benchmark_group("rfft_vs_complex");
    group.sample_size(20);
    for size in [128usize, 256, 512, 1024] {
        let real: Vec<f32> = (0..size * size).map(|i| (i as f32 * 0.37).sin()).collect();

        let cplan = Fft2d::new(size, size).unwrap();
        let mut cbuf = vec![Complex::ZERO; size * size];
        group.bench_with_input(BenchmarkId::new("complex", size), &size, |b, _| {
            b.iter(|| {
                for (dst, &src) in cbuf.iter_mut().zip(&real) {
                    *dst = Complex::new(src, 0.0);
                }
                cplan.transform(&mut cbuf, Direction::Forward).unwrap();
                cbuf.last().copied()
            })
        });

        let rplan = RealFft2d::new(size, size).unwrap();
        let mut half = vec![Complex::ZERO; rplan.spectrum_len()];
        let mut scratch = Vec::new();
        group.bench_with_input(BenchmarkId::new("rfft", size), &size, |b, _| {
            b.iter(|| {
                rplan.forward(&real, &mut half, &mut scratch).unwrap();
                half.last().copied()
            })
        });
    }
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let plan = Fft2d::new(128, 128).unwrap();
    let data: Vec<Complex> =
        (0..128 * 128).map(|i| Complex::new((i as f32 * 0.11).cos(), 0.0)).collect();
    c.bench_function("fft2d_roundtrip_128", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            plan.transform(&mut buf, Direction::Forward).unwrap();
            plan.transform(&mut buf, Direction::Inverse).unwrap();
            buf
        })
    });
}

criterion_group!(benches, bench_fft2d, bench_rfft_vs_complex, bench_roundtrip);
criterion_main!(benches);
