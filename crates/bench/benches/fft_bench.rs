//! Criterion bench B1: 2-D FFT throughput across clip-relevant sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ganopc_fft::{Complex, Direction, Fft2d};

fn bench_fft2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2d_forward");
    group.sample_size(20);
    for size in [64usize, 128, 256] {
        let plan = Fft2d::new(size, size).unwrap();
        let data: Vec<Complex> =
            (0..size * size).map(|i| Complex::new((i as f32 * 0.37).sin(), 0.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.transform(&mut buf, Direction::Forward).unwrap();
                buf
            })
        });
    }
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let plan = Fft2d::new(128, 128).unwrap();
    let data: Vec<Complex> =
        (0..128 * 128).map(|i| Complex::new((i as f32 * 0.11).cos(), 0.0)).collect();
    c.bench_function("fft2d_roundtrip_128", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            plan.transform(&mut buf, Direction::Forward).unwrap();
            plan.transform(&mut buf, Direction::Inverse).unwrap();
            buf
        })
    });
}

criterion_group!(benches, bench_fft2d, bench_roundtrip);
criterion_main!(benches);
