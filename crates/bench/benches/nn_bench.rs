//! Criterion bench B3: network building blocks and generator inference.

use criterion::{criterion_group, criterion_main, Criterion};
use ganopc_core::Generator;
use ganopc_nn::layers::{Conv2d, Layer};
use ganopc_nn::{init, Tensor};

fn bench_conv(c: &mut Criterion) {
    let mut conv = Conv2d::new(16, 32, 4, 2, 1, 1);
    let x = init::uniform(&[4, 16, 32, 32], -1.0, 1.0, 2);
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    group.bench_function("forward_16x32_s2", |b| b.iter(|| conv.forward(&x, true)));
    let y = conv.forward(&x, true);
    let g = Tensor::filled(y.shape(), 1.0);
    group.bench_function("backward_16x32_s2", |b| b.iter(|| conv.backward(&g)));
    group.finish();
}

fn bench_generator_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator_inference");
    group.sample_size(20);
    for size in [32usize, 64] {
        let mut g = Generator::new(size, 16, 7);
        let x = init::uniform(&[1, 1, size, size], 0.0, 1.0, 3);
        group.bench_function(format!("forward_{size}"), |b| b.iter(|| g.forward(&x, false)));
    }
    group.finish();
}

criterion_group!(benches, bench_conv, bench_generator_inference);
criterion_main!(benches);
