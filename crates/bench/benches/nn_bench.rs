//! Criterion bench B3: network building blocks, the GEMM core, generator
//! inference and a full ILT-guided pre-training step.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ganopc_core::pretrain::{pretrain_generator, PretrainConfig};
use ganopc_core::{Generator, OpcDataset};
use ganopc_ilt::IltConfig;
use ganopc_litho::{LithoModel, OpticalConfig};
use ganopc_nn::layers::{Conv2d, Layer};
use ganopc_nn::{gemm, init, Tensor};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    // Square shapes: the classic cache-blocking stress.
    for size in [128usize, 256, 512] {
        let a = init::uniform(&[size, size], -1.0, 1.0, 11);
        let b = init::uniform(&[size, size], -1.0, 1.0, 12);
        group.bench_function(format!("square_{size}"), |bench| {
            bench.iter(|| gemm::matmul(a.as_slice(), b.as_slice(), size, size, size))
        });
    }
    // im2col-shaped skinny products: few output channels against a wide
    // column matrix, as the conv layers issue them.
    for (m, k, n) in [(32usize, 256usize, 1024usize), (16, 144, 4096)] {
        let a = init::uniform(&[m, k], -1.0, 1.0, 13);
        let b = init::uniform(&[k, n], -1.0, 1.0, 14);
        group.bench_function(format!("im2col_{m}x{k}x{n}"), |bench| {
            bench.iter(|| gemm::matmul(a.as_slice(), b.as_slice(), m, k, n))
        });
    }
    group.finish();
}

fn bench_pretrain_step(c: &mut Criterion) {
    // One Algorithm 2 step: forward the batch through the generator,
    // litho-simulate every mask, backpropagate the litho gradient.
    let dataset = OpcDataset::synthesize(32, 4, IltConfig::fast(), 31).expect("dataset");
    let litho = {
        let mut cfg = OpticalConfig::default_32nm(2048.0 / 32.0);
        cfg.pupil_grid = 11;
        cfg.num_kernels = 6;
        LithoModel::new(cfg, 32, 32).expect("litho model")
    };
    let config = PretrainConfig { iterations: 1, batch_size: 4, lr: 0.01, momentum: 0.0, seed: 17 };
    let mut group = c.benchmark_group("pretrain");
    group.sample_size(10);
    group.bench_function("step_batch4_32px", |b| {
        b.iter(|| {
            let mut generator = Generator::new(32, 8, 23);
            black_box(pretrain_generator(&mut generator, &litho, &dataset, &config).expect("step"))
        })
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut conv = Conv2d::new(16, 32, 4, 2, 1, 1);
    let x = init::uniform(&[4, 16, 32, 32], -1.0, 1.0, 2);
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    group.bench_function("forward_16x32_s2", |b| b.iter(|| conv.forward(&x, true)));
    let y = conv.forward(&x, true);
    let g = Tensor::filled(y.shape(), 1.0);
    group.bench_function("backward_16x32_s2", |b| b.iter(|| conv.backward(&g)));
    group.finish();
}

fn bench_generator_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator_inference");
    group.sample_size(20);
    for size in [32usize, 64] {
        let mut g = Generator::new(size, 16, 7);
        let x = init::uniform(&[1, 1, size, size], 0.0, 1.0, 3);
        group.bench_function(format!("forward_{size}"), |b| b.iter(|| g.forward(&x, false)));
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_conv, bench_generator_inference, bench_pretrain_step);
criterion_main!(benches);
