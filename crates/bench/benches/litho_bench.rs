//! Criterion bench B2: lithography forward model and ILT gradient.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ganopc_litho::{Field, LithoModel};

fn cross(size: usize) -> Field {
    let mut t = Field::zeros(size, size);
    for y in size / 4..3 * size / 4 {
        for x in size / 2 - 2..size / 2 + 2 {
            t.set(y, x, 1.0);
        }
    }
    t
}

fn bench_aerial(c: &mut Criterion) {
    let mut group = c.benchmark_group("litho_aerial_image");
    group.sample_size(10);
    for size in [64usize, 128, 512, 1024] {
        let model = LithoModel::iccad2013_like(size).unwrap();
        let mask = cross(size);
        // Warm the scratch arena so the numbers reflect steady state.
        model.aerial_image(&mask);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| model.aerial_image(&mask))
        });
    }
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let model = LithoModel::iccad2013_like(128).unwrap();
    let mask = cross(128).map(|v| 0.8 * v + 0.1);
    let target = cross(128);
    let mut group = c.benchmark_group("litho_gradient");
    group.sample_size(10);
    group.bench_function("eq14_128", |b| b.iter(|| model.gradient(&mask, &target).unwrap()));
    let mut grad = vec![0.0f32; 128 * 128];
    group.bench_function("eq14_into_128", |b| {
        b.iter(|| model.gradient_into(&mask, &target, 1.0, &mut grad).unwrap())
    });
    group.finish();
}

fn bench_process_window(c: &mut Criterion) {
    let model = LithoModel::iccad2013_like(128).unwrap();
    let mask = cross(128);
    let mut group = c.benchmark_group("litho_process_window");
    group.sample_size(10);
    group.bench_function("pvb_doses_128", |b| b.iter(|| model.process_window(&mask)));
    group.finish();
}

criterion_group!(benches, bench_aerial, bench_gradient, bench_process_window);
criterion_main!(benches);
