//! Criterion bench B5: the end-to-end GAN-OPC flow (Fig. 6) on one clip.

use criterion::{criterion_group, criterion_main, Criterion};
use ganopc_core::{FlowConfig, GanOpcFlow};
use ganopc_geometry::synthesis::benchmark_suite;

fn bench_flow(c: &mut Criterion) {
    let mut cfg = FlowConfig::fast();
    cfg.litho_size = 128;
    cfg.net_size = 32;
    cfg.refinement.max_iterations = 10;
    let mut flow = GanOpcFlow::new(cfg).unwrap();
    let clip = &benchmark_suite(2048)[0];
    let target = clip.layout.rasterize_raster(128, 128).binarize(0.5);
    let mut group = c.benchmark_group("gan_opc_flow");
    group.sample_size(10);
    group.bench_function("fig6_128_10refine", |b| b.iter(|| flow.optimize(&target).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
