//! Criterion bench B6: steady-state hot paths of the training loop and the
//! serving path — one full Algorithm 1 step and a batched generator
//! inference pass.
//!
//! Both benches reuse one trainer/generator across iterations, so after the
//! first call they measure the persistent-buffer steady state rather than
//! first-call buffer growth.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ganopc_core::{Discriminator, GanTrainer, Generator, TrainConfig};
use ganopc_nn::init;

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(20);
    // Synthetic batch: train_step is data-agnostic, so random clips avoid
    // paying an ILT dataset synthesis in the harness.
    let targets = init::uniform(&[4, 1, 32, 32], 0.0, 1.0, 41);
    let masks = init::uniform(&[4, 1, 32, 32], 0.0, 1.0, 42);
    let mut cfg = TrainConfig::fast();
    cfg.iterations = usize::MAX / 2; // never exhausted by the harness
    cfg.batch_size = 4;
    let mut trainer =
        GanTrainer::new(Generator::new(32, 16, 11), Discriminator::new(32, 16, 12), cfg);
    group.bench_function("step_batch4_32px_base16", |b| {
        b.iter(|| black_box(trainer.train_step(&targets, &masks)))
    });
    group.finish();
}

fn bench_generator_infer(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator_infer");
    group.sample_size(20);
    for (size, batch) in [(32usize, 4usize), (64, 1)] {
        let mut g = Generator::new(size, 16, 7);
        let x = init::uniform(&[batch, 1, size, size], 0.0, 1.0, 3);
        let mut out = ganopc_nn::Tensor::zeros(&[1]);
        group.bench_function(format!("infer_{size}_batch{batch}"), |b| {
            b.iter(|| {
                g.infer_into(&x, &mut out);
                black_box(out.as_slice()[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_step, bench_generator_infer);
criterion_main!(benches);
