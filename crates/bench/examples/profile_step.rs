//! Component-level wall-clock profile of one GAN training step: the full
//! `train_step` average plus each forward/backward leg in isolation, so a
//! perf change can be attributed to a specific network pass. Complements
//! the criterion `train_bench` medians with a quick, no-harness breakdown.

use ganopc_core::{Discriminator, GanTrainer, Generator, TrainConfig};
use ganopc_nn::{init, Tensor};
use std::time::Instant;

fn main() {
    let targets = init::uniform(&[4, 1, 32, 32], 0.0, 1.0, 41);
    let masks_ref = init::uniform(&[4, 1, 32, 32], 0.0, 1.0, 42);
    let mut cfg = TrainConfig::fast();
    cfg.iterations = usize::MAX / 2;
    cfg.batch_size = 4;
    let mut trainer =
        GanTrainer::new(Generator::new(32, 16, 11), Discriminator::new(32, 16, 12), cfg);
    for _ in 0..3 {
        trainer.train_step(&targets, &masks_ref);
    }
    let t0 = Instant::now();
    for _ in 0..20 {
        trainer.train_step(&targets, &masks_ref);
    }
    println!("train_step avg: {:.3} ms", t0.elapsed().as_secs_f64() * 50.0);

    // Component timing
    let mut g = Generator::new(32, 16, 11);
    let mut d = Discriminator::new(32, 16, 12);
    let mut m = Tensor::zeros(&[1]);
    let mut p = Tensor::zeros(&[1]);
    let mut gm = Tensor::zeros(&[1]);
    g.forward_into(&targets, &mut m, true);
    d.forward_pair_into(&targets, &m, &mut p, true);
    d.backward_pair_into(&Tensor::filled(&[4, 1], 0.1), &mut gm);
    g.backward_discard(&gm);

    let reps = 40;
    let t0 = Instant::now();
    for _ in 0..reps {
        g.forward_into(&targets, &mut m, true);
    }
    println!("G fwd:  {:.3} ms", t0.elapsed().as_secs_f64() * 1000.0 / reps as f64);
    let t0 = Instant::now();
    for _ in 0..reps {
        g.backward_discard(&gm);
    }
    println!("G bwd(discard): {:.3} ms", t0.elapsed().as_secs_f64() * 1000.0 / reps as f64);
    let t0 = Instant::now();
    for _ in 0..reps {
        d.forward_pair_into(&targets, &m, &mut p, true);
    }
    println!("D fwd:  {:.3} ms", t0.elapsed().as_secs_f64() * 1000.0 / reps as f64);
    let gp = Tensor::filled(&[4, 1], 0.1);
    let t0 = Instant::now();
    for _ in 0..reps {
        d.backward_pair_into(&gp, &mut gm);
    }
    println!("D bwd(into): {:.3} ms", t0.elapsed().as_secs_f64() * 1000.0 / reps as f64);
    let t0 = Instant::now();
    for _ in 0..reps {
        d.backward_pair_discard(&gp);
    }
    println!("D bwd(discard): {:.3} ms", t0.elapsed().as_secs_f64() * 1000.0 / reps as f64);
    let t0 = Instant::now();
    for _ in 0..reps {
        g.net_mut().zero_grads();
        d.net_mut().zero_grads();
    }
    println!("zero_grads G+D: {:.3} ms", t0.elapsed().as_secs_f64() * 1000.0 / reps as f64);
}
