//! Conventional-OPC baseline shoot-out on the ten benchmark clips:
//! no OPC vs model-based OPC (with and without SRAFs) vs ILT — the
//! landscape the paper's Section 1 describes (model-based flows are fast
//! but solution-space-limited; ILT is slower but higher quality).
//!
//! ```text
//! cargo run -p ganopc-bench --release --bin baselines
//! ```

use ganopc_bench::{make_baseline, rasterized_suite, Scale};
use ganopc_litho::metrics::squared_l2_nm2;
use ganopc_litho::LithoModel;
use ganopc_mbopc::{MbOpcConfig, MbOpcEngine};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale:?}");
    let size = scale.litho_size();
    let suite = rasterized_suite(size);

    let plain_model = LithoModel::iccad2013_like(size).expect("litho model");
    let px = plain_model.pixel_nm();

    let mut mb_cfg = MbOpcConfig::standard();
    mb_cfg.insert_srafs = false;
    let mut mb = MbOpcEngine::new(LithoModel::iccad2013_like(size).expect("model"), mb_cfg);

    let mut mbs_cfg = MbOpcConfig::standard();
    mbs_cfg.insert_srafs = true;
    let mut mbs = MbOpcEngine::new(LithoModel::iccad2013_like(size).expect("model"), mbs_cfg);

    let mut ilt = make_baseline(scale);

    println!(
        "{:>4} | {:>10} | {:>10} {:>7} | {:>10} {:>7} {:>6} | {:>10} {:>7}",
        "ID", "no-OPC L2", "MB L2", "RT(s)", "MB+SRAF", "RT(s)", "bars", "ILT L2", "RT(s)"
    );
    let mut sums = [0.0f64; 4];
    for (clip, target) in &suite {
        let no_opc = squared_l2_nm2(&plain_model.print_nominal(target), target, px);

        let t0 = Instant::now();
        let mb_result = mb.optimize(&clip.layout).expect("mb-opc");
        let mb_rt = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let mbs_result = mbs.optimize(&clip.layout).expect("mb-opc+sraf");
        let mbs_rt = t1.elapsed().as_secs_f64();

        let ilt_result = ilt.optimize(target).expect("ilt");

        println!(
            "{:>4} | {:>10.0} | {:>10.0} {:>7.2} | {:>10.0} {:>7.2} {:>6} | {:>10.0} {:>7.2}",
            clip.id,
            no_opc,
            mb_result.binary_l2_nm2,
            mb_rt,
            mbs_result.binary_l2_nm2,
            mbs_rt,
            mbs_result.srafs.len(),
            ilt_result.binary_l2_nm2,
            ilt_result.runtime_s
        );
        sums[0] += no_opc;
        sums[1] += mb_result.binary_l2_nm2;
        sums[2] += mbs_result.binary_l2_nm2;
        sums[3] += ilt_result.binary_l2_nm2;
    }
    let n = suite.len() as f64;
    println!(
        "{:>4} | {:>10.0} | {:>10.0} {:>7} | {:>10.0} {:>7} {:>6} | {:>10.0} {:>7}",
        "avg",
        sums[0] / n,
        sums[1] / n,
        "",
        sums[2] / n,
        "",
        "",
        sums[3] / n,
        ""
    );
    println!();
    println!("expected ordering (paper Section 1): no-OPC > MB-OPC >= MB+SRAF > ILT on L2,");
    println!("with MB-OPC much faster than ILT.");
}
