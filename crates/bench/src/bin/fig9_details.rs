//! Regenerates **Figure 9**: wafer-image defect close-ups comparing the
//! ILT baseline and PGAN-OPC — the paper points out the baseline's smaller
//! PV band comes with bridge and line-end pull-back defects.
//!
//! ```text
//! cargo run -p ganopc-bench --release --bin fig9_details
//! ```
//!
//! Prints a per-case defect inventory (EPE / bridge / break / neck from the
//! Fig. 2 detectors) for both flows and writes defect-window crops to
//! `target/fig9/`.

use ganopc_bench::{
    build_dataset, make_baseline, make_flow, rasterized_suite, train_variant, Scale,
};
use ganopc_geometry::io::write_pgm;
use ganopc_litho::metrics::{DefectConfig, MaskMetrics};
use ganopc_litho::Field;

/// Crops a window around the first differing region between two wafers.
fn crop_first_diff(a: &Field, b: &Field, half: usize) -> Option<(Field, Field)> {
    let (h, w) = a.shape();
    for y in 0..h {
        for x in 0..w {
            if (a.get(y, x) - b.get(y, x)).abs() > 0.5 {
                let y0 = y.saturating_sub(half);
                let x0 = x.saturating_sub(half);
                let y1 = (y + half).min(h);
                let x1 = (x + half).min(w);
                let mut ca = Field::zeros(y1 - y0, x1 - x0);
                let mut cb = Field::zeros(y1 - y0, x1 - x0);
                for yy in y0..y1 {
                    for xx in x0..x1 {
                        ca.set(yy - y0, xx - x0, a.get(yy, xx));
                        cb.set(yy - y0, xx - x0, b.get(yy, xx));
                    }
                }
                return Some((ca, cb));
            }
        }
    }
    None
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale:?}");
    let dataset = build_dataset(scale, 424_242);
    eprintln!("training PGAN-OPC...");
    let pgan = train_variant(scale, &dataset, true, 1);
    let mut flow = make_flow(scale, pgan.generator);
    let mut baseline = make_baseline(scale);
    let defect_cfg = DefectConfig::default();

    let out_dir = std::path::Path::new("target/fig9");
    std::fs::create_dir_all(out_dir).expect("create output dir");

    println!(
        "{:>4} | {:^31} | {:^31}",
        "ID", "ILT (EPE brg brk nck PVB)", "PGAN-OPC (EPE brg brk nck PVB)"
    );
    for (clip, target) in &rasterized_suite(scale.litho_size()) {
        let ilt = baseline.optimize(target).expect("ilt");
        let gan = flow.optimize(target).expect("flow");
        let m_ilt = MaskMetrics::evaluate(baseline.model(), &ilt.mask, target, &defect_cfg);
        let m_gan = MaskMetrics::evaluate(flow.model(), &gan.mask, target, &defect_cfg);
        println!(
            "{:>4} | {:>4} {:>4} {:>4} {:>4} {:>8.0} | {:>4} {:>4} {:>4} {:>4} {:>8.0}",
            clip.id,
            m_ilt.epe_violations,
            m_ilt.bridges,
            m_ilt.breaks,
            m_ilt.necks,
            m_ilt.pvb_nm2,
            m_gan.epe_violations,
            m_gan.bridges,
            m_gan.breaks,
            m_gan.necks,
            m_gan.pvb_nm2
        );
        if let Some((ca, cb)) = crop_first_diff(&ilt.wafer, &gan.wafer, 16) {
            write_pgm(out_dir.join(format!("case{}_ilt.pgm", clip.id)), &ca).expect("pgm");
            write_pgm(out_dir.join(format!("case{}_pgan.pgm", clip.id)), &cb).expect("pgm");
        }
    }
    eprintln!("wrote defect-window crops to target/fig9/");
}
