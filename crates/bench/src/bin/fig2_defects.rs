//! Regenerates **Figure 2**: the defect taxonomy — the same lithography
//! contour can pass an EPE check yet fail bridge/neck checks and vice
//! versa, which is why the paper adopts squared L2 as its quality metric.
//!
//! ```text
//! cargo run -p ganopc-bench --release --bin fig2_defects
//! ```

use ganopc_litho::metrics::{
    break_count, bridge_count, epe_violations, neck_count, squared_l2_nm2, DefectConfig,
};
use ganopc_litho::Field;

fn field_from(rows: &[&str]) -> Field {
    let h = rows.len();
    let w = rows[0].len();
    let mut f = Field::zeros(h, w);
    for (y, row) in rows.iter().enumerate() {
        for (x, ch) in row.chars().enumerate() {
            if ch == '#' {
                f.set(y, x, 1.0);
            }
        }
    }
    f
}

fn report(name: &str, wafer: &Field, target: &Field, cfg: &DefectConfig) {
    let (epe_v, epe_m) = epe_violations(wafer, target, 1.0, cfg);
    println!(
        "{name:<26} L2 {:>5.0}   EPE {epe_v}/{epe_m}   bridges {}   breaks {}   necks {}",
        squared_l2_nm2(wafer, target, 1.0),
        bridge_count(wafer, target),
        break_count(wafer, target),
        neck_count(wafer, target, cfg),
    );
}

fn main() {
    let cfg = DefectConfig { epe_tolerance_nm: 2.0, epe_sample_step_nm: 2.0, ..Default::default() };
    println!("Fig. 2 reproduction: per-detector response on crafted contours");
    println!("(1 px == 1 nm here; EPE tolerance 2 nm)\n");

    let target = field_from(&[
        "....................",
        "..########..######..",
        "..########..######..",
        "..########..######..",
        "..########..######..",
        "....................",
    ]);
    report("perfect print", &target, &target, &cfg);

    // Bridge with small EPE: wires connect through a thin filament while
    // edges stay nearly in place.
    let bridged = field_from(&[
        "....................",
        "..########..######..",
        "..########..######..",
        "..################..",
        "..########..######..",
        "....................",
    ]);
    report("bridged (small EPE)", &bridged, &target, &cfg);

    // Neck: the first wire thins in the middle but its measured edges at
    // the EPE control rows barely move.
    let necked = field_from(&[
        "....................",
        "..########..######..",
        "....####....######..",
        "....####....######..",
        "..########..######..",
        "....................",
    ]);
    report("necked", &necked, &target, &cfg);

    // EPE violation with intact topology: whole pattern shifted.
    let shifted = field_from(&[
        "....................",
        "....########..######",
        "....########..######",
        "....########..######",
        "....########..######",
        "....................",
    ]);
    report("shifted (pure EPE)", &shifted, &target, &cfg);

    // Break: wire splits — catastrophic even if most edges are fine.
    let broken = field_from(&[
        "....................",
        "..###..###..######..",
        "..###..###..######..",
        "..###..###..######..",
        "..###..###..######..",
        "....................",
    ]);
    report("broken wire", &broken, &target, &cfg);

    println!();
    println!("takeaway (paper Section 2): no single detector covers all failure");
    println!("modes; squared L2 responds to every one of them, so GAN-OPC uses");
    println!("it as the optimization metric.");
}
