//! Regenerates **Figure 7**: training curves (L2 loss between generator
//! output and ground-truth masks) for GAN-OPC vs PGAN-OPC.
//!
//! ```text
//! cargo run -p ganopc-bench --release --bin fig7_curves
//! ```
//!
//! Emits CSV (`step,ganopc_l2,pganopc_l2`) to stdout and
//! `target/fig7_curves.csv`, plus the pre-training litho-error curve to
//! `target/fig7_pretrain.csv`. The paper's qualitative claim to verify:
//! the PGAN-OPC curve is smoother and converges to a lower loss.

use ganopc_bench::{build_dataset, train_variant, Scale};
use ganopc_geometry::io::write_atomic;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale:?}");
    let dataset = build_dataset(scale, 424_242);

    eprintln!("training GAN-OPC (random init)...");
    let gan = train_variant(scale, &dataset, false, 1);
    eprintln!("training PGAN-OPC (ILT-guided pre-training)...");
    let pgan = train_variant(scale, &dataset, true, 1);

    let steps = gan.l2_curve.len().min(pgan.l2_curve.len());
    let mut csv = String::from("step,ganopc_l2,pganopc_l2\n");
    for i in 0..steps {
        csv.push_str(&format!("{},{:.6},{:.6}\n", i + 1, gan.l2_curve[i], pgan.l2_curve[i]));
    }
    print!("{csv}");
    std::fs::create_dir_all("target").ok();
    write_atomic("target/fig7_curves.csv", csv.as_bytes()).expect("write csv");

    let mut pre = String::from("step,litho_error\n");
    for (i, e) in pgan.pretrain_curve.iter().enumerate() {
        pre.push_str(&format!("{},{:.4}\n", i + 1, e));
    }
    write_atomic("target/fig7_pretrain.csv", pre.as_bytes()).expect("write pretrain csv");

    // Convergence summary (the Fig. 7 takeaway).
    let tail = steps / 5;
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let var = |v: &[f64]| {
        let m = avg(v);
        v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
    };
    let head = 10.min(steps);
    eprintln!();
    eprintln!(
        "initial L2 loss (first {head} steps):  GAN-OPC {:.5}  PGAN-OPC {:.5}",
        avg(&gan.l2_curve[..head]),
        avg(&pgan.l2_curve[..head])
    );
    eprintln!(
        "final L2 loss (last 20% of steps):  GAN-OPC {:.5}  PGAN-OPC {:.5}",
        avg(&gan.l2_curve[steps - tail..steps]),
        avg(&pgan.l2_curve[steps - tail..steps])
    );
    eprintln!(
        "whole-curve variance (stability):   GAN-OPC {:.6}  PGAN-OPC {:.6}",
        var(&gan.l2_curve[..steps]),
        var(&pgan.l2_curve[..steps])
    );
    eprintln!("paper claim (Fig. 7): PGAN-OPC trains more stably and converges lower;");
    eprintln!("here pre-training also starts the curve far lower.");
}
