//! Ablation studies on the design choices DESIGN.md §4 calls out:
//!
//! 1. **pair vs mask-only discriminator** (Section 3.2 / Eq. (6)): the
//!    mask-only GAN cannot enforce a one-one target→mask mapping, so its
//!    mask L2 stays high;
//! 2. **α, the L2-term weight** in the generator loss (Eq. (9));
//! 3. **pre-training budget** (Algorithm 2) vs final training loss;
//! 4. **SOCS kernel count N_h** (Eq. (2), paper picks 24): accuracy vs
//!    runtime of the litho model.
//!
//! ```text
//! cargo run -p ganopc-bench --release --bin ablations
//! ```

use ganopc_bench::{build_dataset, pretrain_model, Scale};
use ganopc_core::pretrain::{pretrain_generator, PretrainConfig};
use ganopc_core::{Discriminator, GanTrainer, Generator, TrainConfig};
use ganopc_litho::metrics::squared_l2_nm2;
use ganopc_litho::{Field, LithoModel, OpticalConfig};
use ganopc_nn::loss::bce_scalar_label;
use ganopc_nn::optim::Sgd;
use std::time::Instant;

fn tail_mean(v: &[f64]) -> f64 {
    let n = (v.len() / 5).max(1);
    v[v.len() - n..].iter().sum::<f64>() / n as f64
}

/// Measures whether a generator learned a one-one target→mask *mapping*:
/// compares its masks against the matched references and against a shuffled
/// (wrong) assignment. A true mapping scores matched ≪ shuffled; a
/// distribution-only generator scores them alike (the Eq. (6) failure mode).
fn mapping_gap(generator: &mut Generator, dataset: &ganopc_core::OpcDataset) -> (f64, f64) {
    let n = dataset.len();
    let mut matched = 0.0f64;
    let mut shuffled = 0.0f64;
    for i in 0..n {
        let (t, _) = dataset.batch(&[i]);
        let m = generator.forward(&t, false);
        let own = dataset.masks()[i].as_slice();
        let other = dataset.masks()[(i + n / 2).max(i + 1) % n].as_slice();
        let d = |reference: &[f32]| -> f64 {
            m.as_slice().iter().zip(reference).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum::<f64>()
                / m.len() as f64
        };
        matched += d(own);
        shuffled += d(other);
    }
    (matched / n as f64, shuffled / n as f64)
}

/// Ablation 1: mask-only discriminator (conventional GAN objective,
/// Eq. (4)–(6)) vs the pair discriminator of Eq. (7)–(8).
fn ablate_discriminator(scale: Scale) {
    println!("== ablation 1: pair vs mask-only discriminator ==");
    let dataset = build_dataset(scale, 424_242);
    let iters = scale.gan_iters();
    let net = scale.net_size();

    // Pair variant (the paper's design) — reuse the standard trainer.
    let mut tcfg = TrainConfig::paper_scaled();
    tcfg.iterations = iters;
    tcfg.batch_size = 4;
    let mut trainer =
        GanTrainer::new(Generator::new(net, 8, 1), Discriminator::new(net, 8, 2), tcfg);
    let pair_stats = trainer.train(&dataset);
    let pair_l2: Vec<f64> = pair_stats.iter().map(|s| s.l2_loss).collect();
    let (mut pair_gen, _) = trainer.into_networks();
    let (pair_matched, pair_shuffled) = mapping_gap(&mut pair_gen, &dataset);

    // Mask-only variant: same loop but adversarial gradient comes from a
    // mask-only discriminator and — crucially — no L2 anchor (the pure
    // Eq. (4)/(5) objective the paper argues is insufficient).
    let mut g = Generator::new(net, 8, 1);
    let mut d = Discriminator::mask_only(net, 8, 2);
    let mut opt_g = Sgd::new(0.02, 0.5);
    let mut opt_d = Sgd::new(0.01, 0.5);
    let mut mask_only_l2 = Vec::with_capacity(iters);
    let mut order = dataset.epoch_order(7);
    let mut cursor = 0usize;
    let mut epoch = 0u64;
    for _ in 0..iters {
        let mut idx = Vec::with_capacity(4);
        while idx.len() < 4 {
            if cursor == order.len() {
                epoch += 1;
                order = dataset.epoch_order(7 + epoch);
                cursor = 0;
            }
            idx.push(order[cursor]);
            cursor += 1;
        }
        let (targets, refs) = dataset.batch(&idx);
        // G update via D only.
        let masks = g.forward(&targets, true);
        let p = d.forward_mask(&masks, true);
        let (_, gp) = bce_scalar_label(&p, 1.0);
        d.zero_grads();
        let gm = d.backward_mask(&gp);
        g.zero_grads();
        g.backward(&gm.scale(1.0 / 4.0));
        opt_g.step(g.net_mut());
        d.zero_grads();
        // D update.
        let pr = d.forward_mask(&refs, true);
        let (_, gr) = bce_scalar_label(&pr, 1.0);
        d.backward_mask(&gr.scale(1.0 / 4.0));
        let pf = d.forward_mask(&masks, true);
        let (_, gf) = bce_scalar_label(&pf, 0.0);
        d.backward_mask(&gf.scale(1.0 / 4.0));
        opt_d.step(d.net_mut());
        d.zero_grads();
        // Track the *mapping* quality: per-pixel L2 vs the matched reference.
        let diff: f64 = masks
            .as_slice()
            .iter()
            .zip(refs.as_slice())
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / masks.len() as f64;
        mask_only_l2.push(diff);
    }

    let (mo_matched, mo_shuffled) = mapping_gap(&mut g, &dataset);

    println!("  final mask L2 vs matched references (last 20%):");
    println!("    pair discriminator + L2 : {:.5}", tail_mean(&pair_l2));
    println!("    mask-only, no L2 anchor : {:.5}", tail_mean(&mask_only_l2));
    println!("  one-one mapping test (matched / shuffled reference L2):");
    println!(
        "    pair      : {pair_matched:.5} / {pair_shuffled:.5}  (gap x{:.2})",
        pair_shuffled / pair_matched.max(1e-12)
    );
    println!(
        "    mask-only : {mo_matched:.5} / {mo_shuffled:.5}  (gap x{:.2})",
        mo_shuffled / mo_matched.max(1e-12)
    );
    println!("  expectation (Section 3.2): the pair variant separates matched from");
    println!("  shuffled references much more strongly — it learned a mapping, not");
    println!("  just a mask distribution.\n");
}

/// Ablation 2: sweep the L2 weight α (Eq. (9) necessity).
fn ablate_alpha(scale: Scale) {
    println!("== ablation 2: generator L2 weight α ==");
    let dataset = build_dataset(scale, 424_242);
    for alpha in [0.0f32, 0.25, 1.0, 4.0] {
        let mut tcfg = TrainConfig::paper_scaled();
        tcfg.iterations = scale.gan_iters() / 2;
        tcfg.batch_size = 4;
        tcfg.alpha = alpha;
        let mut trainer = GanTrainer::new(
            Generator::new(scale.net_size(), 8, 1),
            Discriminator::new(scale.net_size(), 8, 2),
            tcfg,
        );
        let stats = trainer.train(&dataset);
        let l2: Vec<f64> = stats.iter().map(|s| s.l2_loss).collect();
        println!("  alpha {alpha:>5.2}: final mask L2 {:.5}", tail_mean(&l2));
    }
    println!("  expectation (Eq. (9)): larger alpha anchors the generator to the");
    println!("  references and lowers the regression loss.\n");
}

/// Ablation 3: pre-training budget vs adversarial training outcome, judged
/// on held-out clips by both mask regression and *lithography* error (the
/// quantity pre-training actually optimizes).
fn ablate_pretraining(scale: Scale) {
    println!("== ablation 3: ILT-guided pre-training budget ==");
    let dataset = build_dataset(scale, 424_242);
    let (train, val) = ganopc_core::validate::split_dataset(&dataset, 0.25, 99).expect("split");
    let model = pretrain_model(scale);
    for pre_iters in [0usize, scale.pretrain_iters() / 2, scale.pretrain_iters()] {
        let mut g = Generator::new(scale.net_size(), 8, 1);
        if pre_iters > 0 {
            let mut pcfg = PretrainConfig::paper_scaled();
            pcfg.iterations = pre_iters;
            pcfg.batch_size = 4;
            pretrain_generator(&mut g, &model, &train, &pcfg).expect("pretrain");
        }
        let mut tcfg = TrainConfig::paper_scaled();
        tcfg.iterations = scale.gan_iters() / 2;
        tcfg.batch_size = 4;
        let mut trainer = GanTrainer::new(g, Discriminator::new(scale.net_size(), 8, 2), tcfg);
        let stats = trainer.train(&train);
        let l2: Vec<f64> = stats.iter().map(|s| s.l2_loss).collect();
        let (mut g, _) = trainer.into_networks();
        let report = ganopc_core::validate::evaluate_generator(&mut g, &model, &val).expect("eval");
        println!(
            "  pretrain {pre_iters:>4} iters: train mask L2 {:.5}, held-out mask L2 {:.5}, held-out litho error {:.1}",
            tail_mean(&l2),
            report.mask_l2,
            report.litho_error
        );
    }
    println!("  expectation (Fig. 7 / Section 3.4): pre-training lowers the held-out");
    println!("  lithography error even where mask regression looks similar.\n");
}

/// Ablation 4: SOCS kernel count N_h (Eq. (2)).
fn ablate_kernel_count(scale: Scale) {
    println!("== ablation 4: SOCS kernel count N_h ==");
    let size = scale.litho_size();
    // Reference wafer from the full 24-kernel stack.
    let reference_model = LithoModel::iccad2013_like(size).expect("model");
    let suite = ganopc_bench::rasterized_suite(size);
    let (_, target) = &suite[0];
    let reference = reference_model.print_nominal(target);
    let px = reference_model.pixel_nm();
    for n_h in [2usize, 6, 12, 24] {
        let mut cfg = OpticalConfig::default_32nm(2048.0 / size as f64);
        cfg.num_kernels = n_h;
        let model = LithoModel::new(cfg, size, size).expect("model");
        let t0 = Instant::now();
        let wafer: Field = model.print_nominal(target);
        let dt = t0.elapsed().as_secs_f64();
        let dev = squared_l2_nm2(&wafer, &reference, px);
        println!(
            "  N_h {n_h:>2}: aerial+resist {dt:>6.3}s, wafer deviation from N_h=24: {dev:>10.0} nm²"
        );
    }
    println!("  expectation: deviation shrinks with N_h while runtime grows ~linearly\n");
}

/// Ablation 5: heavy-ball momentum in the ILT solver.
fn ablate_ilt_momentum(scale: Scale) {
    use ganopc_ilt::{IltConfig, IltEngine};
    println!("== ablation 5: ILT heavy-ball momentum ==");
    let size = scale.litho_size();
    let suite = ganopc_bench::rasterized_suite(size);
    for mu in [0.0f32, 0.3, 0.5, 0.7] {
        let mut total_l2 = 0.0;
        let mut total_iters = 0usize;
        for (_, target) in suite.iter().take(3) {
            let mut cfg = IltConfig::mosaic();
            cfg.momentum = mu;
            cfg.max_iterations = scale.ilt_iters();
            let mut engine =
                IltEngine::new(LithoModel::iccad2013_like_cached(size).expect("model"), cfg);
            let r = engine.optimize(target).expect("ilt");
            total_l2 += r.binary_l2_nm2;
            total_iters += r.iterations;
        }
        println!(
            "  momentum {mu:>3.1}: mean L2 {:>8.0} nm², mean iterations {:>5.1}",
            total_l2 / 3.0,
            total_iters as f64 / 3.0
        );
    }
    println!("  expectation: momentum reaches lower error in the same budget\n");
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale:?}\n");
    ablate_discriminator(scale);
    ablate_alpha(scale);
    ablate_pretraining(scale);
    ablate_kernel_count(scale);
    ablate_ilt_momentum(scale);
}
