//! Regenerates **Table 2**: ILT \[7\] vs GAN-OPC vs PGAN-OPC on the ten
//! benchmark clips (squared L2, PVB, runtime).
//!
//! ```text
//! cargo run -p ganopc-bench --release --bin table2            # quick scale
//! GANOPC_SCALE=paper cargo run -p ganopc-bench --release --bin table2
//! ```
//!
//! Absolute numbers differ from the paper (different litho kernels,
//! regenerated clips, CPU instead of a Titan X); the *shape* to check is
//! the ratio row: GAN flows ≈ or < 1.0 in L2/PVB and well below 1.0 in
//! runtime against the ILT baseline.

use ganopc_bench::{
    build_dataset, format_row, make_baseline, make_flow, mean_measurement, measure_baseline,
    measure_flow, rasterized_suite, train_variant, FlowMeasurement, Scale, PAPER_TABLE2,
};

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale:?} (set GANOPC_SCALE=paper for the larger run)");

    eprintln!("[1/3] building training dataset ({} instances)...", scale.dataset_count());
    let dataset = build_dataset(scale, 424_242);

    eprintln!("[2/3] training GAN-OPC (no pre-training) and PGAN-OPC...");
    let gan = train_variant(scale, &dataset, false, 1);
    let pgan = train_variant(scale, &dataset, true, 1);
    let mut gan_flow = make_flow(scale, gan.generator);
    let mut pgan_flow = make_flow(scale, pgan.generator);
    let mut baseline = make_baseline(scale);

    eprintln!("[3/3] optimizing the ten benchmark clips with three flows...");
    let suite = rasterized_suite(scale.litho_size());
    let mut ilt_col = Vec::new();
    let mut gan_col = Vec::new();
    let mut pgan_col = Vec::new();

    println!(
        "{:>4} {:>9} | {:^27} | {:^27} | {:^27}",
        "ID", "Area", "ILT (baseline)", "GAN-OPC", "PGAN-OPC"
    );
    println!(
        "{:>4} {:>9} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
        "", "nm^2", "L2", "PVB", "RT(s)", "L2", "PVB", "RT(s)", "L2", "PVB", "RT(s)"
    );
    for (clip, target) in &suite {
        let ilt = measure_baseline(&mut baseline, target);
        let gan_m = measure_flow(&mut gan_flow, target);
        let pgan_m = measure_flow(&mut pgan_flow, target);
        println!(
            "{}",
            format_row(&clip.id.to_string(), clip.layout.pattern_area(), &[ilt, gan_m, pgan_m])
        );
        ilt_col.push(ilt);
        gan_col.push(gan_m);
        pgan_col.push(pgan_m);
    }

    let ilt_avg = mean_measurement(&ilt_col);
    let gan_avg = mean_measurement(&gan_col);
    let pgan_avg = mean_measurement(&pgan_col);
    println!("{}", format_row("avg", 0, &[ilt_avg, gan_avg, pgan_avg]));
    let ratio = |m: &FlowMeasurement| {
        format!(
            " | {:>9.3} {:>9.3} {:>7.3}",
            m.l2_nm2 / ilt_avg.l2_nm2,
            m.pvb_nm2 / ilt_avg.pvb_nm2,
            m.runtime_s / ilt_avg.runtime_s
        )
    };
    println!("{:>4} {:>9}{}{}{}", "rat", "", ratio(&ilt_avg), ratio(&gan_avg), ratio(&pgan_avg));

    // Paper reference ratios for comparison.
    let n = PAPER_TABLE2.len() as f64;
    let p_ilt: f64 = PAPER_TABLE2.iter().map(|r| r.2[0]).sum::<f64>() / n;
    let p_gan: f64 = PAPER_TABLE2.iter().map(|r| r.3[0]).sum::<f64>() / n;
    let p_pgan: f64 = PAPER_TABLE2.iter().map(|r| r.4[0]).sum::<f64>() / n;
    let p_ilt_rt: f64 = PAPER_TABLE2.iter().map(|r| r.2[2]).sum::<f64>() / n;
    let p_gan_rt: f64 = PAPER_TABLE2.iter().map(|r| r.3[2]).sum::<f64>() / n;
    let p_pgan_rt: f64 = PAPER_TABLE2.iter().map(|r| r.4[2]).sum::<f64>() / n;
    println!();
    println!("paper reference ratios (L2 / RT vs ILT):");
    println!("  GAN-OPC : {:.3} / {:.3}", p_gan / p_ilt, p_gan_rt / p_ilt_rt);
    println!("  PGAN-OPC: {:.3} / {:.3}", p_pgan / p_ilt, p_pgan_rt / p_ilt_rt);
}
