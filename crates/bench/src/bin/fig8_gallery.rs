//! Regenerates **Figure 8**: for each of the ten benchmark clips, a PGM
//! strip with rows (a) ILT mask, (b) PGAN-OPC mask, (c) ILT wafer,
//! (d) PGAN-OPC wafer, (e) target — matching the paper's row layout.
//!
//! ```text
//! cargo run -p ganopc-bench --release --bin fig8_gallery
//! ```
//!
//! Images land in `target/fig8/case<N>.pgm` plus a combined
//! `target/fig8/gallery.pgm`.

use ganopc_bench::{
    build_dataset, make_baseline, make_flow, rasterized_suite, train_variant, Scale,
};
use ganopc_geometry::io::{hstack, vstack, write_pgm};
use ganopc_geometry::raster::Raster;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale:?}");
    let dataset = build_dataset(scale, 424_242);
    eprintln!("training PGAN-OPC...");
    let pgan = train_variant(scale, &dataset, true, 1);
    let mut flow = make_flow(scale, pgan.generator);
    let mut baseline = make_baseline(scale);

    let out_dir = std::path::Path::new("target/fig8");
    std::fs::create_dir_all(out_dir).expect("create output dir");

    let suite = rasterized_suite(scale.litho_size());
    let mut columns: Vec<Raster> = Vec::new();
    for (clip, target) in &suite {
        eprintln!("case {}...", clip.id);
        let ilt = baseline.optimize(target).expect("ilt");
        let gan = flow.optimize(target).expect("flow");
        // Rows (a)-(e) as in the paper.
        let strip = vstack(&[&ilt.mask, &gan.mask, &ilt.wafer, &gan.wafer, target]);
        write_pgm(out_dir.join(format!("case{}.pgm", clip.id)), &strip).expect("write pgm");
        columns.push(strip);
    }
    let refs: Vec<&Raster> = columns.iter().collect();
    write_pgm(out_dir.join("gallery.pgm"), &hstack(&refs)).expect("write gallery");
    eprintln!("wrote target/fig8/case*.pgm and target/fig8/gallery.pgm");
    eprintln!("rows top-to-bottom: ILT mask, PGAN mask, ILT wafer, PGAN wafer, target");
}
