//! Shared harness for regenerating every table and figure of the GAN-OPC
//! paper (see DESIGN.md §4 for the experiment index).
//!
//! The binaries in `src/bin/` are thin wrappers around this module:
//!
//! | binary         | paper artifact |
//! |----------------|----------------|
//! | `table2`       | Table 2 (ILT vs GAN-OPC vs PGAN-OPC) |
//! | `fig2_defects` | Fig. 2 defect taxonomy |
//! | `fig7_curves`  | Fig. 7 training curves |
//! | `fig8_gallery` | Fig. 8 mask/wafer gallery |
//! | `fig9_details` | Fig. 9 defect close-ups |
//! | `ablations`    | design-choice ablations (DESIGN.md §4) |
//!
//! Scale is controlled by the `GANOPC_SCALE` environment variable:
//! `quick` (default — minutes on a laptop) or `paper` (closer to the
//! paper's resolutions; hours).

use ganopc_core::pretrain::{pretrain_generator, PretrainConfig};
use ganopc_core::{
    Discriminator, FlowConfig, GanOpcFlow, GanTrainer, Generator, OpcDataset, StepStats,
    TrainConfig,
};
use ganopc_geometry::synthesis::{benchmark_suite, BenchmarkClip};
use ganopc_ilt::{IltConfig, IltEngine};
use ganopc_litho::{Field, LithoModel, OpticalConfig};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes on a laptop; resolutions halved again from `Paper`.
    Quick,
    /// The scaled-reproduction setting documented in EXPERIMENTS.md.
    Paper,
}

impl Scale {
    /// Reads `GANOPC_SCALE` (`quick`/`paper`), defaulting to `Quick`.
    pub fn from_env() -> Scale {
        match std::env::var("GANOPC_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Network resolution.
    pub fn net_size(self) -> usize {
        match self {
            Scale::Quick => 64,
            Scale::Paper => 64,
        }
    }

    /// Lithography evaluation resolution.
    pub fn litho_size(self) -> usize {
        match self {
            Scale::Quick => 128,
            Scale::Paper => 256,
        }
    }

    /// Training library size (paper: 4000).
    pub fn dataset_count(self) -> usize {
        match self {
            Scale::Quick => 40,
            Scale::Paper => 200,
        }
    }

    /// Algorithm 2 iterations.
    pub fn pretrain_iters(self) -> usize {
        match self {
            Scale::Quick => 100,
            Scale::Paper => 200,
        }
    }

    /// Algorithm 1 iterations.
    pub fn gan_iters(self) -> usize {
        match self {
            Scale::Quick => 300,
            Scale::Paper => 500,
        }
    }

    /// Baseline (full) ILT iteration budget.
    pub fn ilt_iters(self) -> usize {
        match self {
            Scale::Quick => 150,
            Scale::Paper => 320,
        }
    }
}

/// One paper Table 2 row: `(ID, area, [L2, PVB, RT])` for ILT [7], GAN-OPC
/// and PGAN-OPC respectively.
pub type PaperTable2Row = (usize, i64, [f64; 3], [f64; 3], [f64; 3]);

/// Paper Table 2 rows — used to print the reference alongside our
/// measurements.
pub const PAPER_TABLE2: [PaperTable2Row; 10] = [
    (1, 215_344, [49893.0, 65534.0, 1280.0], [54970.0, 64163.0, 380.0], [52570.0, 56267.0, 358.0]),
    (2, 169_280, [50369.0, 48230.0, 381.0], [46445.0, 56731.0, 374.0], [42253.0, 50822.0, 368.0]),
    (3, 213_504, [81007.0, 108608.0, 1123.0], [88899.0, 84308.0, 379.0], [83663.0, 94498.0, 368.0]),
    (4, 82_560, [20044.0, 28285.0, 1271.0], [18290.0, 29245.0, 376.0], [19965.0, 28957.0, 377.0]),
    (5, 281_958, [44656.0, 58835.0, 1120.0], [42835.0, 59727.0, 378.0], [44733.0, 59328.0, 369.0]),
    (6, 286_234, [57375.0, 48739.0, 391.0], [44313.0, 52627.0, 367.0], [46062.0, 52845.0, 364.0]),
    (7, 229_149, [37221.0, 43490.0, 406.0], [24481.0, 47652.0, 377.0], [26438.0, 47981.0, 377.0]),
    (8, 128_544, [19782.0, 22846.0, 388.0], [17399.0, 23769.0, 394.0], [17690.0, 23564.0, 383.0]),
    (9, 317_581, [55399.0, 66331.0, 1138.0], [53637.0, 66766.0, 427.0], [56125.0, 65417.0, 383.0]),
    (10, 102_400, [24381.0, 18097.0, 387.0], [9677.0, 20693.0, 395.0], [9990.0, 19893.0, 366.0]),
];

/// The ten regenerated benchmark clips rasterized at lithography
/// resolution.
pub fn rasterized_suite(litho_size: usize) -> Vec<(BenchmarkClip, Field)> {
    benchmark_suite(2048)
        .into_iter()
        .map(|clip| {
            let raster = clip.layout.rasterize_raster(litho_size, litho_size).binarize(0.5);
            (clip, raster)
        })
        .collect()
}

/// Builds the training dataset used by every training-based experiment.
///
/// # Panics
///
/// Panics on lithography/ILT failures (experiment binaries are allowed to
/// abort loudly).
pub fn build_dataset(scale: Scale, seed: u64) -> OpcDataset {
    let mut reference = IltConfig::refinement();
    reference.max_iterations = match scale {
        Scale::Quick => 50,
        Scale::Paper => 120,
    };
    OpcDataset::synthesize(scale.net_size(), scale.dataset_count(), reference, seed)
        // PANIC: documented above — the figure harness aborts on setup failure.
        .expect("dataset synthesis failed")
}

/// A litho model at network resolution for Algorithm 2.
///
/// # Panics
///
/// Panics on construction failure.
pub fn pretrain_model(scale: Scale) -> LithoModel {
    let mut cfg = OpticalConfig::default_32nm(2048.0 / scale.net_size() as f64);
    cfg.num_kernels = 12;
    // PANIC: documented above — the figure harness aborts on setup failure.
    LithoModel::new_cached(cfg, scale.net_size(), scale.net_size()).expect("litho model")
}

/// Outcome of training one generator variant.
pub struct TrainedVariant {
    /// The trained generator.
    pub generator: Generator,
    /// Fig. 7 curve: mean per-pixel L2 between generated and reference
    /// masks per training step.
    pub l2_curve: Vec<f64>,
    /// Pre-training litho-error curve (empty for the unpretrained variant).
    pub pretrain_curve: Vec<f64>,
}

/// Trains a GAN-OPC generator, optionally with ILT-guided pre-training
/// (Algorithm 2) — `pretrained = false` reproduces "GAN-OPC",
/// `true` reproduces "PGAN-OPC" (paper Section 4 terminology).
///
/// # Panics
///
/// Panics on any training failure.
pub fn train_variant(
    scale: Scale,
    dataset: &OpcDataset,
    pretrained: bool,
    seed: u64,
) -> TrainedVariant {
    let net = scale.net_size();
    let mut generator = Generator::new(net, 8, seed);
    let mut pretrain_curve = Vec::new();
    if pretrained {
        let model = pretrain_model(scale);
        let mut pcfg = PretrainConfig::paper_scaled();
        pcfg.iterations = scale.pretrain_iters();
        pcfg.batch_size = 4;
        pcfg.seed = seed ^ 0xABCD;
        let stats = pretrain_generator(&mut generator, &model, dataset, &pcfg)
            // PANIC: documented on train_variant — the harness aborts on failure.
            .expect("pre-training failed");
        pretrain_curve = stats.iter().map(|s| s.litho_error).collect();
    }
    let discriminator = Discriminator::new(net, 8, seed ^ 0x5555);
    let mut tcfg = TrainConfig::paper_scaled();
    tcfg.iterations = scale.gan_iters();
    tcfg.batch_size = 4;
    tcfg.alpha = 2.0;
    tcfg.seed = seed ^ 0x1111;
    let mut trainer = GanTrainer::new(generator, discriminator, tcfg);
    let stats: Vec<StepStats> = trainer.train(dataset);
    let (generator, _) = trainer.into_networks();
    TrainedVariant {
        generator,
        l2_curve: stats.iter().map(|s| s.l2_loss).collect(),
        pretrain_curve,
    }
}

/// Per-flow measurement of one benchmark clip (one cell group of Table 2).
#[derive(Debug, Clone, Copy)]
pub struct FlowMeasurement {
    /// Squared L2 at nominal dose, nm².
    pub l2_nm2: f64,
    /// PV band area, nm².
    pub pvb_nm2: f64,
    /// Runtime, seconds.
    pub runtime_s: f64,
}

/// Builds the full-strength ILT baseline engine at evaluation resolution.
///
/// # Panics
///
/// Panics on lithography construction failure.
pub fn make_baseline(scale: Scale) -> IltEngine {
    let mut cfg = IltConfig::mosaic();
    cfg.max_iterations = scale.ilt_iters();
    // PANIC: documented above — the figure harness aborts on setup failure.
    let model = LithoModel::iccad2013_like_cached(scale.litho_size()).expect("litho model");
    IltEngine::new(model, cfg)
}

/// Runs the ILT baseline on one clip.
///
/// # Panics
///
/// Panics on optimization failure.
pub fn measure_baseline(engine: &mut IltEngine, target: &Field) -> FlowMeasurement {
    // PANIC: documented above — the figure harness aborts on failure.
    let result = engine.optimize(target).expect("ilt baseline failed");
    let px = engine.model().pixel_nm();
    let [inner, _, outer] = engine.model().process_window(&result.mask);
    FlowMeasurement {
        l2_nm2: result.binary_l2_nm2,
        pvb_nm2: ganopc_litho::metrics::pvb_nm2(&inner, &outer, px),
        runtime_s: result.runtime_s,
    }
}

/// Wraps a trained generator into an evaluation-resolution GAN-OPC flow.
///
/// # Panics
///
/// Panics on construction failure.
pub fn make_flow(scale: Scale, generator: Generator) -> GanOpcFlow {
    let mut cfg = FlowConfig::paper_scaled();
    cfg.net_size = scale.net_size();
    cfg.litho_size = scale.litho_size();
    cfg.base_channels = 8;
    cfg.refinement = IltConfig::refinement();
    // Run the refinement to genuine convergence: the GAN flow's runtime
    // advantage must come from a better starting point, not a lower cap.
    cfg.refinement.max_iterations = 200;
    // Same convergence rule as the ILT baseline (IltConfig::mosaic), so the
    // runtime advantage comes purely from the warmer starting point.
    cfg.refinement.tolerance = 1e-4;
    cfg.refinement.patience = 12;
    // PANIC: documented on make_flow — the harness aborts on setup failure.
    GanOpcFlow::with_generator(cfg, generator).expect("flow construction")
}

/// Runs a GAN-OPC flow on one clip.
///
/// # Panics
///
/// Panics on flow failure.
pub fn measure_flow(flow: &mut GanOpcFlow, target: &Field) -> FlowMeasurement {
    // PANIC: documented above — the figure harness aborts on failure.
    let result = flow.optimize(target).expect("flow failed");
    FlowMeasurement {
        l2_nm2: result.l2_nm2,
        pvb_nm2: result.metrics.pvb_nm2,
        runtime_s: result.total_runtime_s,
    }
}

/// Column-aligned Table 2 row formatting.
pub fn format_row(id: &str, area: i64, cells: &[FlowMeasurement]) -> String {
    let mut s = format!("{id:>4} {area:>9}");
    for c in cells {
        s.push_str(&format!(" | {:>9.0} {:>9.0} {:>7.2}", c.l2_nm2, c.pvb_nm2, c.runtime_s));
    }
    s
}

/// Mean over a column of measurements.
pub fn mean_measurement(cells: &[FlowMeasurement]) -> FlowMeasurement {
    let n = cells.len().max(1) as f64;
    FlowMeasurement {
        l2_nm2: cells.iter().map(|c| c.l2_nm2).sum::<f64>() / n,
        pvb_nm2: cells.iter().map(|c| c.pvb_nm2).sum::<f64>() / n,
        runtime_s: cells.iter().map(|c| c.runtime_s).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_accessors_are_consistent() {
        for scale in [Scale::Quick, Scale::Paper] {
            assert!(scale.litho_size() % scale.net_size() == 0);
            assert!(scale.dataset_count() > 0);
        }
    }

    #[test]
    fn paper_table2_averages_match_paper() {
        // The paper reports averages 44012.7 / 50899.5 / 788.5 for ILT.
        let n = PAPER_TABLE2.len() as f64;
        let avg_l2: f64 = PAPER_TABLE2.iter().map(|r| r.2[0]).sum::<f64>() / n;
        let avg_pvb: f64 = PAPER_TABLE2.iter().map(|r| r.2[1]).sum::<f64>() / n;
        let avg_rt: f64 = PAPER_TABLE2.iter().map(|r| r.2[2]).sum::<f64>() / n;
        assert!((avg_l2 - 44012.7).abs() < 0.5);
        assert!((avg_pvb - 50899.5).abs() < 0.5);
        assert!((avg_rt - 788.5).abs() < 0.5);
        // And PGAN-OPC ratios 0.908 / 0.981 / 0.471.
        let pgan_l2: f64 = PAPER_TABLE2.iter().map(|r| r.4[0]).sum::<f64>() / n;
        assert!((pgan_l2 / avg_l2 - 0.908).abs() < 0.002);
        let pgan_rt: f64 = PAPER_TABLE2.iter().map(|r| r.4[2]).sum::<f64>() / n;
        assert!((pgan_rt / avg_rt - 0.471).abs() < 0.002);
    }

    #[test]
    fn suite_has_ten_rasterized_clips() {
        let suite = rasterized_suite(64);
        assert_eq!(suite.len(), 10);
        for (clip, raster) in &suite {
            assert_eq!(raster.shape(), (64, 64));
            assert!(raster.sum() > 0.0, "case {} rasterized empty", clip.id);
        }
    }

    #[test]
    fn measurement_helpers() {
        let cells = [
            FlowMeasurement { l2_nm2: 10.0, pvb_nm2: 20.0, runtime_s: 1.0 },
            FlowMeasurement { l2_nm2: 30.0, pvb_nm2: 40.0, runtime_s: 3.0 },
        ];
        let m = mean_measurement(&cells);
        assert_eq!(m.l2_nm2, 20.0);
        assert_eq!(m.pvb_nm2, 30.0);
        assert_eq!(m.runtime_s, 2.0);
        let row = format_row("1", 1000, &cells);
        assert!(row.contains("1000"));
    }
}
