//! # ganopc-obs — allocation-free observability for the GAN-OPC stack
//!
//! Fixed-slot instrumentation primitives shared by every crate in the
//! workspace:
//!
//! * **Counters** — exact monotonic event counts ([`Counter`],
//!   [`counter_add`]). One relaxed `fetch_add`, ~8 ns on the reference box.
//! * **Span timers** — scoped wall-time measurements ([`Span`], [`span`])
//!   recorded into per-span log₂-bucketed latency histograms.
//! * **Traces** — small fixed-capacity rings of `f64` samples ([`Trace`],
//!   [`trace_push`]) for convergence curves (ILT loss, EPE counts).
//!
//! Every metric lives in a `static` array slot chosen at compile time by an
//! enum discriminant — there is no `HashMap`, no registration at runtime, no
//! locking and **no allocation anywhere on the recording path**. Snapshots
//! ([`MetricsSnapshot::capture`]) and the JSON render are the only allocating
//! operations, and they are strictly cold-path.
//!
//! ## Cost model (measured on the 1-core reference container)
//!
//! | operation | cost | mechanism |
//! |---|---|---|
//! | [`counter_add`] | ~8 ns | relaxed `fetch_add` (exact) |
//! | [`span`] + drop | ~40 ns | 2× `rdtsc` + plain load/store histogram update |
//! | [`trace_push`] | ~10 ns | relaxed load + 2 stores |
//! | [`MetricsSnapshot::capture`] | µs–ms | cold; first call calibrates the TSC |
//!
//! Span timestamps use the x86-64 TSC (`rdtsc`, ~18 ns/read) rather than
//! `Instant::now()` (~35 ns/read here); ticks are converted to nanoseconds
//! once, lazily, at snapshot time. Histogram cells are updated with plain
//! atomic load/store pairs instead of `fetch_add`: that shaves the locked-RMW
//! cost that would blow the <50 ns span budget, at the price of *bounded
//! undercounting when two threads record the same span concurrently*. Counts
//! are exact in single-threaded use (trainer, ILT loop, CLI) and statistically
//! faithful for the pool metrics; anything that must be exact is a
//! [`Counter`], which keeps `fetch_add`.
//!
//! ## Adding a metric
//!
//! 1. Add a variant to [`Counter`], [`Span`] or [`Trace`] with a stable
//!    snake_case label. Declaration order **is** the JSON render order.
//! 2. Record from the code under measurement (`obs::counter_add(...)`,
//!    `let sp = obs::span(...)`).
//! 3. Nothing else: storage, snapshot capture, JSON render and the CLI flag
//!    pick the new slot up automatically.
//!
//! Span guards are RAII: bind them to a *named* local (`let sp = ...` or
//! `let _sp = ...`) so early returns and `?` still record. `let _ = ...` or a
//! bare statement drops the guard immediately and measures nothing — the
//! workspace lint's `obs` rule rejects both.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::time::Duration;

mod clock {
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    /// Raw monotonic-ish timestamp in "ticks" (TSC counts on x86-64,
    /// nanoseconds elsewhere). Cheap enough for hot paths.
    #[cfg(target_arch = "x86_64")]
    #[inline]
    pub fn now_ticks() -> u64 {
        // SAFETY: `rdtsc` has no preconditions — it reads the timestamp
        // counter register and accesses no memory.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[inline]
    pub fn now_ticks() -> u64 {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
        EPOCH.get_or_init(std::time::Instant::now).elapsed().as_nanos() as u64
    }

    /// `f64` bits of the calibrated ticks-per-nanosecond rate; 0 = not yet
    /// calibrated (0 is not a valid rate encoding).
    static TPN_BITS: AtomicU64 = AtomicU64::new(0);

    /// Ticks-per-nanosecond conversion rate. Calibrates on first call by
    /// spinning ~2 ms against the OS monotonic clock; cached afterwards.
    /// Only ever called from snapshot/finish paths, never from raw recording.
    #[cfg(target_arch = "x86_64")]
    pub fn ticks_per_ns() -> f64 {
        let bits = TPN_BITS.load(Relaxed);
        if bits != 0 {
            return f64::from_bits(bits);
        }
        calibrate()
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub fn ticks_per_ns() -> f64 {
        1.0
    }

    #[cfg(target_arch = "x86_64")]
    // lint: cold
    fn calibrate() -> f64 {
        let wall = std::time::Instant::now();
        let t0 = now_ticks();
        while wall.elapsed() < std::time::Duration::from_millis(2) {
            std::hint::spin_loop();
        }
        let ticks = now_ticks().wrapping_sub(t0);
        let nanos = wall.elapsed().as_nanos() as f64;
        let tpn = (ticks as f64 / nanos).max(1e-9);
        TPN_BITS.store(tpn.to_bits(), Relaxed);
        tpn
    }

    /// Converts a tick delta to wall time using the calibrated rate.
    pub fn ticks_to_duration(ticks: u64) -> std::time::Duration {
        std::time::Duration::from_secs_f64(ticks as f64 / ticks_per_ns() / 1e9)
    }
}

/// Declares a fixed registry enum: contiguous `usize` discriminants used as
/// static array indices, plus `COUNT`/`ALL`/`name()` in declaration order.
macro_rules! registry_enum {
    ($(#[$meta:meta])* $name:ident { $($(#[$vmeta:meta])* $variant:ident => $label:literal,)+ }) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vmeta])* $variant,)+
        }

        impl $name {
            /// Number of registered slots.
            pub const COUNT: usize = [$($name::$variant),+].len();
            /// Every slot, in declaration (= snapshot/render) order.
            pub const ALL: [$name; Self::COUNT] = [$($name::$variant),+];

            /// Stable snake_case identifier used in logs and the JSON
            /// snapshot. Renaming a label is a schema change.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)+
                }
            }
        }
    };
}

registry_enum! {
    /// Exact monotonic event counters (relaxed `fetch_add`).
    Counter {
        /// Adversarial training steps completed (`GanTrainer::train_step`).
        TrainSteps => "train_steps",
        /// Generator pretraining steps completed (`Pretrainer`).
        PretrainSteps => "pretrain_steps",
        /// Generator inference batches (`Generator::infer_into`).
        InferBatches => "infer_batches",
        /// ILT optimizations started (`IltEngine::optimize*`).
        IltRuns => "ilt_runs",
        /// ILT inner-loop iterations across all runs.
        IltIterations => "ilt_iterations",
        /// Aerial-image simulations (`LithoModel::aerial_image_into`).
        LithoAerialCalls => "litho_aerial_calls",
        /// Litho gradient evaluations (`LithoModel::gradient_into`).
        LithoGradientCalls => "litho_gradient_calls",
        /// Parallel dispatches through the worker crew (`pool::dispatch`).
        PoolDispatches => "pool_dispatches",
        /// Chunks executed inline by the dispatching thread itself.
        PoolChunksInline => "pool_chunks_inline",
        /// Times a crew worker parked on the condvar waiting for work.
        PoolWorkerParks => "pool_worker_parks",
        /// Times a parked crew worker woke to a new dispatch generation.
        PoolWorkerWakes => "pool_worker_wakes",
        /// Checkpoint files written (`nn::checkpoint`).
        CheckpointSaves => "checkpoint_saves",
        /// Faults fired by the `ganopc-fault` injection plane.
        FaultsInjected => "faults_injected",
        /// Stale `*.tmp` artifacts removed by the startup sweep.
        StaleTmpSwept => "stale_tmp_swept",
        /// Divergence-monitor trips (non-finite loss, explosion, stall).
        SupervisorTrips => "supervisor_trips",
        /// Rollbacks to a last-good ring checkpoint after a trip.
        SupervisorRollbacks => "supervisor_rollbacks",
        /// Supervised retry attempts consumed after a rollback.
        SupervisorRetries => "supervisor_retries",
        /// Ring-checkpoint saves that failed (tolerated, counted).
        SupervisorCkptFailures => "supervisor_ckpt_failures",
        /// ILT guard-rail trips (non-finite error, no-improvement bail).
        IltGuardTrips => "ilt_guard_trips",
    }
}

registry_enum! {
    /// Scoped wall-time spans, each backed by a log₂ latency histogram.
    Span {
        /// One full adversarial training step.
        TrainStep => "train_step",
        /// Generator forward passes inside a train step.
        TrainGForward => "train_g_forward",
        /// Discriminator forward passes (real + generated batches).
        TrainDPass => "train_d_pass",
        /// Backward passes (generator + discriminator).
        TrainBackward => "train_backward",
        /// Gradient clipping and optimizer updates.
        TrainOptimizer => "train_optimizer",
        /// Validation checkpoints (litho scoring of generated masks).
        TrainValidation => "train_validation",
        /// One generator pretraining step.
        PretrainStep => "pretrain_step",
        /// Litho-gradient fan-out inside a pretraining step.
        PretrainLitho => "pretrain_litho",
        /// One inference batch (`Generator::infer_into`).
        Infer => "infer",
        /// One full ILT optimization run.
        IltOptimize => "ilt_optimize",
        /// One ILT inner-loop iteration.
        IltIteration => "ilt_iteration",
        /// One aerial-image simulation.
        LithoAerial => "litho_aerial",
        /// One litho gradient evaluation.
        LithoGradient => "litho_gradient",
        /// One checkpoint serialization + atomic write.
        CheckpointSave => "checkpoint_save",
        /// One atomic artifact write (tmp + write + fsync + rename).
        ArtifactWrite => "artifact_write",
        /// The `fsync` portion of an atomic artifact write.
        ArtifactFsync => "artifact_fsync",
        /// Generator inference phase of the end-to-end flow.
        FlowGenerator => "flow_generator",
        /// ILT refinement phase of the end-to-end flow.
        FlowRefinement => "flow_refinement",
        /// End-to-end flow wall time (generation + refinement + metrics).
        FlowTotal => "flow_total",
    }
}

registry_enum! {
    /// Fixed-capacity `f64` sample rings (most recent [`TRACE_CAPACITY`]
    /// values survive).
    Trace {
        /// ILT objective value per inner-loop iteration.
        IltLoss => "ilt_loss",
        /// EPE violation count sampled every [`epe_trace_stride`] ILT
        /// iterations (0 disables sampling).
        IltEpe => "ilt_epe",
    }
}

/// Histogram bucket count: bucket `b` holds tick deltas in `[2^(b-1), 2^b)`
/// (bucket 0 holds zero; bucket 63 absorbs everything ≥ 2^62).
const NUM_BUCKETS: usize = 64;

/// Samples retained per [`Trace`] ring.
pub const TRACE_CAPACITY: usize = 512;

/// Per-worker claim slots tracked for the crew pool; worker indices beyond
/// this fold into the last slot.
pub const MAX_WORKER_SLOTS: usize = 64;

// Template consts exist only to const-initialize the static arrays below.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

struct Hist {
    sum: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_HIST: Hist = Hist { sum: ZERO, buckets: [ZERO; NUM_BUCKETS] };

struct Ring {
    pushed: AtomicU64,
    values: [AtomicU64; TRACE_CAPACITY],
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_RING: Ring = Ring { pushed: ZERO, values: [ZERO; TRACE_CAPACITY] };

static COUNTERS: [AtomicU64; Counter::COUNT] = [ZERO; Counter::COUNT];
static WORKER_CLAIMS: [AtomicU64; MAX_WORKER_SLOTS] = [ZERO; MAX_WORKER_SLOTS];
static HISTS: [Hist; Span::COUNT] = [EMPTY_HIST; Span::COUNT];
static RINGS: [Ring; Trace::COUNT] = [EMPTY_RING; Trace::COUNT];
static EPE_TRACE_STRIDE: AtomicUsize = AtomicUsize::new(0);

/// Adds `n` to an exact event counter. Safe from any thread.
#[inline]
pub fn counter_add(counter: Counter, n: u64) {
    COUNTERS[counter as usize].fetch_add(n, Relaxed);
}

/// Current value of a counter (tests, log lines).
pub fn counter_get(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Relaxed)
}

/// Credits `chunks` claimed work items to crew worker `worker`. Exact
/// (`fetch_add`): workers race on dispatch by design.
#[inline]
pub fn worker_claims_add(worker: usize, chunks: u64) {
    WORKER_CLAIMS[worker.min(MAX_WORKER_SLOTS - 1)].fetch_add(chunks, Relaxed);
}

/// Stride (in ILT iterations) between EPE-trace samples; 0 = disabled.
#[inline]
pub fn epe_trace_stride() -> usize {
    EPE_TRACE_STRIDE.load(Relaxed)
}

/// Enables ([`stride > 0`]) or disables (0, the default) the per-iteration
/// EPE trace inside ILT refinement. EPE sampling simulates an extra aerial
/// image per sampled iteration, so it is opt-in (the CLI turns it on when
/// `--metrics-json` is given).
pub fn set_epe_trace_stride(stride: usize) {
    EPE_TRACE_STRIDE.store(stride, Relaxed);
}

/// RAII span timer returned by [`span`]. Records into the span's histogram
/// either explicitly via [`SpanGuard::finish`] or implicitly on drop, so the
/// measurement survives `?` and early returns as long as the guard is bound
/// to a named local.
pub struct SpanGuard {
    id: Span,
    start_ticks: u64,
    armed: bool,
}

/// Starts a scoped timer for `id`. ~40 ns for the full start/record cycle.
#[inline]
pub fn span(id: Span) -> SpanGuard {
    SpanGuard { id, start_ticks: clock::now_ticks(), armed: true }
}

impl SpanGuard {
    /// Ends the span now, records it, and returns the measured wall time.
    /// Use when the elapsed time itself is needed (e.g. runtime fields in
    /// results); plain drop records without the conversion cost.
    #[inline]
    pub fn finish(mut self) -> Duration {
        let ticks = clock::now_ticks().wrapping_sub(self.start_ticks);
        self.armed = false;
        record_ticks(self.id, ticks);
        clock::ticks_to_duration(ticks)
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            record_ticks(self.id, clock::now_ticks().wrapping_sub(self.start_ticks));
        }
    }
}

/// Histogram update. Plain load/store (no locked RMW) keeps the span cycle
/// under the 50 ns budget; concurrent recorders of the *same* span may drop
/// an update (bounded undercount), which is acceptable for latency metrics.
// lint: hot-path
#[inline]
fn record_ticks(id: Span, ticks: u64) {
    let hist = &HISTS[id as usize];
    let sum = hist.sum.load(Relaxed);
    hist.sum.store(sum.wrapping_add(ticks), Relaxed);
    let cell = &hist.buckets[bucket_index(ticks)];
    cell.store(cell.load(Relaxed).wrapping_add(1), Relaxed);
}

/// log₂ bucket for a tick delta: 0 for 0, else `floor(log2(ticks)) + 1`,
/// saturating at [`NUM_BUCKETS`]` - 1`.
#[inline]
fn bucket_index(ticks: u64) -> usize {
    (64 - ticks.leading_zeros()).min(63) as usize
}

/// Appends a sample to a trace ring (single-writer; ~10 ns).
#[inline]
pub fn trace_push(trace: Trace, value: f64) {
    let ring = &RINGS[trace as usize];
    let n = ring.pushed.load(Relaxed);
    ring.values[(n as usize) % TRACE_CAPACITY].store(value.to_bits(), Relaxed);
    ring.pushed.store(n.wrapping_add(1), Relaxed);
}

/// Zeroes every counter, worker-claim slot, histogram and trace ring. The
/// TSC calibration and the EPE-trace stride survive. Intended for tests and
/// per-run CLI resets; not meaningful while other threads are recording.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Relaxed);
    }
    for c in &WORKER_CLAIMS {
        c.store(0, Relaxed);
    }
    for hist in &HISTS {
        hist.sum.store(0, Relaxed);
        for cell in &hist.buckets {
            cell.store(0, Relaxed);
        }
    }
    for ring in &RINGS {
        ring.pushed.store(0, Relaxed);
        for cell in &ring.values {
            cell.store(0, Relaxed);
        }
    }
}

/// Derived statistics for one span histogram, in nanoseconds.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStats {
    /// Recorded span count (sum of all histogram buckets).
    pub count: u64,
    /// Total recorded time.
    pub total_ns: f64,
    /// `total_ns / count` (0 when empty).
    pub mean_ns: f64,
    /// Median estimate: geometric midpoint of the bucket holding the
    /// median sample.
    pub p50_ns: f64,
    /// Upper bound of the highest occupied bucket.
    pub max_ns: f64,
    /// Occupied buckets as `(bucket_index, count)`, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl SpanStats {
    fn from_buckets(sum_ticks: u64, buckets: Vec<(u32, u64)>, ticks_per_ns: f64) -> SpanStats {
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        let total_ns = sum_ticks as f64 / ticks_per_ns;
        let mean_ns = if count > 0 { total_ns / count as f64 } else { 0.0 };
        let half = count.div_ceil(2);
        let mut cum = 0u64;
        let mut p50_ns = 0.0;
        for &(b, n) in &buckets {
            cum += n;
            if cum >= half {
                p50_ns = bucket_mid_ticks(b) / ticks_per_ns;
                break;
            }
        }
        let max_ns =
            buckets.last().map(|&(b, _)| bucket_upper_ticks(b) / ticks_per_ns).unwrap_or(0.0);
        SpanStats { count, total_ns, mean_ns, p50_ns, max_ns, buckets }
    }
}

/// Geometric midpoint (in ticks) of bucket `b`'s range `[2^(b-1), 2^b)`.
fn bucket_mid_ticks(b: u32) -> f64 {
    if b == 0 {
        0.0
    } else {
        1.5 * 2f64.powi(b as i32 - 1)
    }
}

/// Upper bound (in ticks) of bucket `b`'s range.
fn bucket_upper_ticks(b: u32) -> f64 {
    if b == 0 {
        0.0
    } else {
        2f64.powi(b as i32)
    }
}

/// Most-recent samples of one trace ring.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Total samples ever pushed (may exceed `values.len()`).
    pub pushed: u64,
    /// The last `min(pushed, TRACE_CAPACITY)` samples, oldest first.
    pub values: Vec<f64>,
}

/// Point-in-time copy of every registered metric, with a stable,
/// declaration-ordered JSON rendering.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Calibrated TSC rate used for all tick→ns conversions below.
    pub ticks_per_ns: f64,
    /// `(label, value)` for every [`Counter`], declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Chunks claimed per crew worker index (trailing zero slots trimmed).
    pub worker_claims: Vec<u64>,
    /// `(label, stats)` for every [`Span`], declaration order.
    pub spans: Vec<(&'static str, SpanStats)>,
    /// `(label, samples)` for every [`Trace`], declaration order.
    pub traces: Vec<(&'static str, TraceStats)>,
}

impl MetricsSnapshot {
    /// Reads every metric slot. Allocates (cold path only); the first call
    /// in a process additionally spends ~2 ms calibrating the TSC.
    pub fn capture() -> MetricsSnapshot {
        let ticks_per_ns = clock::ticks_per_ns();
        let counters = Counter::ALL.iter().map(|&c| (c.name(), counter_get(c))).collect();
        let mut worker_claims: Vec<u64> = WORKER_CLAIMS.iter().map(|c| c.load(Relaxed)).collect();
        while worker_claims.last() == Some(&0) {
            worker_claims.pop();
        }
        let spans = Span::ALL
            .iter()
            .map(|&s| {
                let hist = &HISTS[s as usize];
                let sum_ticks = hist.sum.load(Relaxed);
                let mut buckets = Vec::new();
                for (b, cell) in hist.buckets.iter().enumerate() {
                    let n = cell.load(Relaxed);
                    if n > 0 {
                        buckets.push((b as u32, n));
                    }
                }
                (s.name(), SpanStats::from_buckets(sum_ticks, buckets, ticks_per_ns))
            })
            .collect();
        let traces = Trace::ALL
            .iter()
            .map(|&t| {
                let ring = &RINGS[t as usize];
                let pushed = ring.pushed.load(Relaxed);
                let kept = (pushed as usize).min(TRACE_CAPACITY);
                let start = if pushed as usize > TRACE_CAPACITY { pushed as usize } else { 0 };
                let values = (0..kept)
                    .map(|i| {
                        f64::from_bits(ring.values[(start + i) % TRACE_CAPACITY].load(Relaxed))
                    })
                    .collect();
                (t.name(), TraceStats { pushed, values })
            })
            .collect();
        MetricsSnapshot { ticks_per_ns, counters, worker_claims, spans, traces }
    }

    /// Value of a counter by label (0 if unknown — labels are static, so a
    /// miss is a caller typo surfaced by tests).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map(|&(_, v)| v).unwrap_or(0)
    }

    /// Stats for a span by label.
    pub fn span_stats(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }

    /// Samples for a trace by label.
    pub fn trace(&self, name: &str) -> Option<&TraceStats> {
        self.traces.iter().find(|(n, _)| *n == name).map(|(_, t)| t)
    }

    /// Renders the snapshot as JSON. Key order is fixed by registry
    /// declaration order — byte-stable for identical inputs, suitable for
    /// golden tests and downstream tooling.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(8192);
        out.push_str("{\n  \"schema\": 1,\n");
        out.push_str(&format!("  \"ticks_per_ns\": {:.3},\n", self.ticks_per_ns));
        out.push_str("  \"counters\": {\n");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i + 1 == self.counters.len() { "" } else { "," };
            out.push_str(&format!("    \"{name}\": {v}{sep}\n"));
        }
        out.push_str("  },\n  \"pool_worker_claims\": [");
        for (i, v) in self.worker_claims.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&v.to_string());
        }
        out.push_str("],\n  \"spans\": {\n");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            let sep = if i + 1 == self.spans.len() { "" } else { "," };
            out.push_str(&format!(
                "    \"{name}\": {{\"count\": {}, \"total_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"p50_ns\": {:.1}, \"max_ns\": {:.1}, \"buckets\": [",
                s.count, s.total_ns, s.mean_ns, s.p50_ns, s.max_ns
            ));
            for (j, &(b, n)) in s.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"le_ns\": {:.1}, \"count\": {n}}}",
                    bucket_upper_ticks(b) / self.ticks_per_ns
                ));
            }
            out.push_str(&format!("]}}{sep}\n"));
        }
        out.push_str("  },\n  \"traces\": {\n");
        for (i, (name, t)) in self.traces.iter().enumerate() {
            let sep = if i + 1 == self.traces.len() { "" } else { "," };
            out.push_str(&format!("    \"{name}\": {{\"pushed\": {}, \"values\": [", t.pushed));
            for (j, v) in t.values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&fmt_json_f64(*v));
            }
            out.push_str(&format!("]}}{sep}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// JSON has no NaN/inf literals; map non-finite samples to `null`.
fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 62) - 1), 62);
        assert_eq!(bucket_index(1 << 62), 63);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn counter_roundtrip() {
        let before = counter_get(Counter::CheckpointSaves);
        counter_add(Counter::CheckpointSaves, 3);
        assert_eq!(counter_get(Counter::CheckpointSaves), before + 3);
    }

    #[test]
    fn span_guard_records_on_drop_and_finish() {
        let snap_count =
            |name: &str| MetricsSnapshot::capture().span_stats(name).map(|s| s.count).unwrap_or(0);
        let before = snap_count("checkpoint_save");
        {
            let _sp = span(Span::CheckpointSave);
        }
        let dur = span(Span::CheckpointSave).finish();
        assert!(dur >= Duration::ZERO);
        let after = snap_count("checkpoint_save");
        assert_eq!(after, before + 2);
    }

    #[test]
    fn trace_ring_wraps_keeping_most_recent() {
        // Use the IltEpe ring; push well past capacity.
        let total = TRACE_CAPACITY + 17;
        let base = MetricsSnapshot::capture().trace("ilt_epe").map(|t| t.pushed).unwrap_or(0);
        for i in 0..total {
            trace_push(Trace::IltEpe, i as f64);
        }
        let snap = MetricsSnapshot::capture();
        let t = snap.trace("ilt_epe").expect("ilt_epe registered");
        assert_eq!(t.pushed, base + total as u64);
        assert_eq!(t.values.len(), TRACE_CAPACITY);
        // Oldest retained sample first, newest last.
        assert_eq!(*t.values.last().expect("nonempty"), (total - 1) as f64);
    }

    #[test]
    fn span_stats_math() {
        // Two samples in bucket 3 ([4, 8)), one in bucket 5 ([16, 32)),
        // with a known tick sum, at 2 ticks/ns.
        let stats = SpanStats::from_buckets(60, vec![(3, 2), (5, 1)], 2.0);
        assert_eq!(stats.count, 3);
        assert!((stats.total_ns - 30.0).abs() < 1e-9);
        assert!((stats.mean_ns - 10.0).abs() < 1e-9);
        // Median sample (2nd of 3) sits in bucket 3: mid = 1.5 * 4 = 6 ticks.
        assert!((stats.p50_ns - 3.0).abs() < 1e-9);
        // Max = upper bound of bucket 5 = 32 ticks = 16 ns.
        assert!((stats.max_ns - 16.0).abs() < 1e-9);
    }

    #[test]
    fn epe_stride_roundtrip() {
        assert_eq!(epe_trace_stride(), 0);
        set_epe_trace_stride(8);
        assert_eq!(epe_trace_stride(), 8);
        set_epe_trace_stride(0);
    }

    #[test]
    fn snapshot_json_key_order_is_stable() {
        let json = MetricsSnapshot::capture().render_json();
        let order = [
            "\"schema\"",
            "\"ticks_per_ns\"",
            "\"counters\"",
            "\"pool_worker_claims\"",
            "\"spans\"",
            "\"traces\"",
        ];
        let mut last = 0;
        for key in order {
            let pos = json.find(key).unwrap_or_else(|| panic!("missing {key}"));
            assert!(pos > last, "{key} out of order");
            last = pos;
        }
        // Spot-check registry order within sections.
        let train = json.find("\"train_steps\"").expect("train_steps");
        let ckpt = json.find("\"checkpoint_saves\"").expect("checkpoint_saves");
        assert!(train < ckpt);
    }
}
