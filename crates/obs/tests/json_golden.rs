//! Golden test for the `MetricsSnapshot` JSON rendering.
//!
//! The render is a hand-rolled serializer (the crate is dependency-free),
//! so downstream tooling depends on byte-stable output: declaration-ordered
//! keys, fixed decimal formatting, `null` for non-finite samples. Any
//! change here is a schema change and must bump `"schema"`.

use ganopc_obs::{MetricsSnapshot, SpanStats, TraceStats};

#[test]
fn render_json_matches_golden_bytes() {
    let snapshot = MetricsSnapshot {
        ticks_per_ns: 2.0,
        counters: vec![("train_steps", 3), ("ilt_runs", 1)],
        worker_claims: vec![5, 0, 7],
        spans: vec![
            (
                "train_step",
                SpanStats {
                    count: 3,
                    total_ns: 24.0,
                    mean_ns: 8.0,
                    p50_ns: 3.0,
                    max_ns: 16.0,
                    buckets: vec![(3, 2), (5, 1)],
                },
            ),
            (
                "infer",
                SpanStats {
                    count: 0,
                    total_ns: 0.0,
                    mean_ns: 0.0,
                    p50_ns: 0.0,
                    max_ns: 0.0,
                    buckets: vec![],
                },
            ),
        ],
        traces: vec![("ilt_loss", TraceStats { pushed: 5, values: vec![1.25, 0.5, f64::NAN] })],
    };
    let golden = concat!(
        "{\n",
        "  \"schema\": 1,\n",
        "  \"ticks_per_ns\": 2.000,\n",
        "  \"counters\": {\n",
        "    \"train_steps\": 3,\n",
        "    \"ilt_runs\": 1\n",
        "  },\n",
        "  \"pool_worker_claims\": [5, 0, 7],\n",
        "  \"spans\": {\n",
        "    \"train_step\": {\"count\": 3, \"total_ns\": 24.0, \"mean_ns\": 8.0, ",
        "\"p50_ns\": 3.0, \"max_ns\": 16.0, \"buckets\": ",
        "[{\"le_ns\": 4.0, \"count\": 2}, {\"le_ns\": 16.0, \"count\": 1}]},\n",
        "    \"infer\": {\"count\": 0, \"total_ns\": 0.0, \"mean_ns\": 0.0, ",
        "\"p50_ns\": 0.0, \"max_ns\": 0.0, \"buckets\": []}\n",
        "  },\n",
        "  \"traces\": {\n",
        "    \"ilt_loss\": {\"pushed\": 5, \"values\": [1.25, 0.5, null]}\n",
        "  }\n",
        "}\n",
    );
    assert_eq!(snapshot.render_json(), golden);
}

#[test]
fn captured_snapshot_covers_the_whole_registry_in_declaration_order() {
    let snap = MetricsSnapshot::capture();
    let counters: Vec<&str> = snap.counters.iter().map(|&(n, _)| n).collect();
    assert_eq!(
        counters,
        [
            "train_steps",
            "pretrain_steps",
            "infer_batches",
            "ilt_runs",
            "ilt_iterations",
            "litho_aerial_calls",
            "litho_gradient_calls",
            "pool_dispatches",
            "pool_chunks_inline",
            "pool_worker_parks",
            "pool_worker_wakes",
            "checkpoint_saves",
            "faults_injected",
            "stale_tmp_swept",
            "supervisor_trips",
            "supervisor_rollbacks",
            "supervisor_retries",
            "supervisor_ckpt_failures",
            "ilt_guard_trips",
        ]
    );
    let spans: Vec<&str> = snap.spans.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        spans,
        [
            "train_step",
            "train_g_forward",
            "train_d_pass",
            "train_backward",
            "train_optimizer",
            "train_validation",
            "pretrain_step",
            "pretrain_litho",
            "infer",
            "ilt_optimize",
            "ilt_iteration",
            "litho_aerial",
            "litho_gradient",
            "checkpoint_save",
            "artifact_write",
            "artifact_fsync",
            "flow_generator",
            "flow_refinement",
            "flow_total",
        ]
    );
    let traces: Vec<&str> = snap.traces.iter().map(|(n, _)| *n).collect();
    assert_eq!(traces, ["ilt_loss", "ilt_epe"]);
}
