//! Property-based tests for the neural-network substrate.

use ganopc_nn::layers::{
    AvgPool2d, BatchNorm2d, Conv2d, ConvTranspose2d, Flatten, Layer, LeakyRelu, Linear, Relu,
    Sequential, Sigmoid,
};
use ganopc_nn::{checkpoint, loss, Tensor};
use proptest::prelude::*;

fn tensor4(n: usize, c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, n * c * h * w)
        .prop_map(move |v| Tensor::from_vec(&[n, c, h, w], v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Convolution is translation-equivariant under cyclic-free interior
    /// shifts: shifting the input by one pixel shifts the output by one
    /// pixel (checked away from the padded border).
    #[test]
    fn conv_translation_equivariance(x in tensor4(1, 1, 8, 8)) {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 11);
        let y = conv.forward(&x, true);
        // Shift input right by 1.
        let mut shifted = Tensor::zeros(&[1, 1, 8, 8]);
        for r in 0..8 {
            for cc in 1..8 {
                shifted.set(&[0, 0, r, cc], x.at(&[0, 0, r, cc - 1]));
            }
        }
        let ys = conv.forward(&shifted, true);
        for r in 1..7 {
            for cc in 2..7 {
                let a = y.at(&[0, 0, r, cc - 1]);
                let b = ys.at(&[0, 0, r, cc]);
                prop_assert!((a - b).abs() < 1e-4, "at ({r},{cc}): {a} vs {b}");
            }
        }
    }

    /// Sigmoid output is always a probability; ReLU is idempotent.
    #[test]
    fn activation_ranges(x in tensor4(2, 1, 4, 4)) {
        let mut s = Sigmoid::new();
        let y = s.forward(&x, true);
        prop_assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let mut r = Relu::new();
        let once = r.forward(&x, true);
        let twice = r.forward(&once, true);
        prop_assert_eq!(once, twice);
    }

    /// LeakyReLU with slope 0 equals ReLU.
    #[test]
    fn leaky_zero_is_relu(x in tensor4(1, 2, 3, 3)) {
        let mut l = LeakyRelu::new(0.0);
        let mut r = Relu::new();
        prop_assert_eq!(l.forward(&x, true), r.forward(&x, true));
    }

    /// MSE is nonnegative, zero iff equal, and symmetric.
    #[test]
    fn mse_axioms(a in prop::collection::vec(-3.0f32..3.0, 16), b in prop::collection::vec(-3.0f32..3.0, 16)) {
        let ta = Tensor::from_vec(&[16], a);
        let tb = Tensor::from_vec(&[16], b);
        let (ab, _) = loss::mse(&ta, &tb);
        let (ba, _) = loss::mse(&tb, &ta);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
        let (aa, _) = loss::mse(&ta, &ta);
        prop_assert_eq!(aa, 0.0);
    }

    /// Checkpoints roundtrip arbitrary snapshots.
    #[test]
    fn checkpoint_roundtrip(values in prop::collection::vec(-1e3f32..1e3, 1..64)) {
        let len = values.len();
        let snap = vec![Tensor::from_vec(&[len], values)];
        let restored = checkpoint::from_bytes(&checkpoint::to_bytes(&snap)).unwrap();
        prop_assert_eq!(restored, snap);
    }

    /// A deconv that mirrors a conv is its adjoint for arbitrary inputs.
    #[test]
    fn conv_deconv_adjoint(x in tensor4(1, 1, 6, 6), y in tensor4(1, 1, 6, 6)) {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 3);
        let mut deconv = ConvTranspose2d::new(1, 1, 3, 1, 1, 4);
        // Share weights, zero biases.
        let w = {
            let mut out = Vec::new();
            conv.visit_params(&mut |p| out.push(p.value.clone()));
            out
        };
        let mut idx = 0;
        deconv.visit_params(&mut |p| {
            if idx == 0 {
                p.value = w[0].clone().reshape(&[1, 1, 3, 3]);
            } else {
                p.value = Tensor::zeros(&[1]);
            }
            idx += 1;
        });
        idx = 0;
        conv.visit_params(&mut |p| {
            if idx == 1 {
                p.value = Tensor::zeros(&[1]);
            }
            idx += 1;
        });
        let cx = conv.forward(&x, true);
        let dy = deconv.forward(&y, true);
        let lhs: f64 = cx.as_slice().iter().zip(y.as_slice()).map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 = x.as_slice().iter().zip(dy.as_slice()).map(|(&a, &b)| a as f64 * b as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    /// BatchNorm in training mode outputs zero-mean unit-variance channels
    /// (within numeric tolerance) for any non-degenerate input.
    #[test]
    fn batchnorm_normalizes(x in tensor4(4, 2, 4, 4)) {
        let mut bn = BatchNorm2d::new(2);
        let y = bn.forward(&x, true);
        let (n, c, h, w) = y.dims4();
        let plane = h * w;
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                vals.extend_from_slice(&y.as_slice()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            prop_assert!(mean.abs() < 1e-3, "channel {ci} mean {mean}");
        }
    }

    /// End-to-end forward/backward shape stability on random stacks.
    #[test]
    fn sequential_shapes_stable(x in tensor4(2, 1, 8, 8)) {
        let mut net = Sequential::new();
        net.push(Conv2d::new(1, 4, 3, 1, 1, 5));
        net.push(BatchNorm2d::new(4));
        net.push(LeakyRelu::new(0.2));
        net.push(Conv2d::new(4, 2, 4, 2, 1, 6));
        let y = net.forward(&x, true);
        prop_assert_eq!(y.shape(), &[2, 2, 4, 4]);
        let g = net.backward(&Tensor::filled(y.shape(), 1.0));
        prop_assert_eq!(g.shape(), x.shape());
    }

    /// The persistent-buffer execution paths (`forward_into`,
    /// `backward_into`, `backward_discard`) are bit-identical to the
    /// allocating reference path on a stack covering every fused kernel
    /// family: conv, batchnorm, activations (in-place), pooling, flatten
    /// (zero-copy reshape) and linear.
    #[test]
    fn into_paths_match_allocating_paths(x in tensor4(2, 1, 8, 8), g_scale in 0.5f32..1.5) {
        let build = || {
            let mut net = Sequential::new();
            net.push(Conv2d::new(1, 4, 3, 1, 1, 21));
            net.push(BatchNorm2d::new(4));
            net.push(LeakyRelu::new(0.2));
            net.push(AvgPool2d::new(2));
            net.push(Flatten::new());
            net.push(Linear::new(4 * 4 * 4, 3, 22));
            net.push(Sigmoid::new());
            net
        };
        let mut old = build();
        let mut new = build();
        let y_old = old.forward(&x, true);
        let mut y_new = Tensor::zeros(&[1]);
        new.forward_into(&x, &mut y_new, true);
        prop_assert_eq!(y_old.shape(), y_new.shape());
        prop_assert_eq!(y_old.as_slice(), y_new.as_slice());

        let grad = Tensor::filled(y_old.shape(), g_scale);
        old.zero_grads();
        new.zero_grads();
        let gi_old = old.backward(&grad);
        let mut gi_new = Tensor::zeros(&[1]);
        new.backward_into(&grad, Some(&mut gi_new));
        prop_assert_eq!(gi_old.shape(), gi_new.shape());
        prop_assert_eq!(gi_old.as_slice(), gi_new.as_slice());

        let mut pg_old = Vec::new();
        old.visit_params(&mut |p| pg_old.push(p.grad.clone()));
        let mut i = 0;
        new.visit_params(&mut |p| {
            assert_eq!(p.grad.as_slice(), pg_old[i].as_slice(), "param grad {i} diverged");
            i += 1;
        });

        // The discard path skips the input gradient but must still produce
        // the exact same parameter gradients.
        let mut discard = build();
        let mut y_d = Tensor::zeros(&[1]);
        discard.forward_into(&x, &mut y_d, true);
        discard.zero_grads();
        discard.backward_discard(&grad);
        i = 0;
        discard.visit_params(&mut |p| {
            assert_eq!(p.grad.as_slice(), pg_old[i].as_slice(), "discard param grad {i} diverged");
            i += 1;
        });
    }

    /// Linear layer is affine: f(a+b) - f(b) == f(a) - f(0).
    #[test]
    fn linear_is_affine(
        a in prop::collection::vec(-2.0f32..2.0, 6),
        b in prop::collection::vec(-2.0f32..2.0, 6),
    ) {
        let mut fc = Linear::new(6, 3, 8);
        let ta = Tensor::from_vec(&[1, 6], a.clone());
        let tb = Tensor::from_vec(&[1, 6], b.clone());
        let tab = Tensor::from_vec(&[1, 6], a.iter().zip(&b).map(|(x, y)| x + y).collect());
        let zero = Tensor::zeros(&[1, 6]);
        let f_ab = fc.forward(&tab, true);
        let f_b = fc.forward(&tb, true);
        let f_a = fc.forward(&ta, true);
        let f_0 = fc.forward(&zero, true);
        for i in 0..3 {
            let lhs = f_ab.as_slice()[i] - f_b.as_slice()[i];
            let rhs = f_a.as_slice()[i] - f_0.as_slice()[i];
            prop_assert!((lhs - rhs).abs() < 1e-3);
        }
    }
}
