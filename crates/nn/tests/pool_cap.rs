//! Regression test for the dispatch chunk-count cap.
//!
//! The crew's claim word packs the chunk cursor into its low byte and the
//! completed/skipped bookkeeping lives in `u64` bitmaps, so a dispatch is
//! hard-capped at exactly `MAX_CHUNKS = 64` chunks. This test pins the cap
//! boundary: a dispatch at exactly 64 chunks must claim and execute every
//! chunk exactly once (bit 63 of the bitmaps included), and job counts far
//! above the cap must still partition exactly.
//!
//! Lives in its own integration-test binary because it overrides the
//! process-wide thread cap via `set_max_threads`, which would race the pool
//! unit tests if run in the same process.

use ganopc_nn::pool::{self, DisjointMut};

#[test]
fn dispatch_at_exactly_64_chunks_covers_every_range_once() {
    // Ask for one chunk per job at the cap: plan_threads(64) == 64 when the
    // thread cap allows it, which exercises the full width of the claim
    // cursor and both bitmap extremes (bit 0 and bit 63).
    pool::set_max_threads(Some(64));
    let mut visits = vec![0u32; 64];
    {
        let view = DisjointMut::new(&mut visits);
        pool::run_chunks(64, |range| {
            for i in range {
                // SAFETY: `range`s from run_chunks partition 0..64, so each
                // index is covered by exactly one live view.
                unsafe { *view.index_mut(i) += 1 };
            }
        });
    }
    assert_eq!(visits, vec![1u32; 64], "every chunk must execute exactly once at the 64-chunk cap");

    // Far more jobs than the cap: chunk planning must clamp to 64 chunks
    // while still partitioning the full index space exactly once.
    let total = 64 * 7 + 13;
    let mut wide = vec![0u32; total];
    {
        let view = DisjointMut::new(&mut wide);
        pool::run_chunks(total, |range| {
            for i in range {
                // SAFETY: disjoint ranges, as above.
                unsafe { *view.index_mut(i) += 1 };
            }
        });
    }
    assert_eq!(wide, vec![1u32; total], "jobs beyond the cap must still partition exactly");
    pool::set_max_threads(None);
}
