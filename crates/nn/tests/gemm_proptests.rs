//! Property-based tests pinning the blocked/parallel GEMM and the
//! GEMM-lowered convolutions to straightforward scalar references.

use ganopc_nn::layers::{Conv2d, ConvTranspose2d, Layer};
use ganopc_nn::{gemm, Tensor};
use proptest::prelude::*;

/// Deterministic xorshift fill in `[-1, 1)` so matrix contents can be derived
/// from a drawn seed (sizes and data would otherwise need dependent
/// strategies).
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        })
        .collect()
}

fn reference_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            for j in 0..n {
                c[i * n + j] += a[i * k + p] * b[p * n + j];
            }
        }
    }
    c
}

fn assert_close(actual: &[f32], expected: &[f32], what: &str) {
    assert_eq!(actual.len(), expected.len(), "{what}: length");
    for (idx, (&x, &y)) in actual.iter().zip(expected).enumerate() {
        let tol = 1e-5f32 * 1.0f32.max(x.abs()).max(y.abs());
        assert!((x - y).abs() <= tol, "{what}[{idx}]: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three GEMM layouts agree with the scalar triple loop across
    /// shapes that straddle the MR/NR/MC/KC block boundaries.
    #[test]
    fn gemm_matches_scalar_reference(
        m in 1usize..40,
        k in 1usize..64,
        n in 1usize..40,
        seed in 0u64..u64::MAX,
    ) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0xabcd);
        let expect = reference_matmul(&a, &b, m, k, n);
        assert_close(&gemm::matmul(&a, &b, m, k, n), &expect, "matmul");

        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        assert_close(&gemm::matmul_tn(&at, &b, m, k, n), &expect, "matmul_tn");

        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        assert_close(&gemm::matmul_nt(&a, &bt, m, k, n), &expect, "matmul_nt");
    }
}

/// Parameters of a layer in visitation order (weight then bias), cloned.
fn params_of(layer: &mut dyn Layer) -> Vec<Tensor> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.push(p.value.clone()));
    out
}

/// Gradients of a layer in visitation order (weight then bias), cloned.
fn grads_of(layer: &mut dyn Layer) -> Vec<Tensor> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.push(p.grad.clone()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conv2d forward and backward (input, weight and bias gradients) match
    /// a direct sliding-window scalar implementation.
    #[test]
    fn conv2d_matches_scalar_reference(
        n in 1usize..3,
        ci in 1usize..3,
        co in 1usize..4,
        hw in 5usize..9,
        stride in 1usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let (k, pad) = (3usize, 1usize);
        let mut conv = Conv2d::new(ci, co, k, stride, pad, seed ^ 1);
        let params = params_of(&mut conv);
        let (weight, bias) = (params[0].as_slice(), params[1].as_slice());
        let x = Tensor::from_vec(&[n, ci, hw, hw], fill(n * ci * hw * hw, seed));
        let y = conv.forward(&x, true);
        let [_, _, oh, ow] = conv.output_shape(n, hw, hw);

        // Forward reference: direct correlation.
        let mut expect = vec![0.0f32; n * co * oh * ow];
        let xs = x.as_slice();
        for ni in 0..n {
            for oc in 0..co {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias[oc];
                        for c in 0..ci {
                            for kh in 0..k {
                                for kw in 0..k {
                                    let iy = (oy * stride + kh) as isize - pad as isize;
                                    let ix = (ox * stride + kw) as isize - pad as isize;
                                    if iy < 0 || ix < 0 || iy >= hw as isize || ix >= hw as isize {
                                        continue;
                                    }
                                    acc += xs[((ni * ci + c) * hw + iy as usize) * hw
                                            + ix as usize]
                                        * weight[((oc * ci + c) * k + kh) * k + kw];
                                }
                            }
                        }
                        expect[((ni * co + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        assert_close(y.as_slice(), &expect, "conv forward");

        // Backward reference: scatter the output gradient back through the
        // same taps.
        let go = Tensor::from_vec(&[n, co, oh, ow], fill(n * co * oh * ow, seed ^ 2));
        let gin = conv.backward(&go);
        let gos = go.as_slice();
        let mut gin_ref = vec![0.0f32; n * ci * hw * hw];
        let mut dw_ref = vec![0.0f32; co * ci * k * k];
        let mut db_ref = vec![0.0f32; co];
        for ni in 0..n {
            for oc in 0..co {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gos[((ni * co + oc) * oh + oy) * ow + ox];
                        db_ref[oc] += g;
                        for c in 0..ci {
                            for kh in 0..k {
                                for kw in 0..k {
                                    let iy = (oy * stride + kh) as isize - pad as isize;
                                    let ix = (ox * stride + kw) as isize - pad as isize;
                                    if iy < 0 || ix < 0 || iy >= hw as isize || ix >= hw as isize {
                                        continue;
                                    }
                                    let xi = ((ni * ci + c) * hw + iy as usize) * hw
                                        + ix as usize;
                                    let wi = ((oc * ci + c) * k + kh) * k + kw;
                                    gin_ref[xi] += g * weight[wi];
                                    dw_ref[wi] += g * xs[xi];
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_close(gin.as_slice(), &gin_ref, "conv grad_in");
        let grads = grads_of(&mut conv);
        assert_close(grads[0].as_slice(), &dw_ref, "conv dW");
        assert_close(grads[1].as_slice(), &db_ref, "conv db");
    }

    /// ConvTranspose2d forward matches a direct scalar scatter.
    #[test]
    fn deconv_forward_matches_scalar_reference(
        n in 1usize..3,
        ci in 1usize..3,
        co in 1usize..3,
        hw in 3usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let (k, stride, pad) = (4usize, 2usize, 1usize);
        let mut up = ConvTranspose2d::new(ci, co, k, stride, pad, seed ^ 3);
        let params = params_of(&mut up);
        let (weight, bias) = (params[0].as_slice(), params[1].as_slice());
        let x = Tensor::from_vec(&[n, ci, hw, hw], fill(n * ci * hw * hw, seed));
        let y = up.forward(&x, true);
        let [_, _, oh, ow] = up.output_shape(n, hw, hw);

        let xs = x.as_slice();
        let mut expect = vec![0.0f32; n * co * oh * ow];
        for (slot, b) in expect.chunks_mut(oh * ow).enumerate() {
            let v = bias[slot % co];
            b.fill(v);
        }
        for ni in 0..n {
            for c in 0..ci {
                for iy in 0..hw {
                    for ix in 0..hw {
                        let xv = xs[((ni * ci + c) * hw + iy) * hw + ix];
                        for oc in 0..co {
                            for kh in 0..k {
                                for kw in 0..k {
                                    let oy = (iy * stride + kh) as isize - pad as isize;
                                    let ox = (ix * stride + kw) as isize - pad as isize;
                                    if oy < 0 || ox < 0 || oy >= oh as isize || ox >= ow as isize {
                                        continue;
                                    }
                                    // Weight layout is [in_ch, out_ch, k, k].
                                    expect[((ni * co + oc) * oh + oy as usize) * ow
                                            + ox as usize] += xv
                                        * weight[((c * co + oc) * k + kh) * k + kw];
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_close(y.as_slice(), &expect, "deconv forward");
    }
}
