//! Integration tests for the persistent work-crew.
//!
//! These run in their own process because they toggle the process-wide
//! `set_max_threads` override and deliberately panic inside pool jobs;
//! neither should interleave with the library's unit tests.

use ganopc_nn::pool;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;

/// Serializes the tests in this binary: both toggle the process-wide
/// `set_max_threads` override, so they must not interleave.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Sequential dispatches must reuse the same parked workers instead of
/// spawning a fresh crew per call: across many runs the set of distinct
/// non-caller thread ids stays bounded by the worker cap, and the crew's
/// own head-count never exceeds it either.
#[test]
fn workers_persist_across_dispatches() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    pool::set_max_threads(Some(4));
    let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    let caller = std::thread::current().id();
    for _ in 0..10 {
        // Enough jobs that every worker has work waiting when it wakes.
        let jobs: Vec<usize> = (0..64).collect();
        let out = pool::run(jobs, |j| {
            let id = std::thread::current().id();
            if id != caller {
                ids.lock().unwrap().insert(id);
            }
            j * 2
        });
        assert_eq!(out, (0..64).map(|j| j * 2).collect::<Vec<_>>());
    }
    let distinct = ids.lock().unwrap().len();
    assert!(
        distinct <= 3,
        "expected at most 3 persistent workers at cap 4, saw {distinct} distinct thread ids"
    );
    assert!(
        pool::crew_workers() <= 3,
        "crew spawned {} workers for a cap of 4 (caller participates)",
        pool::crew_workers()
    );
    pool::set_max_threads(None);
}

/// A panicking job propagates to the dispatching caller, and the crew
/// survives: subsequent dispatches on the same pool complete normally
/// with correct results.
#[test]
fn panicking_job_does_not_poison_the_crew() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    pool::set_max_threads(Some(4));
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool::run((0..16).collect::<Vec<usize>>(), |j| {
            assert!(j != 9, "job nine exploded");
            j + 1
        })
    }));
    assert!(caught.is_err(), "panic in a pool job must reach the caller");

    // The crew must still be fully functional afterwards.
    for _ in 0..3 {
        let out = pool::run((0..32).collect::<Vec<usize>>(), |j| j * 3);
        assert_eq!(out, (0..32).map(|j| j * 3).collect::<Vec<_>>());
        let hits = AtomicUsize::new(0);
        pool::run_chunks(33, |r| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 33);
    }
    pool::set_max_threads(None);
}
