//! Corruption-robustness properties of the checkpoint decoders: corrupt,
//! truncated, or outright hostile inputs must surface as a typed
//! [`CheckpointError`] — never a panic, and never an allocation larger
//! than the input justifies.

use ganopc_nn::checkpoint::{self, Checkpoint, CheckpointError};
use ganopc_nn::Tensor;
use proptest::prelude::*;

/// A random tensor list (ranks 1..=3, small dims).
fn tensor_list() -> impl Strategy<Value = Vec<Tensor>> {
    prop::collection::vec(
        (1usize..4, 1usize..5, 1usize..5).prop_flat_map(|(rank, a, b)| {
            let shape: Vec<usize> = [a, b, 2][..rank].to_vec();
            let len = shape.iter().product::<usize>();
            prop::collection::vec(-10.0f32..10.0, len)
                .prop_map(move |data| Tensor::from_vec(&shape, data))
        }),
        0..4,
    )
}

/// A random v2 container mixing all four section kinds.
fn container() -> impl Strategy<Value = Checkpoint> {
    (
        tensor_list(),
        prop::collection::vec(0u64..u64::MAX, 0..3),
        prop::collection::vec(-1e9f64..1e9, 0..3),
        prop::collection::vec(0u8..=255, 0..32),
    )
        .prop_map(|(tensors, ints, floats, blob)| {
            let mut ck = Checkpoint::new();
            ck.put_tensors("net/params", &tensors);
            for (i, v) in ints.iter().enumerate() {
                ck.put_u64(&format!("int/{i}"), *v);
            }
            for (i, v) in floats.iter().enumerate() {
                ck.put_f64(&format!("float/{i}"), *v);
            }
            ck.put_bytes("meta/blob", blob);
            ck
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any truncation of a valid v1 blob is rejected with a typed error.
    #[test]
    fn v1_truncations_rejected(tensors in tensor_list(), frac in 0.0f64..1.0) {
        let bytes = checkpoint::to_bytes(&tensors);
        let cut = (bytes.len() as f64 * frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(checkpoint::from_bytes(&bytes[..cut]).is_err());
    }

    /// Any truncation of a valid v2 blob is rejected with a typed error.
    #[test]
    fn v2_truncations_rejected(ck in container(), frac in 0.0f64..1.0) {
        let bytes = ck.to_bytes();
        let cut = (bytes.len() as f64 * frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err());
    }

    /// Bit flips in a v1 blob never panic: the decoder either rejects the
    /// blob or yields a (possibly numerically different) tensor list —
    /// v1 carries no checksum, so silent value corruption is permitted,
    /// crashes and runaway allocation are not.
    #[test]
    fn v1_bit_flips_never_panic(
        tensors in tensor_list(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = checkpoint::to_bytes(&tensors);
        let pos = (bytes.len() as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let _ = checkpoint::from_bytes(&bytes);
    }

    /// Every single-bit flip in a v2 blob is caught by the CRC-32 trailer
    /// (or an earlier header check) — loading corrupt state is impossible.
    #[test]
    fn v2_bit_flips_always_detected(
        ck in container(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = ck.to_bytes();
        let pos = (bytes.len() as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(Checkpoint::from_bytes(&bytes).is_err(), "flip at {pos} undetected");
    }

    /// Arbitrary garbage behind a valid magic+version header never panics
    /// and never succeeds by accident in v2 (the CRC would have to match).
    #[test]
    fn hostile_headers_fail_closed(
        version in 1u32..3,
        body in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let mut bytes = Vec::with_capacity(12 + body.len());
        bytes.extend_from_slice(b"GANOPCKP");
        bytes.extend_from_slice(&version.to_le_bytes());
        bytes.extend_from_slice(&body);
        let _ = checkpoint::from_bytes(&bytes);
        if version == 2 {
            // A random body essentially cannot carry a valid CRC trailer.
            prop_assert!(Checkpoint::from_bytes(&bytes).is_err());
        } else {
            let _ = Checkpoint::from_bytes(&bytes);
        }
    }

    /// Hostile counts/dims are rejected before any allocation: a tiny blob
    /// claiming huge section or tensor counts must fail on the byte-budget
    /// check, not by attempting a multi-gigabyte `Vec`.
    #[test]
    fn hostile_counts_fail_before_allocating(count in 1u32 << 20..u32::MAX) {
        // v1: `count` tensors in an empty body.
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"GANOPCKP");
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&count.to_le_bytes());
        prop_assert!(matches!(
            checkpoint::from_bytes(&v1),
            Err(CheckpointError::Truncated(_))
        ));

        // v2: `count` sections in an empty body (CRC made valid so the
        // decoder reaches the section-count check).
        let mut v2 = Vec::new();
        v2.extend_from_slice(b"GANOPCKP");
        v2.extend_from_slice(&2u32.to_le_bytes());
        v2.extend_from_slice(&count.to_le_bytes());
        let crc = checkpoint::crc32(&v2);
        v2.extend_from_slice(&crc.to_le_bytes());
        prop_assert!(matches!(
            Checkpoint::from_bytes(&v2),
            Err(CheckpointError::Truncated(_))
        ));
    }

    /// Valid containers always roundtrip exactly.
    #[test]
    fn v2_roundtrip(ck in container()) {
        let restored = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        prop_assert_eq!(restored, ck);
    }
}
