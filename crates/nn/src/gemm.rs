//! Cache-blocked `f32` matrix multiplication with a register-resident
//! micro-tile.
//!
//! One blocked GEMM core serves the three layouts the layers need
//! (`C = A·B`, `C = Aᵀ·B`, `C = A·Bᵀ`). The kernel walks `KC`×`NC` tiles of
//! `B` (sized to stay cache-resident) and computes `C` in `MR`×`NR` register
//! tiles: the accumulators are loaded from `C` once, advanced through the
//! whole depth block with `f32::mul_add`, and stored once. Keeping the tile
//! in registers removes the per-depth-step load/store round-trip through
//! `C` that a plain saxpy formulation pays, which is what lets the FMA
//! units rather than the L1 store port set the throughput ceiling. Each
//! `C[i][j]` still accumulates along a single `k`-ascending chain, so the
//! result is bit-identical to the scalar/saxpy formulations.
//!
//! `A·Bᵀ` has no contiguous `B` rows to stream, so it either packs a
//! transposed `B` tile first (tall products, where the pack cost amortizes
//! over many rows) or falls back to lane-parallel dot products (short
//! products).
//!
//! Large products are split across [`crate::pool`] workers along the longer
//! `C` axis. Each worker owns a disjoint block of `C` and runs the identical
//! serial kernel over it, so every `C[i][j]` is accumulated in the same
//! (`k`-ascending) order regardless of the thread count — results are
//! bit-identical for any `GANOPC_THREADS` setting.
//!
//! Packing scratch lives in a thread-local buffer: steady-state serial calls
//! (and nested calls from inside pool workers) allocate nothing.
//!
//! `f32::mul_add` compiles to a single FMA instruction on targets with FMA
//! (the checked-in `.cargo/config.toml` builds with `-C target-cpu=native`);
//! without it the libm fallback is slow but still correct.

// lint: hot-path

use crate::pool;
use std::cell::RefCell;

/// Micro-tile height: `C` rows held in registers together.
pub const MR: usize = 4;
/// Micro-tile width in `f32` lanes (two AVX2 registers; also the column
/// alignment quantum for parallel stripes — one cache line of `f32`).
pub const NR: usize = 16;
/// Depth-block size of a `B` tile.
const KC: usize = 256;
/// Column-block size of a `B` tile (`KC`×`NC`×4 B stays L2-resident).
const NC: usize = 512;
/// Below this many multiply-adds the parallel split is not worth the
/// thread hand-off.
const PAR_MIN_MULADDS: usize = 1 << 19;
/// `A·Bᵀ` products at least this tall amortize packing a transposed tile.
const NT_PACK_MIN_ROWS: usize = 48;
/// `A·Bᵀ` dot products deeper than this stall on FMA latency (one
/// accumulator chain), so packing wins even for short products.
const NT_DOT_MAX_DEPTH: usize = 2048;
/// Lane count of the dot-product partial sums (one AVX2 register).
const LANES: usize = 8;

/// Operand layouts: which inputs are stored transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// `A` is `[m×k]`, `B` is `[k×n]`.
    NN,
    /// `A` is stored `[k×m]` (multiply with `A` transposed), `B` is `[k×n]`.
    TN,
    /// `A` is `[m×k]`, `B` is stored `[n×k]` (multiply with `B` transposed).
    NT,
}

thread_local! {
    /// Per-thread scratch for transposed `B` tiles of `A·Bᵀ` products.
    static PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread stripe scratch for column-split outputs (crew workers are
    /// persistent, so this is a one-time allocation per worker).
    static STRIPE: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `C[m×n] = A[m×k] · B[k×n]` into a fresh buffer.
///
/// # Panics
///
/// Panics when the buffer sizes disagree with the dimensions.
// lint: cold
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    matmul_into(&mut c, a, b, m, k, n);
    c
}

/// `C[m×n] = Aᵀ · B[k×n]` where `A` is stored `[k×m]`, into a fresh buffer.
///
/// # Panics
///
/// Panics when the buffer sizes disagree with the dimensions.
// lint: cold
pub fn matmul_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    matmul_tn_into(&mut c, a, b, m, k, n);
    c
}

/// `C[m×n] = A[m×k] · Bᵀ` where `B` is stored `[n×k]`, into a fresh buffer.
///
/// # Panics
///
/// Panics when the buffer sizes disagree with the dimensions.
// lint: cold
pub fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    matmul_nt_into(&mut c, a, b, m, k, n);
    c
}

/// `C[m×n] = A[m×k] · B[k×n]` written into `c` (overwritten, not accumulated).
pub fn matmul_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    gemm(Layout::NN, a, b, c, m, k, n);
}

/// `C[m×n] = Aᵀ · B` (`A` stored `[k×m]`) written into `c` (overwritten).
pub fn matmul_tn_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "lhs size mismatch");
    assert_eq!(b.len(), k * n, "rhs size mismatch");
    gemm(Layout::TN, a, b, c, m, k, n);
}

/// `C[m×n] = A · Bᵀ` (`B` stored `[n×k]`) written into `c` (overwritten).
pub fn matmul_nt_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs size mismatch");
    assert_eq!(b.len(), n * k, "rhs size mismatch");
    gemm(Layout::NT, a, b, c, m, k, n);
}

/// Dispatches a full product, splitting across pool workers when profitable.
/// The parallel splits dispatch through [`pool::run_chunks`]: no job vector,
/// no result vector — a steady-state dispatch allocates nothing.
fn gemm(layout: Layout, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(c.len(), m * n, "output size mismatch");
    c.fill(0.0);
    if m * k * n < PAR_MIN_MULADDS || pool::max_threads() <= 1 || pool::in_worker() {
        with_pack(|pack| gemm_block(layout, a, b, m, k, n, 0, m, 0, n, c, n, pack));
    } else if m >= n {
        // Row split: chunk the MR-quantized row-block index space, so every
        // participant owns whole micro-tile rows; each chunk gets a disjoint
        // `&mut` row block of C through `DisjointMut`.
        let blocks = m.div_ceil(MR);
        let out = pool::DisjointMut::new(c);
        pool::run_chunks(blocks, |r| {
            let i_lo = r.start * MR;
            let i_hi = (r.end * MR).min(m);
            // SAFETY: run_chunks block ranges partition 0..blocks, so the
            // derived row ranges — and hence these element ranges of C —
            // are pairwise disjoint.
            let chunk = unsafe { out.slice_mut(i_lo * n..i_hi * n) };
            with_pack(|pack| gemm_block(layout, a, b, m, k, n, i_lo, i_hi, 0, n, chunk, n, pack));
        });
    } else {
        // Column split: chunk the NR-quantized column-block index space.
        // Row-major column ranges of C are not contiguous, so each chunk
        // computes into its thread's persistent stripe scratch and copies
        // back into its own disjoint column segment of every C row.
        let blocks = n.div_ceil(NR);
        let out = pool::DisjointMut::new(c);
        pool::run_chunks(blocks, |r| {
            let j_lo = r.start * NR;
            let j_hi = (r.end * NR).min(n);
            let width = j_hi - j_lo;
            with_stripe(m * width, |local| {
                with_pack(|pack| {
                    gemm_block(layout, a, b, m, k, n, 0, m, j_lo, j_hi, local, width, pack)
                });
                for i in 0..m {
                    // SAFETY: column ranges [j_lo, j_hi) are pairwise
                    // disjoint across chunks, so row i's segment here is
                    // touched by exactly this chunk.
                    let row = unsafe { out.slice_mut(i * n + j_lo..i * n + j_hi) };
                    row.copy_from_slice(&local[i * width..][..width]);
                }
            });
        });
    }
}

/// Runs `f` with this thread's packing scratch.
fn with_pack<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    PACK.with(|cell| f(&mut cell.borrow_mut()))
}

/// Runs `f` with this thread's stripe scratch, zeroed to `len` elements.
fn with_stripe<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    STRIPE.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            // ALLOC: one-time growth of persistent per-worker scratch; crew
            // workers live for the whole process, so steady state reuses it.
            buf.resize(len, 0.0);
        }
        let local = &mut buf[..len];
        local.fill(0.0);
        f(local)
    })
}

/// Serial blocked kernel computing `C[i_lo..i_hi, j_lo..j_hi] += A·B` for the
/// given layout. `out` holds that sub-block with row stride `ldc` and must be
/// pre-zeroed; `out[0]` corresponds to `C[i_lo][j_lo]`.
///
/// The accumulation order into any `C[i][j]` depends only on the problem
/// dimensions — never on `i_lo`/`j_lo` — which is what makes the parallel
/// splits above bit-identical to a serial run.
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    i_lo: usize,
    i_hi: usize,
    j_lo: usize,
    j_hi: usize,
    out: &mut [f32],
    ldc: usize,
    pack: &mut Vec<f32>,
) {
    // Short A·Bᵀ products: lane-parallel dot products beat paying for a
    // transposed pack. (The choice depends only on the full dimensions, so
    // every parallel worker takes the same path.)
    if layout == Layout::NT && m < NT_PACK_MIN_ROWS && k <= NT_DOT_MAX_DEPTH {
        for i in i_lo..i_hi {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[(i - i_lo) * ldc..];
            for j in j_lo..j_hi {
                out_row[j - j_lo] = dot_lanes(a_row, &b[j * k..(j + 1) * k]);
            }
        }
        return;
    }
    for jc in (j_lo..j_hi).step_by(NC) {
        let nc = NC.min(j_hi - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            // Resolve the B tile: direct strided view of `b` when its rows
            // are contiguous, a freshly transposed pack otherwise.
            if layout == Layout::NT {
                pack_transposed(b, k, pc, kc, jc, nc, pack);
            }
            let (bt, b_off, b_stride): (&[f32], usize, usize) = match layout {
                Layout::NN | Layout::TN => (b, pc * n + jc, n),
                Layout::NT => (pack.as_slice(), 0, nc),
            };
            // Register-tiled sweep over the C sub-block. The full-tile path
            // keeps an MR×NR accumulator array in registers for the whole
            // depth block; remainder fringes fall back to a per-row scalar
            // loop with the identical per-element accumulation chain.
            let a_at = |row: usize, p: usize| match layout {
                Layout::NN | Layout::NT => a[row * k + pc + p],
                Layout::TN => a[(pc + p) * m + row],
            };
            let mut i = i_lo;
            while i < i_hi {
                let mr = MR.min(i_hi - i);
                let mut j = 0;
                while j < nc {
                    let nr = NR.min(nc - j);
                    let base = (i - i_lo) * ldc + (jc - j_lo) + j;
                    if mr == MR && nr == NR {
                        let mut acc = [[0.0f32; NR]; MR];
                        for (r, row) in acc.iter_mut().enumerate() {
                            row.copy_from_slice(&out[base + r * ldc..][..NR]);
                        }
                        for p in 0..kc {
                            let b_row = &bt[b_off + p * b_stride + j..][..NR];
                            for (r, row) in acc.iter_mut().enumerate() {
                                let av = a_at(i + r, p);
                                for (cv, &bv) in row.iter_mut().zip(b_row) {
                                    *cv = av.mul_add(bv, *cv);
                                }
                            }
                        }
                        for (r, row) in acc.iter().enumerate() {
                            out[base + r * ldc..][..NR].copy_from_slice(row);
                        }
                    } else {
                        for r in 0..mr {
                            let orow = &mut out[base + r * ldc..][..nr];
                            for p in 0..kc {
                                let av = a_at(i + r, p);
                                let b_row = &bt[b_off + p * b_stride + j..][..nr];
                                for (cv, &bv) in orow.iter_mut().zip(b_row) {
                                    *cv = av.mul_add(bv, *cv);
                                }
                            }
                        }
                    }
                    j += nr;
                }
                i += mr;
            }
        }
    }
}

/// Fused dot product with `LANES` independent partial sums (broken FMA
/// latency chain, clean packed codegen); the lanes are folded sequentially
/// at the end, so the result depends only on the operands.
#[inline(always)]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    for (av, bv) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] = av[l].mul_add(bv[l], acc[l]);
        }
    }
    let rem = a.len() / LANES * LANES;
    for (l, (&av, &bv)) in a[rem..].iter().zip(&b[rem..]).enumerate() {
        acc[l] = av.mul_add(bv, acc[l]);
    }
    acc.iter().sum()
}

/// Packs the `B`-stored-`[n×k]` tile depth `[pc, pc+kc)` × rows `[jc, jc+nc)`
/// into `dst` transposed to `[kc × nc]` row-major, so the saxpy kernel can
/// stream contiguous rows.
fn pack_transposed(
    b: &[f32],
    k: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    dst: &mut Vec<f32>,
) {
    dst.clear();
    dst.resize(kc * nc, 0.0);
    for (jj, src_row) in b[jc * k + pc..].chunks(k).take(nc).enumerate() {
        for (p, &v) in src_row.iter().take(kc).enumerate() {
            dst[p * nc + jj] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn assert_close(actual: &[f32], expected: &[f32]) {
        assert_eq!(actual.len(), expected.len());
        for (idx, (&x, &y)) in actual.iter().zip(expected).enumerate() {
            let tol = 1e-5f32.max(1e-5 * y.abs());
            assert!((x - y).abs() <= tol, "element {idx}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference_across_remainder_shapes() {
        // Sizes straddle the MR/NR/KC block edges to exercise padding, and
        // (97, 64, 11) crosses the NT pack/dot threshold.
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (6, 16, 16), (7, 17, 19), (13, 300, 33), (97, 64, 11)]
        {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let expect = reference_nn(&a, &b, m, k, n);
            assert_close(&matmul(&a, &b, m, k, n), &expect);

            // Aᵀ stored [k×m]: transpose `a` into `at`.
            let mut at = vec![0.0f32; k * m];
            for i in 0..m {
                for p in 0..k {
                    at[p * m + i] = a[i * k + p];
                }
            }
            assert_close(&matmul_tn(&at, &b, m, k, n), &expect);

            // Bᵀ stored [n×k]: transpose `b` into `bt`.
            let mut bt = vec![0.0f32; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j];
                }
            }
            assert_close(&matmul_nt(&a, &bt, m, k, n), &expect);
        }
    }

    #[test]
    fn into_variants_overwrite_existing_contents() {
        let (m, k, n) = (5, 9, 8);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let mut c = vec![7.5f32; m * n];
        matmul_into(&mut c, &a, &b, m, k, n);
        assert_close(&c, &reference_nn(&a, &b, m, k, n));
    }

    #[test]
    fn large_product_splits_deterministically() {
        // Big enough to clear PAR_MIN_MULADDS on any thread count; the
        // parallel result must be bitwise identical to the serial kernel.
        let (m, k, n) = (64, 128, 160);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let mut serial = vec![0.0f32; m * n];
        with_pack(|pack| gemm_block(Layout::NN, &a, &b, m, k, n, 0, m, 0, n, &mut serial, n, pack));
        let parallel = matmul(&a, &b, m, k, n);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nt_pack_and_dot_paths_agree_within_tolerance() {
        // Tall product takes the packed path, short takes the dot path;
        // both must match the reference. (97 rows with k > threshold also
        // exercises pack on a non-multiple-of-MR height.)
        for &(m, k, n) in &[(NT_PACK_MIN_ROWS, 33, 21), (NT_PACK_MIN_ROWS - 1, 33, 21)] {
            let a = fill(m * k, 7);
            let b = fill(k * n, 8);
            let expect = reference_nn(&a, &b, m, k, n);
            let mut bt = vec![0.0f32; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j];
                }
            }
            assert_close(&matmul_nt(&a, &bt, m, k, n), &expect);
        }
    }
}
