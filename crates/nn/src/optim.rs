//! Optimizers.
//!
//! Both optimizers walk a network's parameters in the stable
//! [`Sequential::visit_params`] order and keep per-parameter state indexed by
//! that order, so they must always be used with the same network they were
//! first stepped on.
//!
//! [`Sequential::visit_params`]: crate::layers::Sequential::visit_params

use crate::layers::Sequential;
use crate::{guard, Tensor};

/// Copies `src` into `out[idx]`, reusing the slot's allocation when one
/// exists (snapshots keep stable shapes, so steady state never allocates).
fn write_slot(out: &mut Vec<Tensor>, idx: usize, src: &Tensor) {
    if idx < out.len() {
        out[idx].copy_from(src);
    } else {
        out.push(src.clone());
    }
}

/// Stochastic gradient descent with classical momentum.
///
/// `v ← μ·v − λ·g ; w ← w + v` — with `μ = 0`, plain mini-batch SGD, which
/// is exactly the paper's update rule `W ← W − (λ/m)·ΔW` (Algorithms 1–2)
/// when the accumulated gradient is pre-divided by the mini-batch size.
///
/// ```
/// use ganopc_nn::{layers::{Linear, Sequential}, optim::Sgd, Tensor};
/// let mut net = Sequential::new();
/// net.push(Linear::new(2, 1, 0));
/// let mut opt = Sgd::new(0.1, 0.9);
/// let x = Tensor::filled(&[1, 2], 1.0);
/// let y = net.forward(&x, true);
/// net.backward(&Tensor::filled(y.shape(), 1.0));
/// opt.step(&mut net);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and `0 <= momentum < 1`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum {momentum} out of [0,1)");
        Sgd { lr, momentum, velocity: Vec::new() }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Momentum coefficient μ.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Updates the learning rate (for schedules).
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Snapshot of the per-parameter velocity buffers, in
    /// [`Sequential::visit_params`] order. Empty until the first
    /// [`Sgd::step`].
    pub fn export_state(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.export_state_into(&mut out);
        out
    }

    /// Writes the velocity snapshot into `out`, reusing its allocations —
    /// the zero-allocation flavour of [`Sgd::export_state`] for per-epoch
    /// best-model snapshotting.
    pub fn export_state_into(&self, out: &mut Vec<Tensor>) {
        for (i, v) in self.velocity.iter().enumerate() {
            write_slot(out, i, v);
        }
        out.truncate(self.velocity.len());
    }

    /// Restores a velocity snapshot produced by [`Sgd::export_state`].
    ///
    /// Together with re-imported network weights this makes a resumed
    /// optimizer bit-identical to the one that was checkpointed. Shapes
    /// are re-validated against the network on the next [`Sgd::step`].
    pub fn import_state(&mut self, velocity: Vec<Tensor>) {
        self.velocity = velocity;
    }

    /// Applies one update using the gradients currently accumulated in
    /// `net`; gradients are left untouched (callers zero them per batch).
    pub fn step(&mut self, net: &mut Sequential) {
        let mut idx = 0usize;
        let (lr, mu) = (self.lr, self.momentum);
        let velocity = &mut self.velocity;
        net.visit_params(&mut |p| {
            if velocity.len() == idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            assert_eq!(
                v.shape(),
                p.value.shape(),
                "optimizer state mismatch: was this optimizer used with another network?"
            );
            guard::check_finite_slice("sgd gradient", p.grad.as_slice());
            for ((vi, &gi), wi) in
                v.as_mut_slice().iter_mut().zip(p.grad.as_slice()).zip(p.value.as_mut_slice())
            {
                *vi = mu * *vi - lr * gi;
                *wi += *vi;
            }
            idx += 1;
        });
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the given learning rate and the standard
    /// `β₁ = 0.9, β₂ = 0.999, ε = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn new(lr: f32) -> Self {
        Adam::with_betas(lr, 0.9, 0.999)
    }

    /// Creates Adam with explicit betas (GANs often use `β₁ = 0.5`).
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and both betas lie in `[0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2), "betas out of [0,1)");
        Adam { lr, beta1, beta2, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Snapshot of the Adam state: the step counter encoded as a `[1]`
    /// tensor, then the first- and second-moment buffers in
    /// [`Sequential::visit_params`] order.
    pub fn export_state(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.export_state_into(&mut out);
        out
    }

    /// Writes the Adam snapshot into `out`, reusing its allocations — the
    /// zero-allocation flavour of [`Adam::export_state`].
    pub fn export_state_into(&self, out: &mut Vec<Tensor>) {
        if out.is_empty() {
            out.push(Tensor::zeros(&[1]));
        } else {
            out[0].resize(&[1]);
        }
        out[0].as_mut_slice()[0] = self.t as f32;
        for (i, t) in self.m.iter().chain(self.v.iter()).enumerate() {
            write_slot(out, 1 + i, t);
        }
        out.truncate(1 + self.m.len() + self.v.len());
    }

    /// Restores a snapshot produced by [`Adam::export_state`].
    ///
    /// # Panics
    ///
    /// Panics when the snapshot layout is malformed (no step counter or an
    /// odd number of moment buffers).
    pub fn import_state(&mut self, mut state: Vec<Tensor>) {
        assert!(!state.is_empty(), "adam state must start with the step counter");
        let rest = state.split_off(1);
        assert!(rest.len().is_multiple_of(2), "adam moment buffers must pair up");
        self.t = state[0].as_slice()[0] as i32;
        let v = rest.len() / 2;
        let mut it = rest.into_iter();
        self.m = it.by_ref().take(v).collect();
        self.v = it.collect();
    }

    /// Applies one Adam update using the gradients accumulated in `net`.
    pub fn step(&mut self, net: &mut Sequential) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        net.visit_params(&mut |p| {
            if ms.len() == idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            assert_eq!(m.shape(), p.value.shape(), "optimizer state mismatch");
            guard::check_finite_slice("adam gradient", p.grad.as_slice());
            // Single fused pass: moment updates, bias correction and the
            // weight step share one loop with no temporary tensors.
            for ((wi, &g), (mi, vi)) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *wi -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::loss::mse;
    use crate::{init, Tensor};

    /// Trains y = 2x₀ − x₁ + 0.5 on a single linear layer; both optimizers
    /// must drive the loss down by orders of magnitude.
    fn fit_linear(step: &mut dyn FnMut(&mut Sequential)) -> f64 {
        let mut net = Sequential::new();
        net.push(Linear::new(2, 1, 7));
        let x = init::uniform(&[32, 2], -1.0, 1.0, 3);
        let y = Tensor::from_vec(
            &[32, 1],
            x.as_slice().chunks_exact(2).map(|c| 2.0 * c[0] - c[1] + 0.5).collect(),
        );
        let mut last = f64::INFINITY;
        for _ in 0..300 {
            let pred = net.forward(&x, true);
            let (loss, grad) = mse(&pred, &y);
            net.zero_grads();
            net.backward(&grad);
            step(&mut net);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_fits_linear_regression() {
        let mut opt = Sgd::new(0.2, 0.0);
        let loss = fit_linear(&mut |net| opt.step(net));
        assert!(loss < 1e-4, "sgd stalled at {loss}");
    }

    #[test]
    fn momentum_accelerates() {
        let mut plain = Sgd::new(0.05, 0.0);
        let slow = fit_linear(&mut |net| plain.step(net));
        let mut heavy = Sgd::new(0.05, 0.9);
        let fast = fit_linear(&mut |net| heavy.step(net));
        assert!(fast < slow, "momentum {fast} vs plain {slow}");
    }

    #[test]
    fn adam_fits_linear_regression() {
        let mut opt = Adam::new(0.05);
        let loss = fit_linear(&mut |net| opt.step(net));
        assert!(loss < 1e-4, "adam stalled at {loss}");
    }

    #[test]
    fn step_does_not_clear_grads() {
        let mut net = Sequential::new();
        net.push(Linear::new(1, 1, 0));
        let y = net.forward(&Tensor::filled(&[1, 1], 1.0), true);
        net.backward(&Tensor::filled(y.shape(), 1.0));
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut net);
        let mut any = false;
        net.visit_params(&mut |p| any |= p.grad.max_abs() > 0.0);
        assert!(any, "step must not clear gradients");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite sgd gradient"))]
    fn nan_gradient_trips_optimizer_guard() {
        let mut net = Sequential::new();
        net.push(Linear::new(1, 1, 0));
        let y = net.forward(&Tensor::filled(&[1, 1], 1.0), true);
        net.backward(&Tensor::filled(y.shape(), 1.0));
        net.visit_params(&mut |p| p.grad.as_mut_slice()[0] = f32::NAN);
        Sgd::new(0.1, 0.0).step(&mut net);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0, 0.0);
    }

    /// Run `steps` SGD steps on a fixed problem, optionally checkpointing
    /// the optimizer (and weights) at step `split` and resuming into fresh
    /// objects; returns the final weights.
    fn sgd_run(steps: usize, split: Option<usize>, transfer_velocity: bool) -> Vec<Tensor> {
        let mut net = Sequential::new();
        net.push(Linear::new(2, 1, 7));
        let mut opt = Sgd::new(0.1, 0.9);
        let x = init::uniform(&[8, 2], -1.0, 1.0, 3);
        let y = Tensor::filled(&[8, 1], 0.5);
        for step in 0..steps {
            if split == Some(step) {
                // Checkpoint/restore through fresh objects mid-run.
                let weights = net.export_params();
                let velocity = opt.export_state();
                let mut net2 = Sequential::new();
                net2.push(Linear::new(2, 1, 99));
                net2.import_params(&weights).unwrap();
                let mut opt2 = Sgd::new(0.1, 0.9);
                if transfer_velocity {
                    opt2.import_state(velocity);
                }
                net = net2;
                opt = opt2;
            }
            let pred = net.forward(&x, true);
            let (_, grad) = mse(&pred, &y);
            net.zero_grads();
            net.backward(&grad);
            opt.step(&mut net);
        }
        net.export_params()
    }

    #[test]
    fn sgd_state_roundtrip_is_bit_identical() {
        assert_eq!(sgd_run(9, None, true), sgd_run(9, Some(4), true));
        // The equality above genuinely exercises the momentum state: the
        // same split with the velocity dropped diverges.
        assert_ne!(sgd_run(9, None, true), sgd_run(9, Some(4), false));
    }

    #[test]
    fn adam_state_roundtrip_is_bit_identical() {
        let run = |split: Option<usize>| -> Vec<Tensor> {
            let mut net = Sequential::new();
            net.push(Linear::new(2, 1, 7));
            let mut opt = Adam::new(0.05);
            let x = init::uniform(&[8, 2], -1.0, 1.0, 3);
            let y = Tensor::filled(&[8, 1], 0.5);
            for step in 0..9 {
                if split == Some(step) {
                    let state = opt.export_state();
                    let mut opt2 = Adam::new(0.05);
                    opt2.import_state(state);
                    opt = opt2;
                }
                let pred = net.forward(&x, true);
                let (_, grad) = mse(&pred, &y);
                net.zero_grads();
                net.backward(&grad);
                opt.step(&mut net);
            }
            net.export_params()
        };
        assert_eq!(run(None), run(Some(4)));
    }

    #[test]
    fn export_state_into_reuses_and_matches() {
        let mut net = Sequential::new();
        net.push(Linear::new(2, 1, 7));
        let mut opt = Adam::new(0.05);
        let x = init::uniform(&[4, 2], -1.0, 1.0, 3);
        for _ in 0..3 {
            let pred = net.forward(&x, true);
            let (_, grad) = mse(&pred, &Tensor::filled(&[4, 1], 0.5));
            net.zero_grads();
            net.backward(&grad);
            opt.step(&mut net);
        }
        // Start from a buffer with wrong shapes and stale extra slots; the
        // in-place export must fix both and match the allocating snapshot.
        let mut buf = vec![Tensor::zeros(&[9]); 8];
        opt.export_state_into(&mut buf);
        assert_eq!(buf, opt.export_state());

        let mut sgd = Sgd::new(0.1, 0.9);
        sgd.step(&mut net);
        let mut vbuf = Vec::new();
        sgd.export_state_into(&mut vbuf);
        assert_eq!(vbuf, sgd.export_state());
    }

    #[test]
    fn lr_setter_roundtrip() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }
}
