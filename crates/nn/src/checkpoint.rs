//! Binary checkpoint formats for parameter and training-state snapshots.
//!
//! Two wire formats share the `"GANOPCKP"` magic:
//!
//! **v1** — a bare tensor list, produced by [`to_bytes`] and consumed by
//! [`from_bytes`]; this is what
//! [`Sequential::export_params`](crate::layers::Sequential::export_params)
//! snapshots persist as:
//!
//! ```text
//! magic   "GANOPCKP"            8 bytes
//! version u32 le = 1            4 bytes
//! count   u32 le                4 bytes
//! per tensor:
//!   rank  u32 le                        (1..=8)
//!   dims  rank × u64 le                 (each 1..=u32::MAX)
//!   data  prod(dims) × f32 le
//! ```
//!
//! **v2** — the [`Checkpoint`] container: a sequence of *named, typed
//! sections* (tensor lists, `u64`/`f64` scalars, raw bytes) closed by a
//! CRC-32 trailer, so one file can carry a full training state — several
//! networks, optimizer velocities, step counters, shuffle cursors:
//!
//! ```text
//! magic    "GANOPCKP"           8 bytes
//! version  u32 le = 2           4 bytes
//! nsect    u32 le               4 bytes
//! per section:
//!   name_len u16 le                     (1..=255)
//!   name     name_len × u8              (utf-8)
//!   kind     u8                         (1 tensors, 2 u64, 3 f64, 4 bytes)
//!   len      u64 le
//!   payload  len × u8                   (kind 1: a v1-style tensor list
//!                                        without magic/version header)
//! crc32    u32 le               IEEE CRC-32 of every preceding byte
//! ```
//!
//! Both decoders validate every header integer against the remaining byte
//! budget **before** allocating, so corrupt or hostile inputs fail with a
//! typed [`CheckpointError`] and bounded memory, never a panic or a
//! multi-gigabyte allocation. All file writes go through
//! [`ganopc_geometry::io::write_atomic`], so a crash mid-save never leaves
//! a truncated file at the final path.
//!
//! # Example
//!
//! ```
//! use ganopc_nn::{checkpoint::Checkpoint, Tensor};
//! # fn main() -> Result<(), ganopc_nn::checkpoint::CheckpointError> {
//! let mut ck = Checkpoint::new();
//! ck.put_tensors("g/params", &[Tensor::filled(&[2, 3], 0.5)]);
//! ck.put_u64("progress/step", 41);
//! ck.put_f64("best/litho_error", 1.25);
//! let bytes = ck.to_bytes();
//! let restored = Checkpoint::from_bytes(&bytes)?;
//! assert_eq!(restored.get_u64("progress/step")?, 41);
//! assert_eq!(restored.get_tensors("g/params")?.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::Tensor;
use ganopc_obs as obs;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Reads a checkpoint file, consulting the fault sink first: armed
/// builds may fail the Nth checkpoint read with an injected I/O error
/// (the hook is an inlined constant `false` otherwise).
fn read_checkpoint_bytes(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    if ganopc_fault::next_read_fault() {
        obs::counter_add(obs::Counter::FaultsInjected, 1);
        return Err(CheckpointError::File {
            op: "read",
            path: path.to_path_buf(),
            source: std::io::Error::other("fault-inject: read failed"),
        });
    }
    std::fs::read(path).map_err(|source| CheckpointError::File {
        op: "read",
        path: path.to_path_buf(),
        source,
    })
}

const MAGIC: &[u8; 8] = b"GANOPCKP";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

const KIND_TENSORS: u8 = 1;
const KIND_U64: u8 = 2;
const KIND_F64: u8 = 3;
const KIND_BYTES: u8 = 4;

/// Errors from checkpoint encoding/decoding.
#[derive(Debug)]
pub enum CheckpointError {
    /// The blob does not start with the checkpoint magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The blob ended early or contains inconsistent sizes.
    Truncated(String),
    /// The v2 CRC-32 trailer does not match the contents.
    BadCrc {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the contents.
        computed: u32,
    },
    /// A named section is missing, duplicated, or has the wrong type.
    Section(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// I/O failure on a specific checkpoint file: carries the path and
    /// operation so a full disk or permission error mid-training reports
    /// *which* file failed and why instead of a bare os error.
    File {
        /// What was being done to the file (`"write"` / `"read"`).
        op: &'static str,
        /// The checkpoint path involved.
        path: std::path::PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a gan-opc checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "checkpoint crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            CheckpointError::Section(msg) => write!(f, "checkpoint section error: {msg}"),
            CheckpointError::Io(e) => write!(f, "i/o failure: {e}"),
            CheckpointError::File { op, path, source } => {
                write!(f, "cannot {op} checkpoint {}: {source}", path.display())
            }
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::File { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — dependency-free table implementation.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes` (the v2 trailer checksum).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Bounded cursor over untrusted bytes.
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end =
            self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
                CheckpointError::Truncated(format!("need {n} bytes at {}", self.pos))
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        // PANIC: take(2) returned exactly 2 bytes or erred above.
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        // PANIC: take(4) returned exactly 4 bytes or erred above.
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        // PANIC: take(8) returned exactly 8 bytes or erred above.
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

// ---------------------------------------------------------------------------
// Tensor-list payload (shared by v1 bodies and v2 tensor sections).
// ---------------------------------------------------------------------------

/// Smallest possible encoded tensor: rank + one dim + one f32 element.
const MIN_TENSOR_BYTES: usize = 4 + 8 + 4;

fn encode_tensor_list(out: &mut Vec<u8>, tensors: &[Tensor]) {
    out.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
    for t in tensors {
        out.extend_from_slice(&(t.shape().len() as u32).to_le_bytes());
        for &d in t.shape() {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in t.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn tensor_list_len(tensors: &[Tensor]) -> usize {
    4 + tensors.iter().map(|t| 4 + 8 * t.shape().len() + 4 * t.len()).sum::<usize>()
}

/// Decodes a tensor list, validating every count and dimension against the
/// cursor's remaining byte budget *before* allocating.
fn decode_tensor_list(cur: &mut Cursor<'_>) -> Result<Vec<Tensor>, CheckpointError> {
    let count = cur.u32()? as usize;
    if count > cur.remaining() / MIN_TENSOR_BYTES {
        return Err(CheckpointError::Truncated(format!(
            "tensor count {count} cannot fit in {} remaining bytes",
            cur.remaining()
        )));
    }
    let mut tensors = Vec::with_capacity(count);
    for i in 0..count {
        let rank = cur.u32()? as usize;
        if rank == 0 || rank > 8 {
            return Err(CheckpointError::Truncated(format!("tensor {i}: rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let d = cur.u64()?;
            if d == 0 || d > u32::MAX as u64 {
                return Err(CheckpointError::Truncated(format!("tensor {i}: dim {d}")));
            }
            shape.push(d as usize);
        }
        let len = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .filter(|&l| l <= cur.remaining() / 4)
            .ok_or_else(|| {
                CheckpointError::Truncated(format!(
                    "tensor {i}: {shape:?} elements cannot fit in {} remaining bytes",
                    cur.remaining()
                ))
            })?;
        let raw = cur.take(4 * len)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            // PANIC: chunks_exact(4) yields exactly 4 bytes per chunk.
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        tensors.push(Tensor::from_vec(&shape, data));
    }
    Ok(tensors)
}

// ---------------------------------------------------------------------------
// v1 — bare tensor-list snapshots.
// ---------------------------------------------------------------------------

/// Serializes a snapshot into v1 bytes.
pub fn to_bytes(tensors: &[Tensor]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + tensor_list_len(tensors));
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION_V1.to_le_bytes());
    encode_tensor_list(&mut out, tensors);
    out
}

/// Deserializes a v1 snapshot from bytes.
///
/// # Errors
///
/// Returns [`CheckpointError`] on malformed input (including v2 blobs —
/// use [`Checkpoint::from_bytes`] to read either version).
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<Tensor>, CheckpointError> {
    let mut cur = Cursor::new(bytes);
    if cur.take(8)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = cur.u32()?;
    if version != VERSION_V1 {
        return Err(CheckpointError::BadVersion(version));
    }
    let tensors = decode_tensor_list(&mut cur)?;
    if cur.remaining() != 0 {
        return Err(CheckpointError::Truncated(format!("{} trailing bytes", cur.remaining())));
    }
    Ok(tensors)
}

/// Writes a v1 snapshot to a file atomically (tmp file → sync → rename).
///
/// # Errors
///
/// Propagates I/O failures; a failure never leaves a truncated file at
/// `path`.
pub fn save<P: AsRef<Path>>(path: P, tensors: &[Tensor]) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let sp = obs::span(obs::Span::CheckpointSave);
    obs::counter_add(obs::Counter::CheckpointSaves, 1);
    let result = ganopc_geometry::io::write_atomic(path, &to_bytes(tensors))
        .map_err(|source| CheckpointError::File { op: "write", path: path.to_path_buf(), source });
    sp.finish();
    result
}

/// Reads a v1 snapshot from a file.
///
/// # Errors
///
/// Propagates I/O failures (reported with the path) and format errors.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Vec<Tensor>, CheckpointError> {
    let path = path.as_ref();
    let bytes = read_checkpoint_bytes(path)?;
    from_bytes(&bytes)
}

// ---------------------------------------------------------------------------
// v2 — named-section container.
// ---------------------------------------------------------------------------

/// Payload of one named checkpoint section.
#[derive(Debug, Clone, PartialEq)]
pub enum SectionData {
    /// A list of tensors (network parameters, optimizer velocity, ...).
    Tensors(Vec<Tensor>),
    /// An unsigned integer (step counters, sizes, cursors).
    U64(u64),
    /// A floating-point scalar (learning rates, loss values).
    F64(f64),
    /// Raw bytes (format tags, free-form metadata).
    Bytes(Vec<u8>),
}

impl SectionData {
    fn kind(&self) -> u8 {
        match self {
            SectionData::Tensors(_) => KIND_TENSORS,
            SectionData::U64(_) => KIND_U64,
            SectionData::F64(_) => KIND_F64,
            SectionData::Bytes(_) => KIND_BYTES,
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            SectionData::Tensors(_) => "tensors",
            SectionData::U64(_) => "u64",
            SectionData::F64(_) => "f64",
            SectionData::Bytes(_) => "bytes",
        }
    }
}

/// A v2 checkpoint: an ordered set of named, typed sections.
///
/// Section names are unique (putting a name twice replaces the payload)
/// and at most 255 utf-8 bytes long. See the [module docs](self) for the
/// wire layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    sections: Vec<(String, SectionData)>,
}

impl Checkpoint {
    /// Creates an empty checkpoint.
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// The section names, in insertion order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Whether a section named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }

    fn put(&mut self, name: &str, data: SectionData) {
        assert!(
            !name.is_empty() && name.len() <= 255,
            "section name must be 1..=255 bytes, got {:?}",
            name
        );
        match self.sections.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = data,
            None => self.sections.push((name.to_string(), data)),
        }
    }

    /// Stores a tensor list under `name` (replacing any previous payload).
    /// Takes the tensors by reference so callers can write sections straight
    /// from live parameter/optimizer state without cloning first.
    ///
    /// # Panics
    ///
    /// Panics when `name` is empty or longer than 255 bytes.
    pub fn put_tensors(&mut self, name: &str, tensors: &[Tensor]) {
        self.put(name, SectionData::Tensors(tensors.to_vec()));
    }

    /// Stores an unsigned scalar under `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is empty or longer than 255 bytes.
    pub fn put_u64(&mut self, name: &str, value: u64) {
        self.put(name, SectionData::U64(value));
    }

    /// Stores a floating-point scalar under `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is empty or longer than 255 bytes.
    pub fn put_f64(&mut self, name: &str, value: f64) {
        self.put(name, SectionData::F64(value));
    }

    /// Stores raw bytes under `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is empty or longer than 255 bytes.
    pub fn put_bytes(&mut self, name: &str, bytes: Vec<u8>) {
        self.put(name, SectionData::Bytes(bytes));
    }

    fn get(&self, name: &str) -> Result<&SectionData, CheckpointError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d)
            .ok_or_else(|| CheckpointError::Section(format!("missing section '{name}'")))
    }

    fn wrong_kind(name: &str, want: &str, got: &SectionData) -> CheckpointError {
        CheckpointError::Section(format!(
            "section '{name}' holds {}, expected {want}",
            got.kind_name()
        ))
    }

    /// Borrows the tensor list stored under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Section`] when missing or of another kind.
    pub fn get_tensors(&self, name: &str) -> Result<&[Tensor], CheckpointError> {
        match self.get(name)? {
            SectionData::Tensors(t) => Ok(t),
            other => Err(Self::wrong_kind(name, "tensors", other)),
        }
    }

    /// Removes and returns the tensor list stored under `name` (avoids
    /// cloning large parameter snapshots during resume).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Section`] when missing or of another kind.
    pub fn take_tensors(&mut self, name: &str) -> Result<Vec<Tensor>, CheckpointError> {
        let idx = self
            .sections
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| CheckpointError::Section(format!("missing section '{name}'")))?;
        match &self.sections[idx].1 {
            SectionData::Tensors(_) => match self.sections.remove(idx).1 {
                SectionData::Tensors(t) => Ok(t),
                _ => unreachable!("kind checked above"),
            },
            other => Err(Self::wrong_kind(name, "tensors", other)),
        }
    }

    /// Reads the `u64` scalar stored under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Section`] when missing or of another kind.
    pub fn get_u64(&self, name: &str) -> Result<u64, CheckpointError> {
        match self.get(name)? {
            SectionData::U64(v) => Ok(*v),
            other => Err(Self::wrong_kind(name, "u64", other)),
        }
    }

    /// Reads the `f64` scalar stored under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Section`] when missing or of another kind.
    pub fn get_f64(&self, name: &str) -> Result<f64, CheckpointError> {
        match self.get(name)? {
            SectionData::F64(v) => Ok(*v),
            other => Err(Self::wrong_kind(name, "f64", other)),
        }
    }

    /// Borrows the raw bytes stored under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Section`] when missing or of another kind.
    pub fn get_bytes(&self, name: &str) -> Result<&[u8], CheckpointError> {
        match self.get(name)? {
            SectionData::Bytes(b) => Ok(b),
            other => Err(Self::wrong_kind(name, "bytes", other)),
        }
    }

    /// Serializes the container (v2 wire format, CRC-32 trailer included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload: usize = self
            .sections
            .iter()
            .map(|(n, d)| {
                2 + n.len()
                    + 1
                    + 8
                    + match d {
                        SectionData::Tensors(t) => tensor_list_len(t),
                        SectionData::U64(_) | SectionData::F64(_) => 8,
                        SectionData::Bytes(b) => b.len(),
                    }
            })
            .sum();
        let mut out = Vec::with_capacity(16 + payload + 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION_V2.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, data) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.push(data.kind());
            match data {
                SectionData::Tensors(t) => {
                    out.extend_from_slice(&(tensor_list_len(t) as u64).to_le_bytes());
                    encode_tensor_list(&mut out, t);
                }
                SectionData::U64(v) => {
                    out.extend_from_slice(&8u64.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
                SectionData::F64(v) => {
                    out.extend_from_slice(&8u64.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
                SectionData::Bytes(b) => {
                    out.extend_from_slice(&(b.len() as u64).to_le_bytes());
                    out.extend_from_slice(b);
                }
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes a checkpoint from bytes.
    ///
    /// Accepts both wire versions: a v1 blob is wrapped into a container
    /// with its tensor list under the single section `"params"`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on malformed input; allocation is
    /// bounded by the input length regardless of header contents.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut cur = Cursor::new(bytes);
        if cur.take(8)? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = cur.u32()?;
        if version == VERSION_V1 {
            let mut ck = Checkpoint::new();
            ck.put_tensors("params", &from_bytes(bytes)?);
            return Ok(ck);
        }
        if version != VERSION_V2 {
            return Err(CheckpointError::BadVersion(version));
        }
        // Verify the CRC trailer before trusting any header field.
        if bytes.len() < 16 + 4 {
            return Err(CheckpointError::Truncated("no room for crc trailer".into()));
        }
        let body_end = bytes.len() - 4;
        // PANIC: bytes.len() >= 20 was checked above, so the trailer slice
        // is exactly 4 bytes.
        let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[..body_end]);
        if stored != computed {
            return Err(CheckpointError::BadCrc { stored, computed });
        }
        let mut cur = Cursor::new(&bytes[..body_end]);
        cur.take(12)?; // magic + version, already validated
        let nsect = cur.u32()? as usize;
        // Smallest section: 2 (name len) + 1 (name) + 1 (kind) + 8 (len).
        if nsect > cur.remaining() / 12 {
            return Err(CheckpointError::Truncated(format!(
                "section count {nsect} cannot fit in {} remaining bytes",
                cur.remaining()
            )));
        }
        let mut ck = Checkpoint { sections: Vec::with_capacity(nsect) };
        for i in 0..nsect {
            let name_len = cur.u16()? as usize;
            if name_len == 0 {
                return Err(CheckpointError::Truncated(format!("section {i}: empty name")));
            }
            let name = std::str::from_utf8(cur.take(name_len)?)
                .map_err(|_| CheckpointError::Truncated(format!("section {i}: non-utf8 name")))?
                .to_string();
            if ck.contains(&name) {
                return Err(CheckpointError::Section(format!("duplicate section '{name}'")));
            }
            let kind = cur.u8()?;
            let len = cur.u64()?;
            if len > cur.remaining() as u64 {
                return Err(CheckpointError::Truncated(format!(
                    "section '{name}': payload of {len} bytes exceeds {} remaining",
                    cur.remaining()
                )));
            }
            let payload = cur.take(len as usize)?;
            let data = match kind {
                KIND_TENSORS => {
                    let mut inner = Cursor::new(payload);
                    let tensors = decode_tensor_list(&mut inner)?;
                    if inner.remaining() != 0 {
                        return Err(CheckpointError::Truncated(format!(
                            "section '{name}': {} trailing payload bytes",
                            inner.remaining()
                        )));
                    }
                    SectionData::Tensors(tensors)
                }
                KIND_U64 | KIND_F64 => {
                    let raw: [u8; 8] = payload.try_into().map_err(|_| {
                        CheckpointError::Truncated(format!(
                            "section '{name}': scalar payload of {len} bytes"
                        ))
                    })?;
                    if kind == KIND_U64 {
                        SectionData::U64(u64::from_le_bytes(raw))
                    } else {
                        SectionData::F64(f64::from_le_bytes(raw))
                    }
                }
                KIND_BYTES => SectionData::Bytes(payload.to_vec()),
                other => {
                    return Err(CheckpointError::Truncated(format!(
                        "section '{name}': unknown kind {other}"
                    )))
                }
            };
            ck.sections.push((name, data));
        }
        if cur.remaining() != 0 {
            return Err(CheckpointError::Truncated(format!("{} trailing bytes", cur.remaining())));
        }
        Ok(ck)
    }

    /// Writes the container to a file atomically (tmp file → sync →
    /// rename): a crash mid-save leaves the previous checkpoint intact.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let sp = obs::span(obs::Span::CheckpointSave);
        obs::counter_add(obs::Counter::CheckpointSaves, 1);
        let result = ganopc_geometry::io::write_atomic(path, &self.to_bytes()).map_err(|source| {
            CheckpointError::File { op: "write", path: path.to_path_buf(), source }
        });
        sp.finish();
        result
    }

    /// Reads a container (either wire version) from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (reported with the path) and format errors.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, CheckpointError> {
        let path = path.as_ref();
        let bytes = read_checkpoint_bytes(path)?;
        Checkpoint::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> Vec<Tensor> {
        vec![
            Tensor::from_vec(&[2, 3], vec![1.0, -2.0, 3.5, 0.0, f32::MIN_POSITIVE, 1e30]),
            Tensor::filled(&[4], -0.25),
            Tensor::from_vec(&[1, 2, 2, 1], vec![9.0, 8.0, 7.0, 6.0]),
        ]
    }

    fn container() -> Checkpoint {
        let mut ck = Checkpoint::new();
        ck.put_tensors("g/params", &snapshot());
        ck.put_tensors("opt/velocity", &[Tensor::filled(&[3], 0.125)]);
        ck.put_u64("progress/step", 41);
        ck.put_f64("best/litho_error", -1.5e-3);
        ck.put_bytes("meta/kind", b"unit-test".to_vec());
        ck
    }

    #[test]
    fn roundtrip_bytes() {
        let snap = snapshot();
        let restored = from_bytes(&to_bytes(&snap)).unwrap();
        assert_eq!(restored, snap);
    }

    #[test]
    fn roundtrip_empty_snapshot() {
        let restored = from_bytes(&to_bytes(&[])).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn roundtrip_file() {
        let dir = std::env::temp_dir().join("ganopc-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let snap = snapshot();
        save(&path, &snap).unwrap();
        assert_eq!(load(&path).unwrap(), snap);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(from_bytes(b"NOTACKPT\0\0\0\0"), Err(CheckpointError::BadMagic)));
        assert!(matches!(
            Checkpoint::from_bytes(b"NOTACKPT\0\0\0\0"),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = to_bytes(&snapshot());
        bytes[8] = 99;
        assert!(matches!(from_bytes(&bytes), Err(CheckpointError::BadVersion(_))));
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(CheckpointError::BadVersion(_))));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = to_bytes(&snapshot());
        for cut in [10, 20, bytes.len() - 1] {
            assert!(
                matches!(from_bytes(&bytes[..cut]), Err(CheckpointError::Truncated(_))),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&snapshot());
        bytes.push(0);
        assert!(matches!(from_bytes(&bytes), Err(CheckpointError::Truncated(_))));
    }

    #[test]
    fn hostile_count_fails_before_allocating() {
        // A v1 header claiming u32::MAX tensors in a 16-byte blob must be
        // rejected by the budget check, not by attempting the allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION_V1.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(from_bytes(&bytes), Err(CheckpointError::Truncated(_))));
    }

    #[test]
    fn hostile_dims_fail_before_allocating() {
        // rank 8 × dims u32::MAX would overflow usize on multiplication and
        // demand ~2^64 bytes; the checked product must reject it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION_V1.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // count
        bytes.extend_from_slice(&8u32.to_le_bytes()); // rank
        for _ in 0..8 {
            bytes.extend_from_slice(&(u32::MAX as u64).to_le_bytes());
        }
        bytes.extend_from_slice(&[0u8; 64]); // some payload, far too little
        assert!(matches!(from_bytes(&bytes), Err(CheckpointError::Truncated(_))));
    }

    #[test]
    fn container_roundtrip() {
        let ck = container();
        let restored = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(restored, ck);
        assert_eq!(restored.get_tensors("g/params").unwrap(), snapshot());
        assert_eq!(restored.get_u64("progress/step").unwrap(), 41);
        assert_eq!(restored.get_f64("best/litho_error").unwrap(), -1.5e-3);
        assert_eq!(restored.get_bytes("meta/kind").unwrap(), b"unit-test");
    }

    #[test]
    fn container_roundtrip_file() {
        let dir = std::env::temp_dir().join("ganopc-ckpt-v2-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let ck = container();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_container_roundtrips() {
        let ck = Checkpoint::new();
        assert_eq!(Checkpoint::from_bytes(&ck.to_bytes()).unwrap(), ck);
    }

    #[test]
    fn v1_blob_loads_as_container() {
        let ck = Checkpoint::from_bytes(&to_bytes(&snapshot())).unwrap();
        assert_eq!(ck.get_tensors("params").unwrap(), snapshot());
    }

    #[test]
    fn put_replaces_existing_section() {
        let mut ck = Checkpoint::new();
        ck.put_u64("x", 1);
        ck.put_u64("x", 2);
        assert_eq!(ck.get_u64("x").unwrap(), 2);
        assert_eq!(ck.section_names().count(), 1);
    }

    #[test]
    fn wrong_kind_is_typed_error() {
        let ck = container();
        assert!(matches!(ck.get_u64("g/params"), Err(CheckpointError::Section(_))));
        assert!(matches!(ck.get_tensors("progress/step"), Err(CheckpointError::Section(_))));
        assert!(matches!(ck.get_f64("missing"), Err(CheckpointError::Section(_))));
    }

    #[test]
    fn take_tensors_removes_section() {
        let mut ck = container();
        let t = ck.take_tensors("g/params").unwrap();
        assert_eq!(t, snapshot());
        assert!(!ck.contains("g/params"));
        assert!(matches!(ck.take_tensors("g/params"), Err(CheckpointError::Section(_))));
    }

    #[test]
    fn crc_detects_bit_flips() {
        let bytes = container().to_bytes();
        // Flip one bit in every byte position past the version field; every
        // corruption must surface as a typed error (usually BadCrc; trailer
        // flips may also report as such).
        for pos in 12..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            assert!(Checkpoint::from_bytes(&corrupt).is_err(), "bit flip at {pos} went undetected");
        }
    }

    #[test]
    fn v2_truncations_rejected() {
        let bytes = container().to_bytes();
        for cut in [9, 13, 17, 40, bytes.len() - 5, bytes.len() - 1] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn duplicate_sections_rejected() {
        // Hand-craft a v2 blob with the same name twice.
        let mut ck = Checkpoint::new();
        ck.put_u64("dup", 1);
        let mut body = ck.to_bytes();
        body.truncate(body.len() - 4); // strip crc
        let section = body[16..].to_vec();
        body.extend_from_slice(&section);
        body[12..16].copy_from_slice(&2u32.to_le_bytes()); // nsect = 2
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(Checkpoint::from_bytes(&body), Err(CheckpointError::Section(_))));
    }

    #[test]
    #[should_panic(expected = "section name")]
    fn empty_section_name_rejected() {
        Checkpoint::new().put_u64("", 1);
    }

    #[test]
    fn network_checkpoint_roundtrip() {
        use crate::layers::{BatchNorm2d, Conv2d, Sequential};
        let mut net = Sequential::new();
        net.push(Conv2d::new(1, 2, 3, 1, 1, 7));
        net.push(BatchNorm2d::new(2));
        // Train-mode forward to move the running statistics.
        let x = crate::init::uniform(&[2, 1, 4, 4], 0.0, 1.0, 3);
        let _ = net.forward(&x, true);
        let snap = net.export_params();
        let restored = from_bytes(&to_bytes(&snap)).unwrap();
        let mut net2 = Sequential::new();
        net2.push(Conv2d::new(1, 2, 3, 1, 1, 99));
        net2.push(BatchNorm2d::new(2));
        net2.import_params(&restored).unwrap();
        assert_eq!(net2.forward(&x, false), net.forward(&x, false));
    }
}
