//! Binary checkpoint format for parameter snapshots.
//!
//! A deliberately tiny, dependency-free format for persisting the
//! `Vec<Tensor>` snapshots produced by
//! [`Sequential::export_params`](crate::layers::Sequential::export_params):
//!
//! ```text
//! magic   "GANOPCKP"            8 bytes
//! version u32 le                4 bytes
//! count   u32 le                4 bytes
//! per tensor:
//!   rank  u32 le
//!   dims  rank × u64 le
//!   data  prod(dims) × f32 le
//! ```
//!
//! # Example
//!
//! ```
//! use ganopc_nn::{checkpoint, Tensor};
//! # fn main() -> Result<(), ganopc_nn::checkpoint::CheckpointError> {
//! let snapshot = vec![Tensor::filled(&[2, 3], 0.5)];
//! let bytes = checkpoint::to_bytes(&snapshot);
//! let restored = checkpoint::from_bytes(&bytes)?;
//! assert_eq!(restored, snapshot);
//! # Ok(())
//! # }
//! ```

use crate::Tensor;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"GANOPCKP";
const VERSION: u32 = 1;

/// Errors from checkpoint encoding/decoding.
#[derive(Debug)]
pub enum CheckpointError {
    /// The blob does not start with the checkpoint magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The blob ended early or contains inconsistent sizes.
    Truncated(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a gan-opc checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes a snapshot into bytes.
pub fn to_bytes(tensors: &[Tensor]) -> Vec<u8> {
    let payload: usize = tensors.iter().map(|t| 4 + 8 * t.shape().len() + 4 * t.len()).sum();
    let mut out = Vec::with_capacity(16 + payload);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
    for t in tensors {
        out.extend_from_slice(&(t.shape().len() as u32).to_le_bytes());
        for &d in t.shape() {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in t.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Deserializes a snapshot from bytes.
///
/// # Errors
///
/// Returns [`CheckpointError`] on malformed input.
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<Tensor>, CheckpointError> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8], CheckpointError> {
        let end = cursor
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| CheckpointError::Truncated(format!("need {n} bytes at {cursor}")))?;
        let slice = &bytes[*cursor..end];
        *cursor = end;
        Ok(slice)
    };
    if take(&mut cursor, 8)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
    let mut tensors = Vec::with_capacity(count);
    for i in 0..count {
        let rank = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
        if rank == 0 || rank > 8 {
            return Err(CheckpointError::Truncated(format!("tensor {i}: rank {rank}")));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let d = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes"));
            if d == 0 || d > u32::MAX as u64 {
                return Err(CheckpointError::Truncated(format!("tensor {i}: dim {d}")));
            }
            shape.push(d as usize);
        }
        let len: usize = shape.iter().product();
        let raw = take(&mut cursor, 4 * len)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        tensors.push(Tensor::from_vec(&shape, data));
    }
    if cursor != bytes.len() {
        return Err(CheckpointError::Truncated(format!("{} trailing bytes", bytes.len() - cursor)));
    }
    Ok(tensors)
}

/// Writes a snapshot to a file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save<P: AsRef<Path>>(path: P, tensors: &[Tensor]) -> Result<(), CheckpointError> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(&to_bytes(tensors))?;
    Ok(())
}

/// Reads a snapshot from a file.
///
/// # Errors
///
/// Propagates I/O failures and format errors.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Vec<Tensor>, CheckpointError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> Vec<Tensor> {
        vec![
            Tensor::from_vec(&[2, 3], vec![1.0, -2.0, 3.5, 0.0, f32::MIN_POSITIVE, 1e30]),
            Tensor::filled(&[4], -0.25),
            Tensor::from_vec(&[1, 2, 2, 1], vec![9.0, 8.0, 7.0, 6.0]),
        ]
    }

    #[test]
    fn roundtrip_bytes() {
        let snap = snapshot();
        let restored = from_bytes(&to_bytes(&snap)).unwrap();
        assert_eq!(restored, snap);
    }

    #[test]
    fn roundtrip_empty_snapshot() {
        let restored = from_bytes(&to_bytes(&[])).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn roundtrip_file() {
        let dir = std::env::temp_dir().join("ganopc-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let snap = snapshot();
        save(&path, &snap).unwrap();
        assert_eq!(load(&path).unwrap(), snap);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(from_bytes(b"NOTACKPT\0\0\0\0"), Err(CheckpointError::BadMagic)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = to_bytes(&snapshot());
        bytes[8] = 99;
        assert!(matches!(from_bytes(&bytes), Err(CheckpointError::BadVersion(_))));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = to_bytes(&snapshot());
        for cut in [10, 20, bytes.len() - 1] {
            assert!(
                matches!(from_bytes(&bytes[..cut]), Err(CheckpointError::Truncated(_))),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&snapshot());
        bytes.push(0);
        assert!(matches!(from_bytes(&bytes), Err(CheckpointError::Truncated(_))));
    }

    #[test]
    fn network_checkpoint_roundtrip() {
        use crate::layers::{BatchNorm2d, Conv2d, Sequential};
        let mut net = Sequential::new();
        net.push(Conv2d::new(1, 2, 3, 1, 1, 7));
        net.push(BatchNorm2d::new(2));
        // Train-mode forward to move the running statistics.
        let x = crate::init::uniform(&[2, 1, 4, 4], 0.0, 1.0, 3);
        let _ = net.forward(&x, true);
        let snap = net.export_params();
        let restored = from_bytes(&to_bytes(&snap)).unwrap();
        let mut net2 = Sequential::new();
        net2.push(Conv2d::new(1, 2, 3, 1, 1, 99));
        net2.push(BatchNorm2d::new(2));
        net2.import_params(&restored).unwrap();
        assert_eq!(net2.forward(&x, false), net.forward(&x, false));
    }
}
