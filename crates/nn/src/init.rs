//! Seeded weight initialization.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a standard-normal sample with Box–Muller from a uniform RNG.
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// He (Kaiming) normal initialization: `N(0, √(2/fan_in))` — appropriate for
/// ReLU-family activations (the GAN-OPC encoder/decoder).
///
/// ```
/// use ganopc_nn::init::he_normal;
/// let w = he_normal(&[8, 4, 3, 3], 42);
/// assert_eq!(w.len(), 8 * 4 * 9);
/// ```
pub fn he_normal(shape: &[usize], seed: u64) -> Tensor {
    let fan_in: usize = shape[1..].iter().product::<usize>().max(1);
    let std = (2.0 / fan_in as f32).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let len: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..len).map(|_| normal(&mut rng) * std).collect())
}

/// Xavier (Glorot) uniform initialization: `U(±√(6/(fan_in+fan_out)))` —
/// used for the sigmoid/tanh output layers.
pub fn xavier_uniform(shape: &[usize], seed: u64) -> Tensor {
    let fan_in: usize = shape[1..].iter().product::<usize>().max(1);
    let fan_out = shape[0].max(1);
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let len: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..len).map(|_| rng.gen_range(-bound..=bound)).collect())
}

/// Uniform noise in `[lo, hi)` — for test fixtures and smoke inputs.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    assert!(hi > lo, "empty uniform range");
    let mut rng = StdRng::seed_from_u64(seed);
    let len: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..len).map(|_| rng.gen_range(lo..hi)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_statistics() {
        let w = he_normal(&[64, 32, 3, 3], 7);
        let mean = w.mean();
        let var: f32 =
            w.as_slice().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / w.len() as f32;
        let expect = 2.0 / (32.0 * 9.0);
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var - expect).abs() / expect < 0.15, "var {var} vs {expect}");
    }

    #[test]
    fn xavier_bounds() {
        let w = xavier_uniform(&[10, 20], 3);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= bound));
        assert!(w.max_abs() > bound * 0.5, "suspiciously small spread");
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(he_normal(&[4, 4], 5), he_normal(&[4, 4], 5));
        assert_ne!(he_normal(&[4, 4], 5), he_normal(&[4, 4], 6));
    }

    #[test]
    fn uniform_range() {
        let u = uniform(&[100], -0.25, 0.25, 9);
        assert!(u.as_slice().iter().all(|&v| (-0.25..0.25).contains(&v)));
    }
}
